//! Confidence computation: `Pr(S →[A^ω]→ o)` (§4.3) and acceptance
//! probability `Pr(S ∈ L(A))`.
//!
//! Four algorithms, matching the paper's complexity landscape (Table 2):
//!
//! * [`confidence_deterministic`] — Theorem 4.6: for deterministic
//!   transducers, a forward DP over (node, state, output position) in
//!   `O(|o|·n·|Σ|²·|Q|)`; a k-uniform fast path drops the output-position
//!   dimension (`O(k·n·|Σ|²·|Q|)`).
//! * [`confidence_uniform_nfa`] — Theorem 4.8: for nondeterministic
//!   transducers with k-uniform emission, a DP over (node, *exact set of
//!   reachable states*), i.e. on-the-fly subset construction;
//!   `O(n·k·|Σ|²·4^{|Q|})` worst case but only materializing reachable
//!   subsets.
//! * [`confidence_general`] — the general exact algorithm: the same
//!   exact-reachable-set idea over (state, output-position)
//!   *configurations*. Worst-case exponential — necessarily so, since the
//!   problem is FP^#P-complete (Prop. 4.7) and stays hard even for a fixed
//!   transducer (Thm 4.9) — but exact on any instance and polynomial
//!   whenever the reachable configuration sets stay polynomial (it
//!   degenerates gracefully to the deterministic case).
//! * [`acceptance_probability`] — `Pr(S ∈ L(A))` for an NFA, the engine
//!   behind 0-uniform queries, Theorem 5.5, and nonemptiness tests.
//!
//! The flat-layer passes run on the `transmark-kernel` drivers over step
//! graphs precompiled by [`crate::kernelize`]; the dynamic-state passes
//! fold their layers through [`SubsetLayer`]. All sums use compensated
//! accumulation at the final reduction; per-cell accumulation is plain
//! `f64` (additions of nonnegative numbers — no cancellation).

use transmark_automata::{ops::DetCore, BitSet, Nfa, StateId, SymbolId};
use transmark_kernel::{
    advance, count_layers, Bool, ExecSteps, LayerCsr, Prob, StepGraph, SubsetLayer, Workspace,
};
use transmark_markov::{MarkovSequence, StepSource};

use crate::error::EngineError;
use crate::kernelize::{emission_id_for, output_step_graph, state_step_graph};
use crate::transducer::Transducer;

// Each pass below is split into a validating free function (the public,
// historical API) and a `*_impl` that runs the DP over caller-supplied
// precompiled artifacts. The free functions build the artifacts exactly as
// they always did; `crate::plan`'s bound queries pass cached ones. Both
// routes execute the identical loop, so outputs agree bit for bit.
//
// Every forward-only pass additionally has a `*_source` form that pulls
// its layers from a [`StepSource`] instead of a materialized sequence.
// The per-layer arithmetic is shared (the in-memory form feeds the same
// helpers its contiguous `transition_matrix` slices; the flat-layer DPs
// compact each pulled matrix through the kernel's [`LayerCsr`], which
// reproduces a materialized CSR's rows exactly), so streamed results are
// bit-identical to in-memory ones while holding only O(|Σ|²) of sequence
// data at a time.

/// Validates that the transducer and sequence share an input alphabet and
/// that `o` is over the output alphabet.
pub(crate) fn check_inputs(
    t: &Transducer,
    m: &MarkovSequence,
    o: Option<&[SymbolId]>,
) -> Result<(), EngineError> {
    if t.n_input_symbols() != m.n_symbols() {
        return Err(EngineError::AlphabetMismatch {
            transducer: t.n_input_symbols(),
            sequence: m.n_symbols(),
        });
    }
    if let Some(o) = o {
        for &d in o {
            if d.index() >= t.n_output_symbols() {
                return Err(EngineError::InvalidSymbol {
                    symbol: d.index(),
                    n_symbols: t.n_output_symbols(),
                    alphabet: "output",
                });
            }
        }
    }
    Ok(())
}

/// The [`check_inputs`] counterpart for streamed passes: validates the
/// output symbols and that the source's node alphabet matches the
/// machine's input alphabet, and that the source's step cursor has not
/// already been advanced (every streamed pass is single left-to-right).
pub(crate) fn check_source_inputs<S: StepSource>(
    t: &Transducer,
    src: &S,
    o: Option<&[SymbolId]>,
) -> Result<(), EngineError> {
    if t.n_input_symbols() != src.alphabet().len() {
        return Err(EngineError::AlphabetMismatch {
            transducer: t.n_input_symbols(),
            sequence: src.alphabet().len(),
        });
    }
    if let Some(o) = o {
        for &d in o {
            if d.index() >= t.n_output_symbols() {
                return Err(EngineError::InvalidSymbol {
                    symbol: d.index(),
                    n_symbols: t.n_output_symbols(),
                    alphabet: "output",
                });
            }
        }
    }
    check_source_fresh(src)
}

/// Errors unless the source's cursor is at step 0.
pub(crate) fn check_source_fresh<S: StepSource>(src: &S) -> Result<(), EngineError> {
    if src.position() != 0 {
        return Err(EngineError::SourceConsumed {
            position: src.position(),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Theorem 4.6 — deterministic transducers
// ---------------------------------------------------------------------------

/// `Pr(S →[A^ω]→ o)` for a *deterministic* transducer (Theorem 4.6).
///
/// Dispatches to the k-uniform fast path when the emission is uniform.
/// Returns [`EngineError::NotDeterministic`] otherwise — use
/// [`confidence`] for automatic algorithm selection.
pub fn confidence_deterministic(
    t: &Transducer,
    m: &MarkovSequence,
    o: &[SymbolId],
) -> Result<f64, EngineError> {
    check_inputs(t, m, Some(o))?;
    if !t.is_deterministic() {
        return Err(EngineError::NotDeterministic);
    }
    // Strategy choice applies to the legacy entry points too: a dense
    // bind skips the CSR flatten entirely (the tiny-query fix — CSR
    // construction dominated sub-microsecond evaluations), and dense and
    // sparse advances are bit-identical, so this is invisible downstream.
    if let Some(k) = t.uniform_emission() {
        let graph = state_step_graph(t);
        let mut ws: Workspace<f64> = Workspace::new();
        return Ok(crate::plan::with_exec_steps(m, |steps| {
            confidence_deterministic_uniform_impl(t, steps, &graph, &mut ws, o, k, &mut |slice| {
                emission_id_for(t, slice)
            })
        }));
    }
    let graph = output_step_graph(t, o);
    let mut ws: Workspace<f64> = Workspace::new();
    Ok(crate::plan::with_exec_steps(m, |steps| {
        confidence_deterministic_impl(t, steps, &graph, &mut ws, o.len())
    }))
}

/// The Thm 4.6 positional DP over precompiled artifacts. `graph` must be
/// `output_step_graph(t, o)` and `steps` the bound execution view of the
/// sequence (sparse and dense advance bit-identically).
pub(crate) fn confidence_deterministic_impl(
    t: &Transducer,
    steps: ExecSteps<'_>,
    graph: &StepGraph,
    ws: &mut Workspace<f64>,
    o_len: usize,
) -> f64 {
    let n = steps.n_steps() + 1;
    let n_nodes = steps.n_nodes();
    let nq = t.n_states();
    let width = o_len + 1;
    let nr = graph.n_rows();

    // cell[node * nr + q * width + j] = Pr(strings of this length whose
    // unique run ends at q having emitted o[..j]).
    ws.reset(n_nodes * nr, 0.0);

    // Position 1: the precompiled edges out of (q₀, j = 0) already encode
    // the output-prefix check.
    let init_row = (t.initial().index() * width) as u32;
    for &(node, p) in steps.initial() {
        for e in graph.edges(node, init_row) {
            ws.cur_mut()[node as usize * nr + e.to as usize] += p;
        }
    }

    // Positions 2..n.
    for i in 0..n - 1 {
        ws.clear_next(0.0);
        let (cur, next) = ws.buffers();
        steps.advance::<Prob>(i, graph, cur, next);
        ws.swap();
    }
    count_layers((n - 1) as u64);

    // Accepting states with the full output emitted.
    let cur = ws.cur();
    let mut total = transmark_kernel::Neumaier::new();
    for node in 0..n_nodes {
        for q in 0..nq {
            if t.is_accepting(StateId(q as u32)) {
                total.add(cur[node * nr + q * width + o_len]);
            }
        }
    }
    total.total()
}

// The streamed (`StepSource`) form of this pass lives in
// `crate::incremental::ConfidenceSession` — the seed/step/finish state
// machine that `SourceBoundQuery::confidence` drives and checkpoints.

/// k-uniform fast path of Theorem 4.6: the output position is forced to
/// `k·i`, so the DP is over (node, state) only; edges are gated per step
/// by the interned id of the k-gram this step must emit. `graph` must be
/// `state_step_graph(t)`; `emission_id` maps a k-gram to its interned id
/// (or `u32::MAX` when absent) and may be a cached index — interning is
/// injective, so any correct lookup yields identical gating.
pub(crate) fn confidence_deterministic_uniform_impl(
    t: &Transducer,
    steps: ExecSteps<'_>,
    graph: &StepGraph,
    ws: &mut Workspace<f64>,
    o: &[SymbolId],
    k: usize,
    emission_id: &mut dyn FnMut(&[SymbolId]) -> u32,
) -> f64 {
    let n = steps.n_steps() + 1;
    if o.len() != k * n {
        return 0.0;
    }
    let n_nodes = steps.n_nodes();
    let nq = t.n_states();

    ws.reset(n_nodes * nq, 0.0);
    let seed_id = emission_id(&o[..k]);
    for &(node, p) in steps.initial() {
        for e in graph.edges(node, t.initial().0) {
            if e.payload == seed_id {
                ws.cur_mut()[node as usize * nq + e.to as usize] += p;
            }
        }
    }
    for i in 0..n - 1 {
        let expected = emission_id(&o[k * (i + 1)..k * (i + 2)]);
        ws.clear_next(0.0);
        let (cur, next) = ws.buffers();
        steps.advance_filtered::<Prob>(i, graph, expected, cur, next);
        ws.swap();
    }
    count_layers((n - 1) as u64);
    let cur = ws.cur();
    let mut total = transmark_kernel::Neumaier::new();
    for node in 0..n_nodes {
        for q in 0..nq {
            if t.is_accepting(StateId(q as u32)) {
                total.add(cur[node * nq + q]);
            }
        }
    }
    total.total()
}

// (Streamed form: `crate::incremental::ConfidenceSession`.)

// ---------------------------------------------------------------------------
// Theorem 4.8 — nondeterministic, uniform emission
// ---------------------------------------------------------------------------

/// `Pr(S →[A^ω]→ o)` for a k-uniform (possibly nondeterministic)
/// transducer (Theorem 4.8).
///
/// The DP state is `(node, T)` where `T` is the *exact* set of transducer
/// states reachable by runs on the string prefix whose emission matches
/// the corresponding prefix of `o`. `T` is a deterministic function of the
/// string prefix, so probability mass aggregates without double-counting —
/// this is the subset construction the paper combines with dynamic
/// programming (and the reason naive determinization fails: a transducer,
/// unlike an automaton, cannot be determinized).
pub fn confidence_uniform_nfa(
    t: &Transducer,
    m: &MarkovSequence,
    o: &[SymbolId],
) -> Result<f64, EngineError> {
    check_inputs(t, m, Some(o))?;
    let Some(k) = t.uniform_emission() else {
        return Err(EngineError::NotUniform);
    };
    let graph = state_step_graph(t);
    let accepting = accepting_bitset(t);
    Ok(confidence_uniform_nfa_impl(
        t,
        m,
        &graph,
        &accepting,
        o,
        k,
        &mut |slice| emission_id_for(t, slice),
    ))
}

/// Seeds the Thm 4.8 layer from a dense initial distribution: one
/// reachable-state set per positive-probability node, gated by the seed
/// emission id.
pub(crate) fn uniform_nfa_seed(
    t: &Transducer,
    graph: &StepGraph,
    initial: &[f64],
    seed_id: u32,
) -> SubsetLayer<(u32, BitSet)> {
    let nq = t.n_states();
    let mut layer: SubsetLayer<(u32, BitSet)> = SubsetLayer::new();
    for (node, &p) in initial.iter().enumerate() {
        if p == 0.0 {
            continue;
        }
        let mut set = BitSet::new(nq.max(1));
        for e in graph.edges(node as u32, t.initial().0) {
            if e.payload == seed_id {
                set.insert(e.to as usize);
            }
        }
        if !set.is_empty() {
            layer.add((node as u32, set), p);
        }
    }
    layer
}

/// Advances the Thm 4.8 layer by one dense row-major `|Σ|²` matrix, gated
/// by the step's expected emission id. Scanning the dense row and skipping
/// zeros visits exactly the pairs `transitions_from` used to yield, in the
/// same ascending order, so the fold is bit-identical to the historical
/// sequence-walking loop.
pub(crate) fn uniform_nfa_step(
    t: &Transducer,
    graph: &StepGraph,
    layer: SubsetLayer<(u32, BitSet)>,
    matrix: &[f64],
    n_sym: usize,
    expected: u32,
) -> SubsetLayer<(u32, BitSet)> {
    let nq = t.n_states();
    let mut next: SubsetLayer<(u32, BitSet)> = SubsetLayer::with_capacity(layer.len());
    for ((node, set), p) in layer.sorted() {
        let row = &matrix[node as usize * n_sym..(node as usize + 1) * n_sym];
        for (to, &pt) in row.iter().enumerate() {
            if pt <= 0.0 {
                continue;
            }
            let mut set2 = BitSet::new(nq.max(1));
            for q in set.iter() {
                for e in graph.edges(to as u32, q as u32) {
                    if e.payload == expected {
                        set2.insert(e.to as usize);
                    }
                }
            }
            if !set2.is_empty() {
                next.add((to as u32, set2), p * pt);
            }
        }
    }
    next
}

/// The Thm 4.8 subset DP over precompiled artifacts. `graph` must be
/// `state_step_graph(t)` and `accepting` the accepting-state bitset.
pub(crate) fn confidence_uniform_nfa_impl(
    t: &Transducer,
    m: &MarkovSequence,
    graph: &StepGraph,
    accepting: &BitSet,
    o: &[SymbolId],
    k: usize,
    emission_id: &mut dyn FnMut(&[SymbolId]) -> u32,
) -> f64 {
    let n = m.len();
    if o.len() != k * n {
        return 0.0;
    }
    let n_sym = m.n_symbols();
    let mut layer = uniform_nfa_seed(t, graph, m.initial_dist(), emission_id(&o[..k]));
    for i in 0..n - 1 {
        let expected = emission_id(&o[k * (i + 1)..k * (i + 2)]);
        layer = uniform_nfa_step(t, graph, layer, m.transition_matrix(i), n_sym, expected);
    }
    layer.reduce(|(_, set)| set.intersects(accepting))
}

// (Streamed form: `crate::incremental::ConfidenceSession`.)

// ---------------------------------------------------------------------------
// General exact algorithm (exponential worst case)
// ---------------------------------------------------------------------------

/// `Pr(S →[A^ω]→ o)` for an arbitrary transducer.
///
/// Exact on every instance. The DP state is `(node, C)` where `C` is the
/// exact set of `(state, output position)` *configurations* reachable by
/// runs whose emission so far is a prefix of `o`. The number of distinct
/// reachable `C` can be exponential — unavoidably, by Prop. 4.7 and
/// Thm 4.9 — but the algorithm materializes only reachable ones, so it is
/// polynomial exactly on the easy fragments (deterministic: singleton
/// configurations; uniform: one output position per layer).
pub fn confidence_general(
    t: &Transducer,
    m: &MarkovSequence,
    o: &[SymbolId],
) -> Result<f64, EngineError> {
    check_inputs(t, m, Some(o))?;
    let graph = output_step_graph(t, o);
    Ok(confidence_general_impl(t, m, &graph, o.len()))
}

/// Seeds the general configuration layer from a dense initial
/// distribution. `cap` is the configuration-bit capacity `|Q|·(|o|+1)`.
pub(crate) fn general_seed(
    graph: &StepGraph,
    initial: &[f64],
    init_row: u32,
    cap: usize,
) -> SubsetLayer<(u32, BitSet)> {
    let mut layer: SubsetLayer<(u32, BitSet)> = SubsetLayer::new();
    for (node, &p) in initial.iter().enumerate() {
        if p == 0.0 {
            continue;
        }
        let mut set = BitSet::new(cap);
        for e in graph.edges(node as u32, init_row) {
            set.insert(e.to as usize);
        }
        if !set.is_empty() {
            layer.add((node as u32, set), p);
        }
    }
    layer
}

/// Advances the general configuration layer by one dense row-major
/// `|Σ|²` matrix (same zero-skipping walk as [`uniform_nfa_step`]).
pub(crate) fn general_step(
    graph: &StepGraph,
    layer: SubsetLayer<(u32, BitSet)>,
    matrix: &[f64],
    n_sym: usize,
    cap: usize,
) -> SubsetLayer<(u32, BitSet)> {
    let mut next: SubsetLayer<(u32, BitSet)> = SubsetLayer::with_capacity(layer.len());
    for ((node, set), p) in layer.sorted() {
        let row = &matrix[node as usize * n_sym..(node as usize + 1) * n_sym];
        for (to, &pt) in row.iter().enumerate() {
            if pt <= 0.0 {
                continue;
            }
            let mut set2 = BitSet::new(cap);
            for bit in set.iter() {
                for e in graph.edges(to as u32, bit as u32) {
                    set2.insert(e.to as usize);
                }
            }
            if !set2.is_empty() {
                next.add((to as u32, set2), p * pt);
            }
        }
    }
    next
}

/// The general exact configuration-set DP over precompiled artifacts.
/// `graph` must be `output_step_graph(t, o)` for an `o` of length `o_len`.
pub(crate) fn confidence_general_impl(
    t: &Transducer,
    m: &MarkovSequence,
    graph: &StepGraph,
    o_len: usize,
) -> f64 {
    let n = m.len();
    let nq = t.n_states();
    let width = o_len + 1;
    // Configuration bits ARE the output-graph rows: bit = q * width + j.
    let cap = (nq * width).max(1);
    let n_sym = m.n_symbols();

    let init_row = (t.initial().index() * width) as u32;
    let mut layer = general_seed(graph, m.initial_dist(), init_row, cap);
    for i in 0..n - 1 {
        layer = general_step(graph, layer, m.transition_matrix(i), n_sym, cap);
    }
    layer.reduce(|(_, set)| {
        (0..nq).any(|q| t.is_accepting(StateId(q as u32)) && set.contains(q * width + o_len))
    })
}

// (Streamed form: `crate::incremental::ConfidenceSession`.)

/// `Pr(S →[A^ω]→ o)` with automatic algorithm selection:
/// deterministic → Thm 4.6 (uniform fast path included);
/// uniform NFA → Thm 4.8; otherwise the general exact algorithm.
///
/// ```
/// use transmark_automata::Alphabet;
/// use transmark_core::transducer::Transducer;
/// use transmark_core::confidence::confidence;
/// use transmark_markov::MarkovSequenceBuilder;
///
/// // A 2-step chain over {a, b} and the identity transducer.
/// let alphabet = Alphabet::of_chars("ab");
/// let (a, b) = (alphabet.sym("a"), alphabet.sym("b"));
/// let chain = MarkovSequenceBuilder::new(alphabet.clone(), 2)
///     .initial(a, 0.6).initial(b, 0.4)
///     .transition(0, a, a, 0.5).transition(0, a, b, 0.5)
///     .transition(0, b, b, 1.0)
///     .build()?;
/// let mut builder = Transducer::builder(alphabet.clone(), alphabet);
/// let q = builder.add_state(true);
/// builder.add_transition(q, a, q, &[a])?;
/// builder.add_transition(q, b, q, &[b])?;
/// let identity = builder.build()?;
///
/// // Identity ⇒ conf(o) = p(o): conf("ab") = 0.6·0.5.
/// let conf = confidence(&identity, &chain, &[a, b])?;
/// assert!((conf - 0.3).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// Legacy convenience: compiles a one-shot plan and routes through the
/// prepared API ([`crate::plan::prepare`] → bind → execute), so the
/// Table 2 dispatch and the DP are exactly
/// [`BoundQuery::confidence`](crate::plan::BoundQuery::confidence) —
/// prefer the prepared flow when issuing several queries.
pub fn confidence(t: &Transducer, m: &MarkovSequence, o: &[SymbolId]) -> Result<f64, EngineError> {
    crate::plan::prepare(t).bind(m)?.confidence(o)
}

/// [`confidence`] over a streamed source: the same Table 2 dispatch, with
/// every route running layer-at-a-time off the pulled matrices. One
/// forward pass; bit-identical to the in-memory result.
///
/// Legacy convenience routing through the prepared API
/// ([`SourceBoundQuery::confidence`](crate::plan::SourceBoundQuery::confidence)).
pub fn confidence_source<S: StepSource>(
    t: &Transducer,
    src: &mut S,
    o: &[SymbolId],
) -> Result<f64, EngineError> {
    crate::plan::prepare(t).bind_source(src)?.confidence(o)
}

// ---------------------------------------------------------------------------
// Answer membership (polynomial for every transducer)
// ---------------------------------------------------------------------------

/// Decides whether `o` is an answer, i.e. `Pr(S →[A^ω]→ o) > 0` (§3.2:
/// "whether a string is an answer can be decided efficiently").
///
/// Unlike the confidence *value*, membership needs only reachability over
/// `(node, state, output position)` — the same step graph as
/// [`confidence_deterministic`] driven in the [`Bool`] semiring:
/// `O(n·|Σ|²·|Q|·|o|)`.
///
/// Legacy convenience routing through the prepared API
/// ([`BoundQuery::is_answer`](crate::plan::BoundQuery::is_answer)).
pub fn is_answer(t: &Transducer, m: &MarkovSequence, o: &[SymbolId]) -> Result<bool, EngineError> {
    crate::plan::prepare(t).bind(m)?.is_answer(o)
}

/// Boolean reachability over the positional graph. `graph` must be
/// `output_step_graph(t, o)` for an `o` of length `o_len`.
pub(crate) fn is_answer_impl(
    t: &Transducer,
    steps: ExecSteps<'_>,
    graph: &StepGraph,
    ws: &mut Workspace<bool>,
    o_len: usize,
) -> bool {
    let n = steps.n_steps() + 1;
    let n_nodes = steps.n_nodes();
    let nq = t.n_states();
    let width = o_len + 1;
    let nr = graph.n_rows();

    ws.reset(n_nodes * nr, false);
    let init_row = (t.initial().index() * width) as u32;
    for &(node, _) in steps.initial() {
        for e in graph.edges(node, init_row) {
            ws.cur_mut()[node as usize * nr + e.to as usize] = true;
        }
    }
    for i in 0..n - 1 {
        ws.clear_next(false);
        let (cur, next) = ws.buffers();
        steps.advance::<Bool>(i, graph, cur, next);
        ws.swap();
    }
    count_layers((n - 1) as u64);
    let cur = ws.cur();
    for node in 0..n_nodes {
        for q in 0..nq {
            if t.is_accepting(StateId(q as u32)) && cur[node * nr + q * width + o_len] {
                return true;
            }
        }
    }
    false
}

/// [`is_answer_impl`] over a streamed source.
pub(crate) fn is_answer_source_impl<S: StepSource>(
    t: &Transducer,
    src: &mut S,
    graph: &StepGraph,
    ws: &mut Workspace<bool>,
    o_len: usize,
) -> Result<bool, EngineError> {
    let n_nodes = src.alphabet().len();
    let nq = t.n_states();
    let width = o_len + 1;
    let nr = graph.n_rows();

    ws.reset(n_nodes * nr, false);
    let init_row = (t.initial().index() * width) as u32;
    for (node, &p) in src.initial().iter().enumerate() {
        if p > 0.0 {
            for e in graph.edges(node as u32, init_row) {
                ws.cur_mut()[node * nr + e.to as usize] = true;
            }
        }
    }
    let mut csr = LayerCsr::new();
    let mut layers = 0u64;
    while let Some(matrix) = src.next_step()? {
        csr.load_dense(n_nodes, matrix);
        ws.clear_next(false);
        let (cur, next) = ws.buffers();
        advance::<Bool, _>(&csr, graph, cur, next);
        ws.swap();
        layers += 1;
    }
    count_layers(layers);
    let cur = ws.cur();
    for node in 0..n_nodes {
        for q in 0..nq {
            if t.is_accepting(StateId(q as u32)) && cur[node * nr + q * width + o_len] {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// Whether the query has any answer at all: `Pr(S ∈ L(A)) > 0`.
/// Boolean reachability over `(node, state)` — `O(n·|Σ|²·|Q|·b)`.
///
/// Legacy convenience routing through the prepared API
/// ([`BoundQuery::answer_exists`](crate::plan::BoundQuery::answer_exists)).
pub fn answer_exists(t: &Transducer, m: &MarkovSequence) -> Result<bool, EngineError> {
    crate::plan::prepare(t).bind(m)?.answer_exists()
}

/// Boolean reachability over the state graph. `graph` must be
/// `state_step_graph(t)`.
pub(crate) fn answer_exists_impl(
    t: &Transducer,
    steps: ExecSteps<'_>,
    graph: &StepGraph,
    ws: &mut Workspace<bool>,
) -> bool {
    let n = steps.n_steps() + 1;
    let n_nodes = steps.n_nodes();
    let nq = t.n_states();

    ws.reset(n_nodes * nq, false);
    for &(node, _) in steps.initial() {
        for e in graph.edges(node, t.initial().0) {
            ws.cur_mut()[node as usize * nq + e.to as usize] = true;
        }
    }
    for i in 0..n - 1 {
        ws.clear_next(false);
        let (cur, next) = ws.buffers();
        steps.advance::<Bool>(i, graph, cur, next);
        ws.swap();
    }
    count_layers((n - 1) as u64);
    let cur = ws.cur();
    for node in 0..n_nodes {
        for q in 0..nq {
            if cur[node * nq + q] && t.is_accepting(StateId(q as u32)) {
                return true;
            }
        }
    }
    false
}

/// [`answer_exists_impl`] over a streamed source.
pub(crate) fn answer_exists_source_impl<S: StepSource>(
    t: &Transducer,
    src: &mut S,
    graph: &StepGraph,
    ws: &mut Workspace<bool>,
) -> Result<bool, EngineError> {
    let n_nodes = src.alphabet().len();
    let nq = t.n_states();

    ws.reset(n_nodes * nq, false);
    for (node, &p) in src.initial().iter().enumerate() {
        if p > 0.0 {
            for e in graph.edges(node as u32, t.initial().0) {
                ws.cur_mut()[node * nq + e.to as usize] = true;
            }
        }
    }
    let mut csr = LayerCsr::new();
    let mut layers = 0u64;
    while let Some(matrix) = src.next_step()? {
        csr.load_dense(n_nodes, matrix);
        ws.clear_next(false);
        let (cur, next) = ws.buffers();
        advance::<Bool, _>(&csr, graph, cur, next);
        ws.swap();
        layers += 1;
    }
    count_layers(layers);
    let cur = ws.cur();
    for node in 0..n_nodes {
        for q in 0..nq {
            if cur[node * nq + q] && t.is_accepting(StateId(q as u32)) {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

// ---------------------------------------------------------------------------
// Acceptance probability
// ---------------------------------------------------------------------------

/// The single acceptance-DP engine behind [`acceptance_probability`], the
/// prefix series, and the streaming [`crate::streaming::EventMonitor`]:
/// a distribution over `(determinized subset, current node)` advanced one
/// dense row-major `|Σ|²` matrix at a time.
///
/// The determinization is a fresh [`DetCore`] per fold — subset ids are
/// interned in discovery order and the reduction orders by id, so sharing
/// one across evaluations would perturb float accumulation order (see
/// `crate::plan`'s module docs). The dead (empty) subset can never accept
/// again, so its mass is dropped eagerly; memory is bounded by reachable
/// subsets × `|Σ|`, independent of how many steps are folded in.
pub(crate) struct AcceptanceFold {
    det: DetCore,
    layer: SubsetLayer<(usize, u32)>,
    n_sym: usize,
}

impl AcceptanceFold {
    /// Seeds the fold from `μ₀→` (dense, length `|Σ|`). The caller has
    /// already checked `initial.len() == nfa.n_symbols()`.
    pub(crate) fn start(nfa: &Nfa, initial: &[f64]) -> Self {
        let mut det = DetCore::new(nfa);
        let mut layer: SubsetLayer<(usize, u32)> = SubsetLayer::new();
        for (node, &p) in initial.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let d = det.step(nfa, det.initial(), SymbolId(node as u32));
            if !det.is_dead(d) {
                layer.add((d, node as u32), p);
            }
        }
        AcceptanceFold {
            det,
            layer,
            n_sym: initial.len(),
        }
    }

    /// Folds in one dense row-major `|Σ|²` transition matrix. `nfa` must
    /// be the automaton this fold was started with. The dense scan skips
    /// zeros in ascending target order — the exact pairs (and order) the
    /// historical `transitions_from` walk yielded.
    pub(crate) fn step(&mut self, nfa: &Nfa, matrix: &[f64]) {
        let k = self.n_sym;
        debug_assert_eq!(matrix.len(), k * k, "step matrix must be |Σ|²");
        let mut next: SubsetLayer<(usize, u32)> = SubsetLayer::with_capacity(self.layer.len());
        for ((d, node), p) in self.layer.sorted() {
            let row = &matrix[node as usize * k..(node as usize + 1) * k];
            for (to, &pt) in row.iter().enumerate() {
                if pt <= 0.0 {
                    continue;
                }
                let d2 = self.det.step(nfa, d, SymbolId(to as u32));
                if !self.det.is_dead(d2) {
                    next.add((d2, to as u32), p * pt);
                }
            }
        }
        self.layer = next;
    }

    /// The current `Pr(S[1..t] ∈ L(A))`. Reduces in ascending key order,
    /// so the result is independent of HashMap iteration order.
    pub(crate) fn probability(&self) -> f64 {
        self.layer.reduce(|&(d, _)| self.det.is_accepting(d))
    }

    /// Serializes the fold's exact state: every materialized subset in id
    /// (discovery) order plus the layer's `(subset id, node) → p` entries.
    /// Restoring re-interns the subsets in the same order, so ids — and
    /// therefore every id-ordered reduction downstream — are reproduced
    /// bit for bit. The transition cache is deliberately not saved: it
    /// refills deterministically on demand.
    pub(crate) fn save(&self, w: &mut crate::incremental::ByteWriter) {
        w.put_u32(self.n_sym as u32);
        w.put_u64(self.det.n_materialized() as u64);
        for id in 0..self.det.n_materialized() {
            let set = self.det.subset(id);
            w.put_u32(set.capacity() as u32);
            let bits: Vec<usize> = set.iter().collect();
            w.put_u32(bits.len() as u32);
            for b in bits {
                w.put_u32(b as u32);
            }
        }
        let entries = self.layer.sorted();
        w.put_u64(entries.len() as u64);
        for ((d, node), p) in entries {
            w.put_u64(d as u64);
            w.put_u32(node);
            w.put_f64(p);
        }
    }

    /// Rebuilds a fold from [`AcceptanceFold::save`] output. `nfa` must be
    /// the automaton the fold was started with; a subset that does not
    /// re-intern to its original id means the blob belongs to a different
    /// query (or is corrupt).
    pub(crate) fn restore(
        nfa: &Nfa,
        r: &mut crate::incremental::ByteReader<'_>,
    ) -> Result<Self, EngineError> {
        let n_sym = r.get_u32()? as usize;
        if n_sym != nfa.n_symbols() {
            return Err(EngineError::BadCheckpoint(format!(
                "fold alphabet {} does not match query alphabet {}",
                n_sym,
                nfa.n_symbols()
            )));
        }
        let mut det = DetCore::new(nfa);
        let n_subsets = r.get_u64()? as usize;
        if n_subsets == 0 {
            return Err(EngineError::BadCheckpoint(
                "fold has no materialized subsets".into(),
            ));
        }
        for id in 0..n_subsets {
            let cap = r.get_u32()? as usize;
            let len = r.get_u32()? as usize;
            let mut bits = Vec::with_capacity(len);
            for _ in 0..len {
                let b = r.get_u32()? as usize;
                if b >= cap {
                    return Err(EngineError::BadCheckpoint(format!(
                        "subset bit {b} out of capacity {cap}"
                    )));
                }
                bits.push(b);
            }
            let set = BitSet::from_iter_with_capacity(cap.max(1), bits);
            let got = det.intern(set);
            if got != id {
                return Err(EngineError::BadCheckpoint(format!(
                    "subset {id} re-interned as {got}; checkpoint does not match this query"
                )));
            }
        }
        let mut layer: SubsetLayer<(usize, u32)> = SubsetLayer::new();
        let n_entries = r.get_u64()? as usize;
        for _ in 0..n_entries {
            let d = r.get_u64()? as usize;
            let node = r.get_u32()?;
            let p = r.get_f64()?;
            if d >= n_subsets || node as usize >= n_sym {
                return Err(EngineError::BadCheckpoint(format!(
                    "layer entry ({d}, {node}) out of range"
                )));
            }
            layer.add((d, node), p);
        }
        Ok(AcceptanceFold { det, layer, n_sym })
    }
}

pub(crate) fn check_nfa_alphabet(nfa: &Nfa, n_symbols: usize) -> Result<(), EngineError> {
    if nfa.n_symbols() != n_symbols {
        return Err(EngineError::AlphabetMismatch {
            transducer: nfa.n_symbols(),
            sequence: n_symbols,
        });
    }
    Ok(())
}

/// `Pr(S ∈ L(A))` for an NFA over `Σ_μ`, by on-the-fly determinization:
/// the DP state is `(node, determinized subset)`, so only subsets actually
/// reachable while scanning `μ` are materialized (this gives Theorem 5.5
/// its `4^{|Q_E|}`-only blow-up downstream).
pub fn acceptance_probability(nfa: &Nfa, m: &MarkovSequence) -> Result<f64, EngineError> {
    check_nfa_alphabet(nfa, m.n_symbols())?;
    let mut fold = AcceptanceFold::start(nfa, m.initial_dist());
    for i in 0..m.len() - 1 {
        fold.step(nfa, m.transition_matrix(i));
    }
    Ok(fold.probability())
}

/// [`acceptance_probability`] over a streamed source — one forward pass,
/// O(reachable subsets × |Σ|) memory, bit-identical to the in-memory form.
pub fn acceptance_probability_source<S: StepSource>(
    nfa: &Nfa,
    src: &mut S,
) -> Result<f64, EngineError> {
    check_nfa_alphabet(nfa, src.alphabet().len())?;
    check_source_fresh(src)?;
    let mut fold = AcceptanceFold::start(nfa, src.initial());
    while let Some(matrix) = src.next_step()? {
        fold.step(nfa, matrix);
    }
    Ok(fold.probability())
}

/// The Lahar-style streaming Boolean query: for every position `i`,
/// `Pr(S[1..i] ∈ L(A))` — "the probability that the query is true at each
/// time period" (§6's description of Lahar's event queries). One scan,
/// same on-the-fly-determinized DP as [`acceptance_probability`];
/// `result[i-1]` is the probability at time `i`, and `result[n-1]` equals
/// `acceptance_probability`.
pub fn prefix_acceptance_probabilities(
    nfa: &Nfa,
    m: &MarkovSequence,
) -> Result<Vec<f64>, EngineError> {
    check_nfa_alphabet(nfa, m.n_symbols())?;
    let mut fold = AcceptanceFold::start(nfa, m.initial_dist());
    let mut out = Vec::with_capacity(m.len());
    out.push(fold.probability());
    for i in 0..m.len() - 1 {
        fold.step(nfa, m.transition_matrix(i));
        out.push(fold.probability());
    }
    Ok(out)
}

/// [`prefix_acceptance_probabilities`] over a streamed source. The output
/// vector is the only O(n) state.
pub fn prefix_acceptance_probabilities_source<S: StepSource>(
    nfa: &Nfa,
    src: &mut S,
) -> Result<Vec<f64>, EngineError> {
    check_nfa_alphabet(nfa, src.alphabet().len())?;
    check_source_fresh(src)?;
    let mut fold = AcceptanceFold::start(nfa, src.initial());
    let mut out = Vec::with_capacity(src.len());
    out.push(fold.probability());
    while let Some(matrix) = src.next_step()? {
        fold.step(nfa, matrix);
        out.push(fold.probability());
    }
    Ok(out)
}

/// The accepting states of a transducer as a [`BitSet`].
pub(crate) fn accepting_bitset(t: &Transducer) -> BitSet {
    BitSet::from_iter_with_capacity(
        t.n_states().max(1),
        (0..t.n_states()).filter(|&q| t.is_accepting(StateId(q as u32))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmark_automata::Alphabet;
    use transmark_markov::numeric::approx_eq;
    use transmark_markov::support::support;
    use transmark_markov::MarkovSequenceBuilder;

    fn sym(i: u32) -> SymbolId {
        SymbolId(i)
    }

    /// μ over {a,b}, n = 3: P(a)=0.6 iid-ish with a slight twist at step 1.
    fn chain() -> MarkovSequence {
        let alphabet = Alphabet::of_chars("ab");
        let (a, b) = (alphabet.sym("a"), alphabet.sym("b"));
        MarkovSequenceBuilder::new(alphabet, 3)
            .initial(a, 0.6)
            .initial(b, 0.4)
            .transition(0, a, a, 0.6)
            .transition(0, a, b, 0.4)
            .transition(0, b, a, 0.6)
            .transition(0, b, b, 0.4)
            .transition(1, a, a, 0.5)
            .transition(1, a, b, 0.5)
            .transition(1, b, a, 0.9)
            .transition(1, b, b, 0.1)
            .build()
            .unwrap()
    }

    /// Identity transducer over {a,b}.
    fn identity() -> Transducer {
        let alphabet = Alphabet::of_chars("ab");
        let mut b = Transducer::builder(alphabet.clone(), alphabet);
        let q = b.add_state(true);
        for s in 0..2u32 {
            b.add_transition(q, sym(s), q, &[sym(s)]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn identity_confidence_is_string_probability() {
        let m = chain();
        let t = identity();
        for (s, p) in support(&m) {
            assert!(approx_eq(confidence(&t, &m, &s).unwrap(), p, 1e-15, 1e-12));
            assert!(approx_eq(
                confidence_deterministic(&t, &m, &s).unwrap(),
                p,
                1e-15,
                1e-12
            ));
            assert!(approx_eq(
                confidence_uniform_nfa(&t, &m, &s).unwrap(),
                p,
                1e-15,
                1e-12
            ));
            assert!(approx_eq(
                confidence_general(&t, &m, &s).unwrap(),
                p,
                1e-15,
                1e-12
            ));
        }
    }

    #[test]
    fn wrong_length_outputs_have_zero_confidence() {
        let m = chain();
        let t = identity();
        assert_eq!(confidence(&t, &m, &[sym(0)]).unwrap(), 0.0);
        assert_eq!(confidence(&t, &m, &[sym(0); 5]).unwrap(), 0.0);
        assert_eq!(confidence(&t, &m, &[]).unwrap(), 0.0);
    }

    #[test]
    fn invalid_output_symbols_are_rejected() {
        let m = chain();
        let t = identity();
        assert!(matches!(
            confidence(&t, &m, &[sym(9)]),
            Err(EngineError::InvalidSymbol {
                alphabet: "output",
                ..
            })
        ));
    }

    #[test]
    fn prefix_acceptance_matches_brute_force() {
        let m = chain();
        // NFA: strings containing "b".
        let mut nfa = Nfa::new(2);
        let q0 = nfa.add_state(false);
        let q1 = nfa.add_state(true);
        nfa.add_transition(q0, sym(0), q0);
        nfa.add_transition(q0, sym(1), q1);
        nfa.add_transition(q1, sym(0), q1);
        nfa.add_transition(q1, sym(1), q1);

        let got = prefix_acceptance_probabilities(&nfa, &m).unwrap();
        assert_eq!(got.len(), 3);
        for (i, &gi) in got.iter().enumerate() {
            let want: f64 = support(&m)
                .iter()
                .filter(|(s, _)| nfa.accepts(&s[..=i]))
                .map(|(_, p)| p)
                .sum();
            assert!(
                approx_eq(gi, want, 1e-12, 1e-10),
                "position {i}: {gi} vs {want}"
            );
        }
        // The last entry is the full acceptance probability, and the
        // series is monotone for this monotone ("ever saw b") property.
        let full = acceptance_probability(&nfa, &m).unwrap();
        assert!(approx_eq(got[2], full, 1e-15, 1e-12));
        assert!(got[0] <= got[1] && got[1] <= got[2]);
    }

    #[test]
    fn answer_exists_on_selective_machines() {
        let m = chain();
        let alphabet = Alphabet::of_chars("ab");
        // Accepts only strings of all-a.
        let mut b = Transducer::builder(alphabet.clone(), alphabet.clone());
        let q = b.add_state(true);
        let dead = b.add_state(false);
        b.add_transition(q, sym(0), q, &[]).unwrap();
        b.add_transition(q, sym(1), dead, &[]).unwrap();
        b.add_transition(dead, sym(0), dead, &[]).unwrap();
        b.add_transition(dead, sym(1), dead, &[]).unwrap();
        let t = b.build().unwrap();
        assert!(answer_exists(&t, &m).unwrap());
        assert!(approx_eq(
            confidence(&t, &m, &[]).unwrap(),
            0.6 * 0.6 * 0.5,
            1e-15,
            1e-12
        ));

        // Now make "all a" impossible: kill a→a at step 0.
        let (a, bb) = (sym(0), sym(1));
        let m2 = MarkovSequenceBuilder::new(Alphabet::of_chars("ab"), 2)
            .initial(a, 1.0)
            .transition(0, a, bb, 1.0)
            .fill_dead_rows_self_loop()
            .build()
            .unwrap();
        assert!(!answer_exists(&t, &m2).unwrap());
    }
}

#[cfg(test)]
mod determinism_tests {
    use super::*;
    use crate::generate::{random_transducer, RandomTransducerSpec, TransducerClass};
    use rand::{rngs::StdRng, SeedableRng};
    use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};

    /// The subset/configuration DPs must be bit-reproducible: HashMap
    /// iteration order varies per map instance, so two calls in one
    /// process already exercise different orders.
    #[test]
    fn probabilities_are_bit_reproducible() {
        let mut rng = StdRng::seed_from_u64(321);
        for _ in 0..10 {
            let m = random_markov_sequence(
                &RandomChainSpec {
                    len: 8,
                    n_symbols: 3,
                    zero_prob: 0.2,
                },
                &mut rng,
            );
            let t = random_transducer(
                &RandomTransducerSpec {
                    n_states: 4,
                    n_input_symbols: 3,
                    n_output_symbols: 2,
                    class: TransducerClass::General,
                    branching: 1.6,
                },
                &mut rng,
            );
            let nfa = t.underlying_nfa();
            let a = acceptance_probability(&nfa, &m).unwrap();
            let b = acceptance_probability(&nfa, &m).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "acceptance probability drifted");
            let s1 = prefix_acceptance_probabilities(&nfa, &m).unwrap();
            let s2 = prefix_acceptance_probabilities(&nfa, &m).unwrap();
            for (x, y) in s1.iter().zip(s2.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "prefix series drifted");
            }
            if let Ok(Some(top)) = crate::emax::top_by_emax(&t, &m) {
                let c1 = confidence_general(&t, &m, &top.output).unwrap();
                let c2 = confidence_general(&t, &m, &top.output).unwrap();
                assert_eq!(c1.to_bits(), c2.to_bits(), "general confidence drifted");
            }
        }
    }
}
