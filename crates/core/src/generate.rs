//! Seeded random transducer generators.
//!
//! Companions to [`transmark_markov::generate`]: random instances for the
//! oracle-based test suites and the benchmark sweeps. Generators can be
//! told to produce each of the paper's transducer classes (general,
//! uniform-emission, deterministic, Mealy, projector) so every Table 2
//! column is exercised.

use std::sync::Arc;

use rand::{Rng, RngExt};
use transmark_automata::{Alphabet, SymbolId};

use crate::transducer::{Transducer, TransducerBuilder};

/// Which §3.1.1 class to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransducerClass {
    /// Arbitrary NFA, arbitrary-length emissions (0..=2 symbols).
    General,
    /// Arbitrary NFA, all emissions of length exactly `k`.
    Uniform(usize),
    /// Complete DFA, arbitrary-length emissions.
    Deterministic,
    /// Deterministic + non-selective + 1-uniform.
    Mealy,
    /// Arbitrary NFA, each emission is the read symbol or `ε`
    /// (requires the output alphabet to mirror the input alphabet).
    Projector,
}

/// Parameters for [`random_transducer`].
#[derive(Debug, Clone)]
pub struct RandomTransducerSpec {
    /// Number of states `|Q|`.
    pub n_states: usize,
    /// Input alphabet size `|Σ|`.
    pub n_input_symbols: usize,
    /// Output alphabet size `|Δ|` (ignored for `Projector`/`Mealy`-with-copy).
    pub n_output_symbols: usize,
    /// The transducer class to generate.
    pub class: TransducerClass,
    /// For nondeterministic classes: expected number of successors per
    /// `(q, σ)` (each candidate target is included independently).
    pub branching: f64,
}

impl Default for RandomTransducerSpec {
    fn default() -> Self {
        Self {
            n_states: 3,
            n_input_symbols: 3,
            n_output_symbols: 2,
            class: TransducerClass::General,
            branching: 1.5,
        }
    }
}

/// Generates a random transducer of the requested class. Guarantees at
/// least one accepting state and, for nondeterministic classes, at least
/// one outgoing transition per `(q, σ)` with probability high enough that
/// most instances have answers (empty-answer instances are still legal).
pub fn random_transducer<R: Rng + ?Sized>(spec: &RandomTransducerSpec, rng: &mut R) -> Transducer {
    assert!(
        spec.n_states >= 1 && spec.n_input_symbols >= 1,
        "degenerate spec"
    );
    let input = Arc::new(Alphabet::from_names(
        (0..spec.n_input_symbols).map(|i| format!("s{i}")),
    ));
    let output: Arc<Alphabet> = match spec.class {
        TransducerClass::Projector => Arc::clone(&input),
        _ => Arc::new(Alphabet::from_names(
            (0..spec.n_output_symbols.max(1)).map(|i| format!("d{i}")),
        )),
    };
    let n_out = output.len();
    let mut b = TransducerBuilder::new(Arc::clone(&input), Arc::clone(&output));

    let non_selective = matches!(spec.class, TransducerClass::Mealy);
    let states: Vec<_> = (0..spec.n_states)
        .map(|_| b.add_state(non_selective || rng.random_bool(0.5)))
        .collect();
    // Ensure at least one accepting state.
    let lucky = states[rng.random_range(0..states.len())];
    b.set_accepting(lucky, true);

    let deterministic = matches!(
        spec.class,
        TransducerClass::Deterministic | TransducerClass::Mealy
    );

    let emission = |rng: &mut R, sym: SymbolId| -> Vec<SymbolId> {
        match spec.class {
            TransducerClass::Uniform(k) => (0..k)
                .map(|_| SymbolId(rng.random_range(0..n_out) as u32))
                .collect(),
            TransducerClass::Mealy => vec![SymbolId(rng.random_range(0..n_out) as u32)],
            TransducerClass::Projector => {
                if rng.random_bool(0.5) {
                    vec![sym]
                } else {
                    vec![]
                }
            }
            TransducerClass::General | TransducerClass::Deterministic => {
                let len = rng.random_range(0..=2usize);
                (0..len)
                    .map(|_| SymbolId(rng.random_range(0..n_out) as u32))
                    .collect()
            }
        }
    };

    for &q in &states {
        for s in 0..spec.n_input_symbols {
            let sym = SymbolId(s as u32);
            if deterministic {
                let to = states[rng.random_range(0..states.len())];
                let em = emission(rng, sym);
                b.add_transition(q, sym, to, &em)
                    .expect("generator produces valid edges");
            } else {
                let p_each = (spec.branching / spec.n_states as f64).clamp(0.05, 1.0);
                for &to in &states {
                    if rng.random_bool(p_each) {
                        let em = emission(rng, sym);
                        b.add_transition(q, sym, to, &em)
                            .expect("generator produces valid edges");
                    }
                }
            }
        }
    }
    b.build().expect("generator produces a nonempty machine")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn classes_have_their_advertised_properties() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let base = RandomTransducerSpec::default();

            let det = random_transducer(
                &RandomTransducerSpec {
                    class: TransducerClass::Deterministic,
                    ..base.clone()
                },
                &mut rng,
            );
            assert!(det.is_deterministic());

            let mealy = random_transducer(
                &RandomTransducerSpec {
                    class: TransducerClass::Mealy,
                    ..base.clone()
                },
                &mut rng,
            );
            assert!(mealy.is_mealy());

            let uni = random_transducer(
                &RandomTransducerSpec {
                    class: TransducerClass::Uniform(2),
                    ..base.clone()
                },
                &mut rng,
            );
            assert_eq!(uni.uniform_emission(), Some(2));

            let proj = random_transducer(
                &RandomTransducerSpec {
                    class: TransducerClass::Projector,
                    ..base
                },
                &mut rng,
            );
            assert!(proj.is_projector());
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let spec = RandomTransducerSpec::default();
        let a = random_transducer(&spec, &mut StdRng::seed_from_u64(3));
        let b = random_transducer(&spec, &mut StdRng::seed_from_u64(3));
        assert_eq!(a.n_states(), b.n_states());
        let ta: Vec<_> = a.transitions().collect();
        let tb: Vec<_> = b.transitions().collect();
        assert_eq!(ta, tb);
    }
}
