//! Parallel-prefix evaluation of the prefix-acceptance series.
//!
//! [`crate::confidence::prefix_acceptance_probabilities`] folds the
//! acceptance DP strictly left to right: `n - 1` dependent steps, O(n)
//! span. This module evaluates the same series by *function composition*:
//! each step's dense `|Σ|²` matrix lifts to a linear operator on the
//! `(determinized subset, node)` state space, operators compose
//! associatively, and contiguous chunks of the sequence compose in
//! parallel before a replay pass emits every prefix probability — the
//! classic two-phase prefix scan. With `C` chunks on `C` workers the
//! critical path is `O(n/C · m²)` operator composition plus an `O(C · m²)`
//! sequential stitch, where `m` is the lifted state count.
//!
//! The determinization here is an *upfront* BFS over every reachable
//! subset (the fold interns subsets lazily in data-dependent discovery
//! order), so the flat state space is known before any worker starts.
//! That is also why scan results are not bit-identical to the fold: the
//! two id orders induce different float accumulation orders. Agreement is
//! within a relative `1e-12` and deterministic for a fixed `(input,
//! thread count)` — see the numerics contract in `transmark_kernel::dp`.
//!
//! Strategy selection ([`Strategy::Scan`] auto-pick) lives in
//! [`crate::plan::PreparedEventQuery::series_with`]; the heuristics here
//! only decide *how* a scan runs (chunked vs. flat sequential replay).

use transmark_automata::{ops::DetCore, Nfa, SymbolId};
use transmark_kernel::{Neumaier, Prob, StepOperator};
use transmark_markov::MarkovSequence;

use crate::confidence::check_nfa_alphabet;
use crate::error::EngineError;

/// Below this sequence length the auto-picker never chooses scan: the
/// fold's one pass is too cheap to be worth worker startup.
pub(crate) const AUTO_MIN_LEN: usize = 4096;

/// Auto-pick budget for the lifted state count: composition inflates work
/// by a factor of `m`, so scan only wins when `m` stays a small multiple
/// of the worker count.
pub(crate) const AUTO_STATES_PER_THREAD: usize = 8;

/// Above this lifted state count the chunked path is skipped even when
/// scan is forced (the `m × m` chunk operators would dominate memory);
/// the scan then runs as a flat sequential replay over the same state
/// space — same numerics, no parallelism.
const MATRIX_STATE_CAP: usize = 512;

/// The query NFA determinized upfront: a complete transition table over
/// every subset reachable from `{q0}`, BFS order, so the scan's flat
/// state space `(subset d, node v) ↦ d·k + v` is fixed before workers
/// start.
pub(crate) struct ScanDfa {
    /// `|Σ|`.
    k: usize,
    /// `step[d * k + σ]` — successor subset id.
    step: Vec<usize>,
    accepting: Vec<bool>,
    /// The dead (empty) subset can never accept again; transitions into
    /// it are dropped, mirroring the fold's eager mass drop.
    dead: Vec<bool>,
}

impl ScanDfa {
    /// BFS-determinizes `nfa`, bailing with `None` as soon as the lifted
    /// state count `subsets · |Σ|` would exceed `state_cap`.
    pub(crate) fn build(nfa: &Nfa, state_cap: usize) -> Option<ScanDfa> {
        let k = nfa.n_symbols();
        let mut det = DetCore::new(nfa);
        let mut step = Vec::new();
        let mut d = 0;
        while d < det.n_materialized() {
            if det.n_materialized().checked_mul(k)? > state_cap {
                return None;
            }
            for s in 0..k {
                step.push(det.step(nfa, d, SymbolId(s as u32)));
            }
            d += 1;
        }
        let n = det.n_materialized();
        Some(ScanDfa {
            k,
            step,
            accepting: (0..n).map(|d| det.is_accepting(d)).collect(),
            dead: (0..n).map(|d| det.is_dead(d)).collect(),
        })
    }

    fn n_subsets(&self) -> usize {
        self.accepting.len()
    }

    /// The lifted state count `m = subsets · |Σ|`.
    pub(crate) fn m_dim(&self) -> usize {
        self.n_subsets() * self.k
    }

    /// Lifts `μ₀→` (dense, length `|Σ|`) into the scan state space: the
    /// first symbol read moves the initial subset.
    fn initial_vector(&self, initial: &[f64]) -> Vec<f64> {
        let mut v = vec![0.0; self.m_dim()];
        for (node, &p) in initial.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let d = self.step[node];
            if !self.dead[d] {
                v[d * self.k + node] += p;
            }
        }
        v
    }

    /// Applies one step's dense `|Σ|²` matrix to a lifted vector.
    /// Iteration is `(d asc, node asc, target asc)` with zeros skipped —
    /// fixed, so results are reproducible per input.
    fn apply_step(&self, matrix: &[f64], cur: &[f64], next: &mut [f64]) {
        let k = self.k;
        debug_assert_eq!(matrix.len(), k * k, "step matrix must be |Σ|²");
        next.fill(0.0);
        for d in 0..self.n_subsets() {
            if self.dead[d] {
                continue;
            }
            let base = d * k;
            let trow = &self.step[base..base + k];
            for node in 0..k {
                let p = cur[base + node];
                if p == 0.0 {
                    continue;
                }
                let row = &matrix[node * k..node * k + k];
                for (to, (&pt, &d2)) in row.iter().zip(trow).enumerate() {
                    if pt <= 0.0 || self.dead[d2] {
                        continue;
                    }
                    next[d2 * k + to] += p * pt;
                }
            }
        }
    }

    /// Lifts one dense `|Σ|²` matrix into the scan state space as an
    /// `m × m` [`StepOperator`]: cell `(d·k+node, d2·k+to) = pt` for every
    /// positive transition `node→to`, where `d2 = step[d·k+to]` and dead
    /// subsets are dropped on both sides. Applying the operator to a
    /// lifted vector visits exactly the products [`ScanDfa::apply_step`]
    /// would, so a single-step operator application is bit-identical to
    /// `apply_step` up to the accumulation-order tolerance the scan path
    /// already documents.
    pub(crate) fn lift_operator(&self, matrix: &[f64]) -> StepOperator<Prob> {
        let k = self.k;
        debug_assert_eq!(matrix.len(), k * k, "step matrix must be |Σ|²");
        let md = self.m_dim();
        let mut cells = vec![0.0; md * md];
        for d in 0..self.n_subsets() {
            if self.dead[d] {
                continue;
            }
            let base = d * k;
            let trow = &self.step[base..base + k];
            for node in 0..k {
                let row = &matrix[node * k..node * k + k];
                for (to, (&pt, &d2)) in row.iter().zip(trow).enumerate() {
                    if pt <= 0.0 || self.dead[d2] {
                        continue;
                    }
                    cells[(base + node) * md + d2 * k + to] = pt;
                }
            }
        }
        StepOperator::from_cells(md, cells)
    }

    /// Lifts `μ₀→` for external callers (the sliding-window machinery).
    pub(crate) fn lift_initial(&self, initial: &[f64]) -> Vec<f64> {
        self.initial_vector(initial)
    }

    /// [`ScanDfa::apply_step`] for external callers.
    pub(crate) fn step_vector(&self, matrix: &[f64], cur: &[f64], next: &mut [f64]) {
        self.apply_step(matrix, cur, next);
    }

    /// [`ScanDfa::probability`] for external callers.
    pub(crate) fn probability_of(&self, v: &[f64]) -> f64 {
        self.probability(v)
    }

    /// `Pr(prefix ∈ L(A))` of a lifted vector: Neumaier over accepting
    /// subsets in ascending flat order.
    fn probability(&self, v: &[f64]) -> f64 {
        let k = self.k;
        let mut acc = Neumaier::new();
        for (d, &ok) in self.accepting.iter().enumerate() {
            if !ok {
                continue;
            }
            for &p in &v[d * k..(d + 1) * k] {
                if p != 0.0 {
                    acc.add(p);
                }
            }
        }
        acc.total()
    }
}

/// Replays steps `[start, end)` from `cur`, writing one probability per
/// step into `out` (`out.len() == end - start`).
fn replay(
    dfa: &ScanDfa,
    m: &MarkovSequence,
    start: usize,
    end: usize,
    mut cur: Vec<f64>,
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), end - start);
    let mut next = vec![0.0; cur.len()];
    for (slot, i) in out.iter_mut().zip(start..end) {
        dfa.apply_step(m.transition_matrix(i), &cur, &mut next);
        std::mem::swap(&mut cur, &mut next);
        *slot = dfa.probability(&cur);
    }
}

/// Composes steps `[start, end)` into one `m × m` chunk operator (row
/// `r` = the basis vector `e_r` pushed through the chunk).
fn compose(dfa: &ScanDfa, m: &MarkovSequence, start: usize, end: usize) -> Vec<f64> {
    let md = dfa.m_dim();
    let mut cur = vec![0.0; md * md];
    for r in 0..md {
        cur[r * md + r] = 1.0;
    }
    let mut next = vec![0.0; md * md];
    for i in start..end {
        let matrix = m.transition_matrix(i);
        for r in 0..md {
            dfa.apply_step(
                matrix,
                &cur[r * md..(r + 1) * md],
                &mut next[r * md..(r + 1) * md],
            );
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// `v · M` for a chunk operator — jumps a chunk-start vector across the
/// whole chunk in `O(m²)`.
fn apply_matrix(md: usize, v: &[f64], mat: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; md];
    for (r, &p) in v.iter().enumerate() {
        if p == 0.0 {
            continue;
        }
        let row = &mat[r * md..(r + 1) * md];
        for (o, &w) in out.iter_mut().zip(row) {
            if w != 0.0 {
                *o += p * w;
            }
        }
    }
    out
}

/// How many chunks a scan of `steps` steps should use on `threads`
/// workers; `1` means flat sequential replay.
fn chunk_count(steps: usize, m_dim: usize, threads: usize) -> usize {
    if threads < 2 || m_dim > MATRIX_STATE_CAP {
        return 1;
    }
    threads.min(steps).max(1)
}

/// Runs the scan over a prebuilt [`ScanDfa`]. Chunked iff `threads ≥ 2`
/// and the lifted state space is small enough for `m × m` operators.
pub(crate) fn run_scan(dfa: &ScanDfa, m: &MarkovSequence, threads: usize) -> Vec<f64> {
    let n = m.len();
    let steps = n.saturating_sub(1);
    let v0 = dfa.initial_vector(m.initial_dist());
    let mut out = vec![0.0; n];
    out[0] = dfa.probability(&v0);
    if steps == 0 {
        return out;
    }
    let chunks = chunk_count(steps, dfa.m_dim(), threads);
    transmark_obs::counter!("core.scan.runs").inc();
    if chunks < 2 {
        transmark_obs::counter!("core.scan.chunks").inc();
        replay(dfa, m, 0, steps, v0, &mut out[1..]);
        return out;
    }

    // The ceiling division can leave trailing chunks empty (e.g. 5 steps
    // on 4 workers → stride 2 → 3 real chunks); recompute the count from
    // the stride so every bound is non-empty.
    let chunk_len = steps.div_ceil(chunks);
    let chunks = steps.div_ceil(chunk_len);
    transmark_obs::counter!("core.scan.chunks").add(chunks as u64);
    let bounds: Vec<(usize, usize)> = (0..chunks)
        .map(|j| (j * chunk_len, ((j + 1) * chunk_len).min(steps)))
        .collect();
    let rec = transmark_obs::profile::current();

    // Phase A: compose every chunk but the last into an m×m operator
    // (the last chunk's operator is never consumed — no chunk starts
    // after it). Chunk 0's replay needs no operator at all, so it runs
    // here too, on the worker the missing operator frees up.
    let (head, tail) = out[1..].split_at_mut(bounds[0].1);
    let start0 = v0.clone();
    let (b0s, b0e) = bounds[0];
    let summaries: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let replay0 = {
            let rec = rec.clone();
            scope.spawn(move || {
                let _lane = rec.as_ref().map(|r| r.install("worker-replay".to_string()));
                let _span = transmark_obs::span::enter("scan.replay");
                replay(dfa, m, b0s, b0e, start0, head);
            })
        };
        let handles: Vec<_> = bounds[..chunks - 1]
            .iter()
            .enumerate()
            .map(|(wi, &(s, e))| {
                let rec = rec.clone();
                scope.spawn(move || {
                    let _lane = rec.as_ref().map(|r| r.install(format!("worker-{wi}")));
                    let _span = transmark_obs::span::enter("scan.compose");
                    compose(dfa, m, s, e)
                })
            })
            .collect();
        let summaries = handles
            .into_iter()
            .map(|h| h.join().expect("scan worker does not panic"))
            .collect();
        replay0.join().expect("scan worker does not panic");
        summaries
    });

    // Stitch: chunk-start vectors, strictly sequential (C−1 matrix·vector
    // jumps — negligible next to the phases).
    let starts: Vec<Vec<f64>> = {
        let _span = transmark_obs::span::enter("scan.stitch");
        let md = dfa.m_dim();
        let mut starts = Vec::with_capacity(chunks);
        starts.push(v0);
        for mat in &summaries {
            let prev = starts.last().expect("seeded above");
            starts.push(apply_matrix(md, prev, mat));
        }
        starts
    };

    // Phase B: replay chunks 1.. in parallel, each into its disjoint
    // output window.
    std::thread::scope(|scope| {
        let mut rest = tail;
        for (j, start) in starts.into_iter().enumerate().skip(1) {
            let (s, e) = bounds[j];
            let (slice, r) = rest.split_at_mut(e - s);
            rest = r;
            let rec = rec.clone();
            scope.spawn(move || {
                let _lane = rec.as_ref().map(|r| r.install(format!("worker-{j}")));
                let _span = transmark_obs::span::enter("scan.replay");
                replay(dfa, m, s, e, start, slice);
            });
        }
    });
    out
}

/// The prefix-acceptance series by parallel-prefix scan — the
/// [`crate::plan::Strategy::Scan`] evaluator. Same series as
/// [`crate::confidence::prefix_acceptance_probabilities`] within a
/// relative `1e-12` (not bitwise; see the module docs), deterministic for
/// a fixed `(input, n_threads)`. `n_threads ≤ 1` runs the flat sequential
/// replay over the same upfront-determinized state space.
pub fn prefix_acceptance_probabilities_scan(
    nfa: &Nfa,
    m: &MarkovSequence,
    n_threads: usize,
) -> Result<Vec<f64>, EngineError> {
    check_nfa_alphabet(nfa, m.n_symbols())?;
    let _span = transmark_obs::span::enter("scan");
    let dfa = {
        let _span = transmark_obs::span::enter("scan.determinize");
        ScanDfa::build(nfa, usize::MAX).expect("uncapped build cannot decline")
    };
    Ok(run_scan(&dfa, m, n_threads.max(1)))
}

/// The auto-picker's scan attempt: `None` when the sequence is too short,
/// the worker count too low, or the lifted state space too large for
/// composition to pay off — the caller falls back to the sequential fold.
pub(crate) fn try_auto_scan(nfa: &Nfa, m: &MarkovSequence, n_threads: usize) -> Option<Vec<f64>> {
    if n_threads < 2 || m.len() < AUTO_MIN_LEN {
        return None;
    }
    let dfa = ScanDfa::build(nfa, AUTO_STATES_PER_THREAD * n_threads)?;
    let _span = transmark_obs::span::enter("scan");
    Some(run_scan(&dfa, m, n_threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::prefix_acceptance_probabilities;
    use rand::{rngs::StdRng, SeedableRng};
    use transmark_automata::StateId;
    use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};

    /// a·b-alternation-flavoured 3-state NFA over Σ = {a, b} with real
    /// nondeterminism (two a-successors from q0).
    fn nfa() -> Nfa {
        let (a, b) = (SymbolId(0), SymbolId(1));
        let mut n = Nfa::new(2);
        let q0 = n.add_state(false);
        let q1 = n.add_state(false);
        let q2 = n.add_state(true);
        n.add_transition(q0, a, q0);
        n.add_transition(q0, b, q0);
        n.add_transition(q0, a, q1);
        n.add_transition(q1, b, q2);
        n.add_transition(q2, a, q2);
        n.add_transition(q2, b, q2);
        n
    }

    fn chain(len: usize, seed: u64) -> MarkovSequence {
        let spec = RandomChainSpec {
            len,
            n_symbols: 2,
            zero_prob: 0.3,
        };
        random_markov_sequence(&spec, &mut StdRng::seed_from_u64(seed))
    }

    fn assert_close(got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let tol = 1e-12 * w.abs().max(1.0);
            assert!((g - w).abs() <= tol, "position {i}: scan {g} vs fold {w}");
        }
    }

    #[test]
    fn flat_scan_matches_fold_within_tolerance() {
        let n = nfa();
        for seed in 0..4 {
            let m = chain(97, seed);
            let fold = prefix_acceptance_probabilities(&n, &m).unwrap();
            let scan = prefix_acceptance_probabilities_scan(&n, &m, 1).unwrap();
            assert_close(&scan, &fold);
        }
    }

    #[test]
    fn chunked_scan_matches_fold_within_tolerance() {
        let n = nfa();
        for threads in [2, 3, 4, 7] {
            let m = chain(301, threads as u64);
            let fold = prefix_acceptance_probabilities(&n, &m).unwrap();
            let scan = prefix_acceptance_probabilities_scan(&n, &m, threads).unwrap();
            assert_close(&scan, &fold);
        }
    }

    #[test]
    fn step_counts_near_the_worker_count_chunk_cleanly() {
        // steps barely above threads: the ceiling stride leaves trailing
        // chunks empty unless the count is recomputed (5 steps on 4
        // workers → stride 2 → 3 chunks, not 4).
        let n = nfa();
        for (len, threads) in [(6, 4), (5, 4), (9, 7), (4, 3), (3, 2)] {
            let m = chain(len, 17);
            let fold = prefix_acceptance_probabilities(&n, &m).unwrap();
            let scan = prefix_acceptance_probabilities_scan(&n, &m, threads).unwrap();
            assert_close(&scan, &fold);
        }
    }

    #[test]
    fn chunked_scan_is_reproducible_per_thread_count() {
        let n = nfa();
        let m = chain(256, 9);
        let a = prefix_acceptance_probabilities_scan(&n, &m, 4).unwrap();
        let b = prefix_acceptance_probabilities_scan(&n, &m, 4).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn degenerate_lengths() {
        let n = nfa();
        let m = chain(1, 3);
        let fold = prefix_acceptance_probabilities(&n, &m).unwrap();
        let scan = prefix_acceptance_probabilities_scan(&n, &m, 4).unwrap();
        assert_close(&scan, &fold);
        assert_eq!(scan.len(), 1);
    }

    #[test]
    fn dfa_build_respects_state_cap() {
        let n = nfa();
        assert!(ScanDfa::build(&n, 1).is_none());
        let dfa = ScanDfa::build(&n, usize::MAX).unwrap();
        assert!(dfa.m_dim() >= 2);
    }

    #[test]
    fn auto_scan_declines_short_or_serial_inputs() {
        let n = nfa();
        let m = chain(64, 1);
        assert!(try_auto_scan(&n, &m, 8).is_none(), "too short");
        let long = chain(AUTO_MIN_LEN, 2);
        assert!(try_auto_scan(&n, &long, 1).is_none(), "one thread");
        let got = try_auto_scan(&n, &long, 4).expect("eligible");
        let fold = prefix_acceptance_probabilities(&n, &long).unwrap();
        assert_close(&got, &fold);
    }

    #[test]
    fn always_accepting_single_state_query_stays_at_one() {
        let mut n = Nfa::new(2);
        let q0 = n.add_state(true);
        for s in 0..2 {
            n.add_transition(q0, SymbolId(s), q0);
        }
        let _ = StateId(0);
        let m = chain(128, 5);
        let scan = prefix_acceptance_probabilities_scan(&n, &m, 4).unwrap();
        for p in scan {
            assert!((p - 1.0).abs() < 1e-12);
        }
    }
}
