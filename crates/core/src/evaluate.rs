//! High-level query evaluation: one entry point tying the engine
//! together.
//!
//! [`Evaluation`] validates a `(transducer, Markov sequence)` pair once
//! and then exposes the evaluation modes of §3.2 as methods, picking the
//! right algorithm per the machine's class (Table 2) and attaching exact
//! confidences to ranked answers when that is tractable.
//!
//! Since the prepared-query refactor this facade is a thin veneer over
//! [`crate::plan`]: construction compiles (or adopts) a
//! [`PreparedQuery`], binds it to the sequence, and every method executes
//! the resulting [`BoundQuery`] — so repeated calls share the precompiled
//! machine-side artifacts, and [`Evaluation::with_plan`] lets callers
//! (the store's fleet evaluation, batch CLIs) amortize one plan across
//! many sequences. Results are bit-identical to the legacy free
//! functions.

use std::sync::Arc;

use transmark_automata::SymbolId;
use transmark_markov::MarkovSequence;

use crate::emax::EmaxResult;
use crate::enumerate::{enumerate_by_emax_planned, enumerate_unranked_with, RankedAnswer};
use crate::error::EngineError;
use crate::plan::{prepare, BoundQuery, PlanExplain, PreparedQuery, Strategy};
use crate::transducer::Transducer;

/// How expensive exact confidence computation is for a machine
/// (the columns of Table 2 that apply to plain transducers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfidenceCost {
    /// Deterministic: polynomial (Theorem 4.6).
    Polynomial,
    /// Nondeterministic but k-uniform: `O(4^{|Q|})` (Theorem 4.8).
    ExponentialInStates,
    /// General: exponential in reachable configurations (Prop. 4.7).
    ExponentialWorstCase,
}

/// A fully scored answer.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredAnswer {
    /// The output string.
    pub output: Vec<SymbolId>,
    /// `E_max(output)` — the best-evidence score the ranking used.
    pub emax: f64,
    /// The exact confidence `Pr(S →[A^ω]→ output)`.
    pub confidence: f64,
}

/// A validated query/data pair with evaluation methods — a compiled plan
/// bound to one sequence.
pub struct Evaluation<'a> {
    t: &'a Transducer,
    m: &'a MarkovSequence,
    bound: BoundQuery<'a>,
}

impl<'a> Evaluation<'a> {
    /// Validates alphabets, compiles a fresh plan, and binds it.
    pub fn new(t: &'a Transducer, m: &'a MarkovSequence) -> Result<Self, EngineError> {
        let plan = prepare(t);
        let bound = plan.bind(m)?;
        Ok(Self { t, m, bound })
    }

    /// [`Evaluation::new`] with the bind's execution strategy forced
    /// (`None` = planner choice). [`Strategy::Scan`] is rejected here —
    /// it only applies to prefix-series evaluation.
    pub fn with_strategy(
        t: &'a Transducer,
        m: &'a MarkovSequence,
        strategy: Option<Strategy>,
    ) -> Result<Self, EngineError> {
        let plan = prepare(t);
        let bound = plan.bind_with_strategy(m, strategy)?;
        Ok(Self { t, m, bound })
    }

    /// Binds an already-compiled plan (from a plan cache or a previous
    /// evaluation) to a sequence, skipping recompilation. The plan's own
    /// transducer is the query.
    pub fn with_plan(
        plan: &'a Arc<PreparedQuery>,
        m: &'a MarkovSequence,
    ) -> Result<Self, EngineError> {
        Self::with_plan_strategy(plan, m, None)
    }

    /// [`Evaluation::with_plan`] with the bind's execution strategy
    /// forced (`None` = planner choice).
    pub fn with_plan_strategy(
        plan: &'a Arc<PreparedQuery>,
        m: &'a MarkovSequence,
        strategy: Option<Strategy>,
    ) -> Result<Self, EngineError> {
        let bound = plan.bind_with_strategy(m, strategy)?;
        Ok(Self {
            t: plan.transducer(),
            m,
            bound,
        })
    }

    /// The compiled plan behind this evaluation.
    pub fn plan(&self) -> &Arc<PreparedQuery> {
        self.bound.plan()
    }

    /// EXPLAIN-style introspection: selected Table 2 route, machine shape,
    /// precompile cost, plan-cache traffic so far, and this bind's
    /// execution strategy.
    pub fn explain(&self) -> PlanExplain {
        self.bound.explain()
    }

    /// The execution strategy this evaluation's bind runs under.
    pub fn strategy(&self) -> Strategy {
        self.bound.strategy()
    }

    /// The Table 2 cost class of exact confidence for this machine.
    pub fn confidence_cost(&self) -> ConfidenceCost {
        self.bound.plan().kind().confidence_cost()
    }

    /// Whether the query has any answer (`Pr(S ∈ L(A)) > 0`).
    pub fn has_answers(&self) -> Result<bool, EngineError> {
        self.bound.answer_exists()
    }

    /// The confidence of a specific output (algorithm auto-selected).
    pub fn confidence(&self, o: &[SymbolId]) -> Result<f64, EngineError> {
        self.bound.confidence(o)
    }

    /// Whether `o` is an answer (always polynomial, §3.2).
    pub fn is_answer(&self, o: &[SymbolId]) -> Result<bool, EngineError> {
        self.bound.is_answer(o)
    }

    /// The top answer by best evidence, with its witnessing world.
    pub fn top(&self) -> Result<Option<EmaxResult>, EngineError> {
        self.bound.top()
    }

    /// All answers, lexicographically, with polynomial delay and space
    /// (Theorem 4.1).
    pub fn unranked(&self) -> Result<impl Iterator<Item = Vec<SymbolId>> + 'a, EngineError> {
        Ok(enumerate_unranked_with(
            self.t,
            self.m,
            Arc::clone(self.bound.steps_shared()),
            Arc::clone(self.bound.plan()),
        ))
    }

    /// All answers in decreasing `E_max` with polynomial delay
    /// (Theorem 4.3).
    pub fn ranked(&self) -> Result<impl Iterator<Item = RankedAnswer> + 'a, EngineError> {
        Ok(enumerate_by_emax_planned(
            Arc::clone(self.bound.plan()),
            Arc::clone(self.bound.steps_shared()),
        ))
    }

    /// The top-k answers by `E_max`, each with its exact confidence.
    ///
    /// This is the paper's recommended practical mode: the ranking is the
    /// provably-best polynomial heuristic, and the confidence attached to
    /// each reported answer is exact (polynomial when
    /// [`Evaluation::confidence_cost`] is `Polynomial`).
    pub fn top_k_scored(&self, k: usize) -> Result<Vec<ScoredAnswer>, EngineError> {
        self.bound.top_k_scored(k)
    }

    /// Anytime certified top answer by *true confidence* (deterministic
    /// machines only; see [`crate::certified`]). Inspects at most
    /// `budget` answers.
    pub fn certified_top(
        &self,
        budget: usize,
    ) -> Result<Option<crate::certified::CertifiedTop>, EngineError> {
        crate::certified::certified_top_by_confidence(self.t, self.m, budget)
    }

    /// The k most probable worlds behind an answer (provenance; see
    /// [`crate::evidence`]).
    pub fn top_evidences(
        &self,
        o: &[SymbolId],
        k: usize,
    ) -> Result<Vec<crate::evidence::Evidence>, EngineError> {
        self.bound.top_evidences(o, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmark_automata::Alphabet;
    use transmark_markov::MarkovSequenceBuilder;

    fn sym(i: u32) -> SymbolId {
        SymbolId(i)
    }

    fn setup() -> (Transducer, MarkovSequence) {
        let alphabet = Alphabet::of_chars("ab");
        let m = MarkovSequenceBuilder::new(alphabet.clone(), 3)
            .uniform_all()
            .build()
            .unwrap();
        let mut b = Transducer::builder(alphabet.clone(), alphabet);
        let q = b.add_state(true);
        for s in 0..2u32 {
            b.add_transition(q, sym(s), q, &[sym(s)]).unwrap();
        }
        (b.build().unwrap(), m)
    }

    #[test]
    fn evaluation_facade_works_end_to_end() {
        let (t, m) = setup();
        let ev = Evaluation::new(&t, &m).unwrap();
        assert_eq!(ev.confidence_cost(), ConfidenceCost::Polynomial);
        assert!(ev.has_answers().unwrap());
        let scored = ev.top_k_scored(3).unwrap();
        assert_eq!(scored.len(), 3);
        for s in &scored {
            // Identity over a uniform chain: every answer has conf = 1/8,
            // and E_max = conf (single evidence each).
            assert!((s.confidence - 0.125).abs() < 1e-12);
            assert!((s.emax - 0.125).abs() < 1e-12);
            assert!(ev.is_answer(&s.output).unwrap());
        }
        assert_eq!(ev.unranked().unwrap().count(), 8);
        assert_eq!(ev.ranked().unwrap().count(), 8);
        let top = ev.top().unwrap().unwrap();
        assert!((top.prob() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn cost_classification() {
        let alphabet = Alphabet::of_chars("a");
        // Nondeterministic 1-uniform.
        let mut b = Transducer::builder(alphabet.clone(), alphabet.clone());
        let q0 = b.add_state(true);
        let q1 = b.add_state(true);
        b.add_transition(q0, sym(0), q0, &[sym(0)]).unwrap();
        b.add_transition(q0, sym(0), q1, &[sym(0)]).unwrap();
        let t = b.build().unwrap();
        let m = MarkovSequenceBuilder::new(Alphabet::of_chars("a"), 1)
            .initial(sym(0), 1.0)
            .build()
            .unwrap();
        let ev = Evaluation::new(&t, &m).unwrap();
        assert_eq!(ev.confidence_cost(), ConfidenceCost::ExponentialInStates);
    }

    #[test]
    fn mismatched_alphabets_rejected_at_construction() {
        let (t, _) = setup();
        let m3 = MarkovSequenceBuilder::new(Alphabet::of_chars("abc"), 2)
            .uniform_all()
            .build()
            .unwrap();
        assert!(Evaluation::new(&t, &m3).is_err());
    }
}

#[cfg(test)]
mod facade_extension_tests {
    use super::*;
    use transmark_automata::Alphabet;
    use transmark_markov::MarkovSequenceBuilder;

    #[test]
    fn certified_top_and_evidences_through_the_facade() {
        let alphabet = Alphabet::of_chars("ab");
        let (a, b_) = (alphabet.sym("a"), alphabet.sym("b"));
        let m = MarkovSequenceBuilder::new(alphabet.clone(), 3)
            .initial(a, 0.9)
            .initial(b_, 0.1)
            .transition(0, a, a, 0.9)
            .transition(0, a, b_, 0.1)
            .transition(0, b_, b_, 1.0)
            .transition(1, a, a, 0.9)
            .transition(1, a, b_, 0.1)
            .transition(1, b_, b_, 1.0)
            .build()
            .unwrap();
        let mut tb = Transducer::builder(alphabet.clone(), alphabet);
        let q = tb.add_state(true);
        tb.add_transition(q, a, q, &[a]).unwrap();
        tb.add_transition(q, b_, q, &[b_]).unwrap();
        let t = tb.build().unwrap();

        let ev = Evaluation::new(&t, &m).unwrap();
        let top = ev.certified_top(100).unwrap().expect("answers exist");
        assert!(top.certified);
        // Identity: aaa is the dominant world (0.9³ = 0.729 > residual).
        assert_eq!(top.answers_inspected, 1);
        assert!((top.confidence - 0.729).abs() < 1e-12);

        // Evidence view of the same answer.
        let evs = ev.top_evidences(&top.output, 3).unwrap();
        assert_eq!(evs.len(), 1, "identity: one world per answer");
        assert_eq!(evs[0].world, top.output);
        assert!((evs[0].prob() - top.confidence).abs() < 1e-12);
    }
}
