//! Best evidence: the `E_max` scoring function (§4.2).
//!
//! `E_max(o)` is the probability of the most likely possible world
//! (*evidence*) transduced into `o`. The paper's heuristic ranked
//! enumeration (Theorem 4.3) orders answers by decreasing `E_max`, which
//! approximates decreasing confidence within a factor `|Σ|ⁿ` — and
//! Theorem 4.4 shows that, up to sub-exponential factors, no polynomial
//! algorithm does better.
//!
//! [`top_by_emax`] is the core optimizer: a Viterbi pass over the layered
//! product graph (position × node × transducer state) that maximizes
//! `p(s)` over accepting (string, run) pairs and returns the run's output.
//! Because every evidence of the returned output lives in the same search
//! space, the returned score *is* `E_max` of the returned output, and it
//! is maximal among all answers. Prefix constraints are enforced upstream
//! by [`crate::constraints::constrain`], which is what Theorem 4.3's
//! Lawler–Murty instantiation does.

use transmark_automata::{StateId, SymbolId};
use transmark_kernel::{advance, count_layers, BackEdge, ExecSteps, LayerCsr, MaxLog, Workspace};
use transmark_markov::{MarkovSequence, StepSource};

use crate::error::EngineError;
use crate::transducer::Transducer;

/// Result of an `E_max` optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct EmaxResult {
    /// The output string of the best (string, run) pair — the top answer.
    pub output: Vec<SymbolId>,
    /// The best evidence: the most likely string transduced into `output`.
    pub evidence: Vec<SymbolId>,
    /// `ln E_max(output)` (`= ln p(evidence)`).
    pub log_prob: f64,
}

impl EmaxResult {
    /// `E_max(output)` in linear space.
    pub fn prob(&self) -> f64 {
        self.log_prob.exp()
    }
}

/// The top answer by `E_max`: maximizes `p(s)` over all `(s, run)` with
/// `run` accepting, and returns the run's output (Theorem 4.3's
/// constrained optimizer, with constraints pre-applied via
/// [`crate::constraints::constrain`]).
///
/// A tracked (back-pointered) Viterbi pass of the kernel over the
/// state-only step graph; edge payloads carry the interned emission ids
/// the traceback concatenates into the output.
///
/// Returns `None` when the (possibly constrained) query has no answer.
/// `O(n·|Σ|²·|Q|·b)` time, `O(n·|Σ|·|Q|)` space for the back-pointers.
///
/// Legacy convenience routing through the prepared API
/// ([`BoundQuery::top`](crate::plan::BoundQuery::top)).
pub fn top_by_emax(t: &Transducer, m: &MarkovSequence) -> Result<Option<EmaxResult>, EngineError> {
    crate::plan::prepare(t).bind(m)?.top()
}

/// The tracked Viterbi pass over precompiled artifacts. `graph` must be
/// `state_step_graph(t)` and `steps` the bound execution view of the
/// sequence (sparse and dense advance bit-identically).
pub(crate) fn top_by_emax_impl(
    t: &Transducer,
    steps: ExecSteps<'_>,
    graph: &transmark_kernel::StepGraph,
) -> Option<EmaxResult> {
    let n = steps.n_steps() + 1;
    let n_nodes = steps.n_nodes();
    let nq = t.n_states();
    let sz = n_nodes * nq;
    let idx = |node: usize, q: usize| node * nq + q;

    let mut score = vec![f64::NEG_INFINITY; sz];
    let mut backs: Vec<Vec<BackEdge>> = Vec::with_capacity(n);
    let mut first_back = vec![BackEdge::NONE; sz];

    for &(node, p) in steps.initial() {
        let lp = p.ln();
        for e in graph.edges(node, t.initial().0) {
            let cell = idx(node as usize, e.to as usize);
            if lp > score[cell] {
                score[cell] = lp;
                first_back[cell] = BackEdge {
                    prev: u32::MAX,
                    payload: e.payload,
                };
            }
        }
    }
    backs.push(first_back);

    for i in 0..n - 1 {
        let mut next = vec![f64::NEG_INFINITY; sz];
        let mut back = vec![BackEdge::NONE; sz];
        steps.advance_tracked(i, graph, &score, &mut next, &mut back);
        score = next;
        backs.push(back);
    }
    count_layers((n - 1) as u64);

    // Best accepting cell in the last layer.
    let mut best_cell = None;
    let mut best = f64::NEG_INFINITY;
    for node in 0..n_nodes {
        for q in 0..nq {
            if t.is_accepting(StateId(q as u32)) && score[idx(node, q)] > best {
                best = score[idx(node, q)];
                best_cell = Some((node, q));
            }
        }
    }
    let (mut node, mut q) = best_cell?;

    // Traceback: recover the evidence string and the emission sequence.
    // A back-pointer's `prev` is the flat source cell `node * nq + q`.
    let mut evidence_rev: Vec<SymbolId> = Vec::with_capacity(n);
    let mut emissions_rev: Vec<u32> = Vec::with_capacity(n);
    for layer in backs.iter().rev() {
        let b = layer[idx(node, q)];
        evidence_rev.push(SymbolId(node as u32));
        emissions_rev.push(b.payload);
        if b.prev == u32::MAX {
            break;
        }
        node = b.prev as usize / nq;
        q = b.prev as usize % nq;
    }
    evidence_rev.reverse();
    emissions_rev.reverse();
    let mut output = Vec::new();
    for em in emissions_rev {
        output.extend_from_slice(t.emission(crate::transducer::EmissionId(em)));
    }
    Some(EmaxResult {
        output,
        evidence: evidence_rev,
        log_prob: best,
    })
}

/// `ln E_max(o)` for a *specific* output string `o` — the max-probability
/// evidence transduced into exactly `o` (`-∞` if `o` is not an answer).
///
/// A max-product DP over (node, state, output position) — the kernel's
/// [`MaxLog`] semiring over the same output step graph as
/// [`crate::confidence::confidence_deterministic`]:
/// `O(|o|·n·|Σ|²·|Q|·b)`.
///
/// Legacy convenience routing through the prepared API
/// ([`BoundQuery::emax_of_output`](crate::plan::BoundQuery::emax_of_output)).
pub fn emax_of_output(
    t: &Transducer,
    m: &MarkovSequence,
    o: &[SymbolId],
) -> Result<f64, EngineError> {
    crate::plan::prepare(t).bind(m)?.emax_of_output(o)
}

/// The max-product positional DP over precompiled artifacts. `graph` must
/// be `output_step_graph(t, o)` for an `o` of length `o_len`.
pub(crate) fn emax_of_output_impl(
    t: &Transducer,
    steps: ExecSteps<'_>,
    graph: &transmark_kernel::StepGraph,
    ws: &mut Workspace<f64>,
    o_len: usize,
) -> f64 {
    let n = steps.n_steps() + 1;
    let n_nodes = steps.n_nodes();
    let nq = t.n_states();
    let width = o_len + 1;
    let nr = graph.n_rows();

    ws.reset(n_nodes * nr, f64::NEG_INFINITY);
    let init_row = (t.initial().index() * width) as u32;
    for &(node, p) in steps.initial() {
        let lp = p.ln();
        for e in graph.edges(node, init_row) {
            let cell = &mut ws.cur_mut()[node as usize * nr + e.to as usize];
            *cell = cell.max(lp);
        }
    }
    for i in 0..n - 1 {
        ws.clear_next(f64::NEG_INFINITY);
        let (cur, next) = ws.buffers();
        steps.advance::<MaxLog>(i, graph, cur, next);
        ws.swap();
    }
    count_layers((n - 1) as u64);
    let cur = ws.cur();
    let mut best = f64::NEG_INFINITY;
    for node in 0..n_nodes {
        for q in 0..nq {
            if t.is_accepting(StateId(q as u32)) {
                best = best.max(cur[node * nr + q * width + o_len]);
            }
        }
    }
    best
}

/// `ln E_max(o)` over a streamed source — a forward-only max-product pass
/// (no traceback is needed for the *score*, unlike [`top_by_emax`], whose
/// back-pointers are inherently O(n)). Each pulled layer is compacted via
/// [`LayerCsr`], so the result is bit-identical to [`emax_of_output`].
///
/// Legacy convenience routing through the prepared API
/// ([`SourceBoundQuery::emax_of_output`](crate::plan::SourceBoundQuery::emax_of_output)).
pub fn emax_of_output_source<S: StepSource>(
    t: &Transducer,
    src: &mut S,
    o: &[SymbolId],
) -> Result<f64, EngineError> {
    crate::plan::prepare(t).bind_source(src)?.emax_of_output(o)
}

/// The streamed max-product positional DP over precompiled artifacts.
pub(crate) fn emax_of_output_source_impl<S: StepSource>(
    t: &Transducer,
    src: &mut S,
    graph: &transmark_kernel::StepGraph,
    ws: &mut Workspace<f64>,
    o_len: usize,
) -> Result<f64, EngineError> {
    let n_nodes = src.alphabet().len();
    let nq = t.n_states();
    let width = o_len + 1;
    let nr = graph.n_rows();

    ws.reset(n_nodes * nr, f64::NEG_INFINITY);
    let init_row = (t.initial().index() * width) as u32;
    for (node, &p) in src.initial().iter().enumerate() {
        if p > 0.0 {
            let lp = p.ln();
            for e in graph.edges(node as u32, init_row) {
                let cell = &mut ws.cur_mut()[node * nr + e.to as usize];
                *cell = cell.max(lp);
            }
        }
    }
    let mut csr = LayerCsr::new();
    let mut layers = 0u64;
    while let Some(matrix) = src.next_step()? {
        csr.load_dense(n_nodes, matrix);
        ws.clear_next(f64::NEG_INFINITY);
        let (cur, next) = ws.buffers();
        advance::<MaxLog, _>(&csr, graph, cur, next);
        ws.swap();
        layers += 1;
    }
    count_layers(layers);
    let cur = ws.cur();
    let mut best = f64::NEG_INFINITY;
    for node in 0..n_nodes {
        for q in 0..nq {
            if t.is_accepting(StateId(q as u32)) {
                best = best.max(cur[node * nr + q * width + o_len]);
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmark_automata::Alphabet;
    use transmark_markov::MarkovSequenceBuilder;

    fn sym(i: u32) -> SymbolId {
        SymbolId(i)
    }

    /// Collapsing Mealy machine: both input symbols map to output "z",
    /// so E_max(zz…z) is the single most likely world.
    #[test]
    fn collapsing_machine_emax_is_viterbi() {
        let input = Alphabet::of_chars("ab");
        let output = Alphabet::of_chars("z");
        let m = MarkovSequenceBuilder::new(input.clone(), 3)
            .initial(sym(0), 0.9)
            .initial(sym(1), 0.1)
            .transition(0, sym(0), sym(0), 0.6)
            .transition(0, sym(0), sym(1), 0.4)
            .transition(0, sym(1), sym(1), 1.0)
            .transition(1, sym(0), sym(0), 1.0)
            .transition(1, sym(1), sym(0), 0.5)
            .transition(1, sym(1), sym(1), 0.5)
            .build()
            .unwrap();
        let mut b = Transducer::builder(input, output.clone());
        let q = b.add_state(true);
        for s in 0..2u32 {
            b.add_transition(q, sym(s), q, &[output.sym("z")]).unwrap();
        }
        let t = b.build().unwrap();

        let top = top_by_emax(&t, &m).unwrap().unwrap();
        // Only one answer: zzz. Its E_max is the Viterbi path of μ.
        assert_eq!(top.output, vec![output.sym("z"); 3]);
        let (viterbi, p) = m.most_likely_string();
        assert_eq!(top.evidence, viterbi);
        assert!((top.prob() - p).abs() < 1e-12);
        // And emax_of_output agrees.
        let e = emax_of_output(&t, &m, &top.output).unwrap().exp();
        assert!((e - p).abs() < 1e-12);
    }

    #[test]
    fn emax_of_non_answer_is_zero() {
        let input = Alphabet::of_chars("a");
        let output = Alphabet::of_chars("xy");
        let m = MarkovSequenceBuilder::new(input.clone(), 2)
            .uniform_all()
            .build()
            .unwrap();
        let mut b = Transducer::builder(input, output.clone());
        let q = b.add_state(true);
        b.add_transition(q, sym(0), q, &[output.sym("x")]).unwrap();
        let t = b.build().unwrap();
        // "yy" can never be emitted.
        let e = emax_of_output(&t, &m, &[output.sym("y"), output.sym("y")]).unwrap();
        assert_eq!(e, f64::NEG_INFINITY);
        // "xx" is the sole answer with E_max = 1.
        let e2 = emax_of_output(&t, &m, &[output.sym("x"), output.sym("x")]).unwrap();
        assert!((e2.exp() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_accepting_path_yields_none() {
        let input = Alphabet::of_chars("a");
        let m = MarkovSequenceBuilder::new(input.clone(), 1)
            .initial(sym(0), 1.0)
            .build()
            .unwrap();
        let mut b = Transducer::builder(input.clone(), input);
        let q = b.add_state(false);
        b.add_transition(q, sym(0), q, &[]).unwrap();
        let t = b.build().unwrap();
        assert!(top_by_emax(&t, &m).unwrap().is_none());
    }
}
