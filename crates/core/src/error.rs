//! Error type for the query engine.

use std::fmt;

use transmark_automata::AutomataError;
use transmark_markov::MarkovError;

/// Errors produced while building transducers or evaluating queries.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The transducer's input alphabet does not match the Markov
    /// sequence's node alphabet (the paper assumes `Σ_A = Σ_μ`).
    AlphabetMismatch {
        /// Alphabet size on the query side.
        transducer: usize,
        /// Alphabet size on the data side.
        sequence: usize,
    },
    /// A `(q, σ, q')` transition was added twice with different emissions —
    /// deterministic emission requires `ω` to be a function of the triple.
    EmissionConflict {
        /// The source state.
        from: usize,
        /// The symbol read.
        symbol: usize,
        /// The target state.
        to: usize,
    },
    /// A state id was out of range.
    InvalidState {
        /// The offending state id.
        state: usize,
        /// The machine's state count.
        n_states: usize,
    },
    /// A symbol id was out of range for the given alphabet.
    InvalidSymbol {
        /// The offending symbol id.
        symbol: usize,
        /// The alphabet size.
        n_symbols: usize,
        /// Which alphabet: "input" or "output".
        alphabet: &'static str,
    },
    /// The operation requires a deterministic transducer.
    NotDeterministic,
    /// The operation requires uniform emission.
    NotUniform,
    /// The transducer has no states.
    EmptyTransducer,
    /// An underlying automata-toolkit error.
    Automata(AutomataError),
    /// An underlying Markov-sequence error.
    Markov(MarkovError),
    /// Pulling from a streamed step source failed (I/O, parse, or
    /// validation; the message carries the source's own diagnostic).
    Source(String),
    /// A single-pass streamed evaluation was started on a source whose
    /// cursor is not at step 0 — rewind it (or bind a fresh source) first.
    SourceConsumed {
        /// The cursor position the source was found at.
        position: usize,
    },
    /// An explicitly requested execution strategy cannot run the query
    /// shape it was asked to (e.g. the parallel-prefix scan outside
    /// prefix-series evaluation).
    UnsupportedStrategy {
        /// The requested strategy's label.
        strategy: &'static str,
        /// What it was asked to execute.
        query: &'static str,
    },
    /// A store-layer failure (unknown stream, persistence I/O, …) folded
    /// into the engine error so facade entry points return one type. The
    /// `From<StoreError>` impl lives in `transmark-store` (orphan rule);
    /// the message carries the store's own diagnostic.
    Store(String),
    /// A serialized [`crate::incremental::StreamCheckpoint`] blob could
    /// not be decoded or does not belong to the query it was resumed
    /// against (truncated, corrupted, wrong version, or fingerprint
    /// mismatch).
    BadCheckpoint(String),
}

/// The one error type of the public facade: every `transmark` entry point
/// returns `Result<_, TmkError>`. Automata, Markov, source, and store
/// errors all convert into it via `From`, so `?` composes across layers.
pub type TmkError = EngineError;

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::AlphabetMismatch { transducer, sequence } => write!(
                f,
                "transducer input alphabet ({transducer} symbols) does not match Markov sequence alphabet ({sequence} symbols)"
            ),
            EngineError::EmissionConflict { from, symbol, to } => write!(
                f,
                "transition ({from}, {symbol}, {to}) already exists with a different emission (deterministic emission violated)"
            ),
            EngineError::InvalidState { state, n_states } => {
                write!(f, "state {state} out of range ({n_states} states)")
            }
            EngineError::InvalidSymbol { symbol, n_symbols, alphabet } => {
                write!(f, "{alphabet} symbol {symbol} out of range ({n_symbols} symbols)")
            }
            EngineError::NotDeterministic => {
                write!(f, "this algorithm requires a deterministic transducer")
            }
            EngineError::NotUniform => {
                write!(f, "this algorithm requires uniform emission")
            }
            EngineError::EmptyTransducer => write!(f, "the transducer has no states"),
            EngineError::Automata(e) => write!(f, "{e}"),
            EngineError::Markov(e) => write!(f, "{e}"),
            EngineError::Source(m) => write!(f, "step source error: {m}"),
            EngineError::SourceConsumed { position } => write!(
                f,
                "step source already consumed ({position} steps pulled); rewind it before another pass"
            ),
            EngineError::UnsupportedStrategy { strategy, query } => write!(
                f,
                "execution strategy {strategy:?} cannot run {query}"
            ),
            EngineError::Store(m) => write!(f, "store error: {m}"),
            EngineError::BadCheckpoint(m) => write!(f, "bad checkpoint: {m}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Automata(e) => Some(e),
            EngineError::Markov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AutomataError> for EngineError {
    fn from(e: AutomataError) -> Self {
        EngineError::Automata(e)
    }
}

impl From<MarkovError> for EngineError {
    fn from(e: MarkovError) -> Self {
        EngineError::Markov(e)
    }
}

// `SourceError` owns an `io::Error`, which is neither `Clone` nor
// `PartialEq`, so it is carried as its rendered message.
impl From<transmark_markov::SourceError> for EngineError {
    fn from(e: transmark_markov::SourceError) -> Self {
        EngineError::Source(e.to_string())
    }
}
