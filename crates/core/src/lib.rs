#![warn(missing_docs)]
// The layered DP kernels live in `transmark-kernel`; what remains here are
// seed/reduce loops and graph builders over (position, node, state)
// indices, where the clippy suggestion (iterators with enumerate/zip)
// obscures the indexing the kernel's cell layout is defined by.
#![allow(clippy::needless_range_loop)]

//! The `transmark` query engine: evaluating finite-state transducers over
//! Markov sequences.
//!
//! This crate is the reproduction of the primary contribution of
//! "Transducing Markov Sequences" (Kimelfeld & Ré, PODS 2010). A query is
//! a [`Transducer`] `A^ω` — an NFA whose transitions each emit a fixed
//! output string ("deterministic emission", §3.1.1). Evaluating `A^ω` over
//! a Markov sequence `μ` follows the probabilistic-database semantics:
//! every output string `o` with `Pr(S →[A^ω]→ o) > 0` is an *answer*, and
//! that probability is its *confidence*.
//!
//! The modules map onto the paper's results:
//!
//! | Module | Paper result |
//! |---|---|
//! | [`transducer`] | §3.1.1 — transducers, Mealy machines, projectors |
//! | [`constraints`] | §4 — prefix constraints as output-DFA products |
//! | [`mod@confidence`] | Thm 4.6 (deterministic, plus k-uniform fast path), Thm 4.8 (uniform NFA subset DP), the general exact algorithm (exponential, as Prop. 4.7 / Thm 4.9 force), and `Pr(S ∈ L(A))` |
//! | [`emax`] | §4.2 — best evidence `E_max`, constrained Viterbi |
//! | [`enumerate`] | Thm 4.1 (unranked, poly delay + poly space) and Thm 4.3 (decreasing `E_max`, poly delay) |
//! | [`montecarlo`] | additive-error confidence estimation by sampling |
//! | [`plan`] | Table 2 as an explicit planner — compile a [`plan::PreparedQuery`] once, bind it per sequence, execute every pass over cached machine-side artifacts |
//! | [`incremental`] | §6 streaming as first-class state — checkpointable [`incremental::EventSession`]/[`incremental::ConfidenceSession`] machines and the [`incremental::SlidingWindowQuery`] (operator-composition window eviction, no rewind) |
//! | [`kernelize`] | bridges to the shared `transmark-kernel` DP substrate (semirings, CSR step graphs, workspaces) |
//! | [`brute`] | brute-force oracles used by tests and the experiment harness |

pub mod brute;
pub mod certified;
pub mod compose;
pub mod confidence;
pub mod constraints;
pub mod emax;
pub mod enumerate;
pub mod error;
pub mod evaluate;
pub mod evidence;
pub mod generate;
pub mod incremental;
pub mod kernelize;
pub mod montecarlo;
pub mod plan;
pub mod scan;
pub mod streaming;
pub mod textio;
pub mod transducer;

pub use certified::{
    certified_top_by_confidence, certified_top_k_by_confidence, CertifiedTop, CertifiedTopK,
};
pub use compose::compose;
pub use confidence::{
    acceptance_probability, acceptance_probability_source, confidence, confidence_deterministic,
    confidence_general, confidence_source, confidence_uniform_nfa, is_answer,
    prefix_acceptance_probabilities, prefix_acceptance_probabilities_source,
};
pub use emax::{emax_of_output, emax_of_output_source, top_by_emax, EmaxResult};
pub use enumerate::{
    enumerate_by_emax, enumerate_unranked, top_k_by_emax, RankedAnswer, UnrankedAnswers,
};
pub use error::EngineError;
pub use evaluate::{ConfidenceCost, Evaluation, ScoredAnswer};
pub use evidence::{enumerate_evidences, top_k_evidences, Evidence, Evidences};
pub use incremental::{
    CheckpointKind, ConfidenceSession, EventSession, SlidingWindowQuery, StreamCheckpoint,
    WindowSession,
};
pub use plan::{
    choose_strategy, prepare, BoundQuery, BoundedCache, PlanExplain, PlanKind, PreparedEventQuery,
    PreparedQuery, SourceBoundQuery, Strategy,
};
pub use scan::prefix_acceptance_probabilities_scan;
pub use streaming::EventMonitor;
pub use transducer::{Transducer, TransducerBuilder};

pub use transmark_automata::{Alphabet, BitSet, Dfa, Nfa, StateId, SymbolId};
pub use transmark_markov::{MarkovSequence, MarkovSequenceBuilder};
