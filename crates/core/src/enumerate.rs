//! Answer enumeration: unranked (Theorem 4.1) and ranked by `E_max`
//! (Theorem 4.3).
//!
//! **Unranked (Theorem 4.1).** [`enumerate_unranked`] walks the trie of
//! output prefixes depth-first, descending into `p·d` only when the
//! prefix-constrained query still has an answer and emitting `p` whenever
//! `p` itself is an answer. Both facts come from *one* boolean
//! reachability DP per visited trie node — a kernel pass over the
//! [`crate::kernelize::prefix_step_graph`], whose saturating
//! matched-length row distinguishes "emitted exactly `p`" from "emitted a
//! proper extension" — replacing the constrained-product construction and
//! the two dense DPs per node this used to cost. Every visited trie node
//! has an answer below it, answers are at depth ≤ `n · max_emission`, and
//! each step costs one polynomial nonemptiness test — polynomial delay;
//! the DFS stack is the only state — polynomial space. Answers appear in
//! lexicographic order.
//!
//! **Ranked by `E_max` (Theorem 4.3).** [`enumerate_by_emax`] instantiates
//! the Lawler–Murty framework of `transmark-kbest` with
//! [`PrefixConstraint`] subspaces: the constrained optimizer is the
//! Viterbi of [`crate::emax::top_by_emax`] run on the constraint-product
//! machine, and splitting partitions the subspace by longest common
//! prefix with the emitted answer. Polynomial delay; space grows with the
//! number of answers emitted, exactly as the paper notes.

use std::sync::Arc;

use transmark_automata::{StateId, SymbolId};
use transmark_kbest::{LawlerMurty, PartitionSpace};
use transmark_kernel::{advance, count_layers, Bool, SharedSparseSteps, Workspace};
use transmark_markov::MarkovSequence;

use crate::constraints::PrefixConstraint;
use crate::emax::top_by_emax_impl;
use crate::error::EngineError;
use crate::plan::PreparedQuery;
use crate::transducer::Transducer;

// ---------------------------------------------------------------------------
// Theorem 4.1 — unranked, polynomial delay, polynomial space
// ---------------------------------------------------------------------------

/// Lazily enumerates `A^ω(μ)` in lexicographic order with polynomial delay
/// and polynomial space (Theorem 4.1).
pub struct UnrankedAnswers<'a> {
    t: &'a Transducer,
    /// The Markov side of every per-trie-node DP, flattened once (or
    /// shared with the bind that spawned this enumeration).
    steps: SharedSparseSteps,
    /// The plan serving per-trie-node prefix step graphs from its
    /// bounded memo cache.
    graphs: Arc<PreparedQuery>,
    /// Layer buffers reused across every visited trie node.
    ws: Workspace<bool>,
    n: usize,
    /// DFS stack: the current prefix is implicit in `frames`; each frame
    /// remembers which continuation symbol to try next.
    frames: Vec<Frame>,
    prefix: Vec<SymbolId>,
    /// Upper bound on answer length, after which no descent can succeed.
    max_len: usize,
    done: bool,
}

struct Frame {
    /// Next output symbol (as a raw index) to try extending with.
    next_symbol: usize,
    /// Whether the current prefix still needs to be tested/emitted.
    emit_pending: bool,
    /// Whether the prefix at this frame is itself an answer — computed by
    /// the same DP that justified descending into it.
    exact: bool,
}

/// Starts the Theorem 4.1 enumeration. Fails fast on alphabet mismatch.
///
/// Legacy convenience: compiles a one-shot [`PreparedQuery`] internally,
/// so the enumeration is the same code path as
/// [`BoundQuery::unranked`](crate::plan::BoundQuery::unranked) — prefer
/// the prepared flow when enumerating over several sequences.
pub fn enumerate_unranked<'a>(
    t: &'a Transducer,
    m: &'a MarkovSequence,
) -> Result<UnrankedAnswers<'a>, EngineError> {
    crate::confidence::check_inputs(t, m, None)?;
    Ok(enumerate_unranked_with(
        t,
        m,
        m.sparse_steps().into_shared(),
        crate::plan::prepare(t),
    ))
}

/// The enumeration over caller-supplied artifacts (the prepared path
/// passes its shared CSR and its graph cache). Inputs must already be
/// validated.
pub(crate) fn enumerate_unranked_with<'a>(
    t: &'a Transducer,
    m: &MarkovSequence,
    steps: SharedSparseSteps,
    graphs: Arc<PreparedQuery>,
) -> UnrankedAnswers<'a> {
    let mut it = UnrankedAnswers {
        t,
        steps,
        graphs,
        ws: Workspace::new(),
        n: m.len(),
        frames: Vec::new(),
        prefix: Vec::new(),
        max_len: m.len() * t.max_emission_len(),
        done: true,
    };
    let (nonempty, exact) = it.query_prefix();
    if nonempty {
        it.frames.push(Frame {
            next_symbol: 0,
            emit_pending: true,
            exact,
        });
        it.done = false;
    }
    it
}

impl UnrankedAnswers<'_> {
    /// Current DFS stack depth (the enumeration's entire state — the
    /// polynomial-space half of Theorem 4.1, measured by the experiment
    /// harness).
    pub fn stack_depth(&self) -> usize {
        self.frames.len()
    }

    /// One boolean kernel DP over the current prefix's step graph:
    /// returns `(some answer extends the prefix, the prefix itself is an
    /// answer)`. Rows `(q, matched)` saturate at `matched = len + 1`, so
    /// the final layer separates exact emission (`matched == len`) from
    /// proper extension (`matched == len + 1`).
    fn query_prefix(&mut self) -> (bool, bool) {
        let t = self.t;
        let nq = t.n_states();
        let l = self.prefix.len();
        let width = l + 2;
        let graph = self.graphs.prefix_graph(&self.prefix);
        let nr = graph.n_rows();
        let n_nodes = self.steps.n_nodes();
        self.ws.reset(n_nodes * nr, false);
        let init_row = (t.initial().index() * width) as u32;
        for &(node, _) in self.steps.initial() {
            for e in graph.edges(node, init_row) {
                self.ws.cur_mut()[node as usize * nr + e.to as usize] = true;
            }
        }
        for i in 0..self.n - 1 {
            self.ws.clear_next(false);
            let (cur, next) = self.ws.buffers();
            advance::<Bool, _>(&self.steps.at(i), &graph, cur, next);
            self.ws.swap();
        }
        count_layers((self.n - 1) as u64);
        let cur = self.ws.cur();
        let (mut any, mut exact) = (false, false);
        for node in 0..n_nodes {
            for q in 0..nq {
                if !t.is_accepting(StateId(q as u32)) {
                    continue;
                }
                let base = node * nr + q * width;
                exact |= cur[base + l];
                any |= cur[base + l] | cur[base + l + 1];
            }
        }
        (any, exact)
    }
}

impl Iterator for UnrankedAnswers<'_> {
    type Item = Vec<SymbolId>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let Some(top) = self.frames.len().checked_sub(1) else {
                self.done = true;
                return None;
            };
            if self.frames[top].emit_pending {
                self.frames[top].emit_pending = false;
                if self.frames[top].exact {
                    return Some(self.prefix.clone());
                }
                continue;
            }
            // Try the next continuation symbol.
            let d = self.frames[top].next_symbol;
            if d >= self.t.n_output_symbols() || self.prefix.len() >= self.max_len {
                // Exhausted this node.
                self.frames.pop();
                self.prefix.pop();
                continue;
            }
            self.frames[top].next_symbol += 1;
            self.prefix.push(SymbolId(d as u32));
            let (any, exact) = self.query_prefix();
            if any {
                self.frames.push(Frame {
                    next_symbol: 0,
                    emit_pending: true,
                    exact,
                });
            } else {
                self.prefix.pop();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Theorem 4.3 — ranked by E_max, polynomial delay
// ---------------------------------------------------------------------------

/// An answer produced by the ranked enumerations, with its score.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedAnswer {
    /// The output string.
    pub output: Vec<SymbolId>,
    /// `ln` of the score under which the enumeration is ordered
    /// (`E_max` here; confidence or `I_max` in the s-projector engines).
    pub log_score: f64,
}

impl RankedAnswer {
    /// The score in linear space.
    pub fn score(&self) -> f64 {
        self.log_score.exp()
    }
}

/// The [`PartitionSpace`] behind Theorem 4.3: the Lawler–Murty framework
/// with the constraint-product machines served from the plan's memo cache
/// (shared across subspace probes *and* across binds) and the Viterbi
/// probes running over a shared CSR instead of re-flattening the sequence
/// per subspace.
struct PlanEmaxSpace {
    plan: Arc<PreparedQuery>,
    steps: SharedSparseSteps,
}

impl PartitionSpace for PlanEmaxSpace {
    type Answer = Vec<SymbolId>;
    type Constraint = PrefixConstraint;

    fn root(&self) -> PrefixConstraint {
        PrefixConstraint::all()
    }

    fn best(&mut self, constraint: &PrefixConstraint) -> Option<(Vec<SymbolId>, f64)> {
        let cm = self.plan.constrained(constraint);
        top_by_emax_impl(
            &cm.t,
            transmark_kernel::ExecSteps::Sparse(&self.steps),
            &cm.graph,
        )
        .map(|r| (r.output, r.log_prob))
    }

    fn split(
        &mut self,
        constraint: &PrefixConstraint,
        answer: &Vec<SymbolId>,
    ) -> Vec<PrefixConstraint> {
        constraint.split_around(answer)
    }
}

/// The Theorem 4.3 enumeration, as a concrete iterator exposing its
/// frontier size (the space that, as the paper notes, "can grow
/// proportionally to the number of printed answers" — measured by the
/// experiment harness). The lifetime ties a legacy
/// [`enumerate_by_emax`] call to its borrowed inputs; the prepared path
/// owns its artifacts and is `'static`.
pub struct EmaxEnumeration<'a> {
    inner: LawlerMurty<PlanEmaxSpace>,
    _borrow: std::marker::PhantomData<&'a MarkovSequence>,
}

impl EmaxEnumeration<'_> {
    /// Number of pending subspaces in the Lawler–Murty frontier.
    pub fn frontier_len(&self) -> usize {
        self.inner.frontier_len()
    }
}

impl Iterator for EmaxEnumeration<'_> {
    type Item = RankedAnswer;

    fn next(&mut self) -> Option<RankedAnswer> {
        self.inner
            .next()
            .map(|(output, log_score)| RankedAnswer { output, log_score })
    }
}

/// Enumerates `A^ω(μ)` in decreasing `E_max` with polynomial delay
/// (Theorem 4.3). Yields [`RankedAnswer`]s whose `log_score` is
/// `ln E_max(output)`.
///
/// Legacy convenience: compiles a one-shot [`PreparedQuery`] internally,
/// so it is the same code path as
/// [`BoundQuery::ranked`](crate::plan::BoundQuery::ranked) — prefer the
/// prepared flow when enumerating over several sequences.
pub fn enumerate_by_emax<'a>(
    t: &'a Transducer,
    m: &'a MarkovSequence,
) -> Result<EmaxEnumeration<'a>, EngineError> {
    // Validate alphabets once up front.
    crate::confidence::check_inputs(t, m, None)?;
    Ok(enumerate_by_emax_planned(
        crate::plan::prepare(t),
        m.sparse_steps().into_shared(),
    ))
}

/// The Theorem 4.3 enumeration over a prepared plan and a shared CSR.
/// Inputs must already be validated (the bind did).
pub(crate) fn enumerate_by_emax_planned(
    plan: Arc<PreparedQuery>,
    steps: SharedSparseSteps,
) -> EmaxEnumeration<'static> {
    EmaxEnumeration {
        inner: LawlerMurty::new(PlanEmaxSpace { plan, steps }),
        _borrow: std::marker::PhantomData,
    }
}

/// The top-k answers by `E_max` (stop the Theorem 4.3 enumeration after
/// `k` outputs — the §2.3.1 top-k reduction).
pub fn top_k_by_emax(
    t: &Transducer,
    m: &MarkovSequence,
    k: usize,
) -> Result<Vec<RankedAnswer>, EngineError> {
    Ok(enumerate_by_emax(t, m)?.take(k).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmark_automata::Alphabet;
    use transmark_markov::MarkovSequenceBuilder;

    fn sym(i: u32) -> SymbolId {
        SymbolId(i)
    }

    /// Identity transducer over {a,b} and a chain whose support is
    /// {aa, ab, ba} with probabilities 0.42, 0.18, 0.40.
    fn setup() -> (Transducer, MarkovSequence) {
        let alphabet = Alphabet::of_chars("ab");
        let (a, b) = (alphabet.sym("a"), alphabet.sym("b"));
        let m = MarkovSequenceBuilder::new(alphabet.clone(), 2)
            .initial(a, 0.6)
            .initial(b, 0.4)
            .transition(0, a, a, 0.7)
            .transition(0, a, b, 0.3)
            .transition(0, b, a, 1.0)
            .build()
            .unwrap();
        let mut tb = Transducer::builder(alphabet.clone(), alphabet);
        let q = tb.add_state(true);
        for s in 0..2u32 {
            tb.add_transition(q, sym(s), q, &[sym(s)]).unwrap();
        }
        (tb.build().unwrap(), m)
    }

    #[test]
    fn unranked_is_lexicographic_and_complete() {
        let (t, m) = setup();
        let got: Vec<_> = enumerate_unranked(&t, &m).unwrap().collect();
        assert_eq!(
            got,
            vec![
                vec![sym(0), sym(0)],
                vec![sym(0), sym(1)],
                vec![sym(1), sym(0)],
            ]
        );
    }

    #[test]
    fn emax_ranked_matches_hand_computation() {
        let (t, m) = setup();
        let got: Vec<_> = enumerate_by_emax(&t, &m).unwrap().collect();
        // Identity: E_max(o) = p(o). Order: aa (0.42), ba (0.40), ab (0.18).
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].output, vec![sym(0), sym(0)]);
        assert!((got[0].score() - 0.42).abs() < 1e-12);
        assert_eq!(got[1].output, vec![sym(1), sym(0)]);
        assert!((got[1].score() - 0.40).abs() < 1e-12);
        assert_eq!(got[2].output, vec![sym(0), sym(1)]);
        assert!((got[2].score() - 0.18).abs() < 1e-12);
    }

    #[test]
    fn top_k_stops_early() {
        let (t, m) = setup();
        let got = top_k_by_emax(&t, &m, 2).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].output, vec![sym(0), sym(0)]);
        // Asking for more than exist returns everything.
        assert_eq!(top_k_by_emax(&t, &m, 99).unwrap().len(), 3);
    }

    #[test]
    fn empty_query_enumerates_nothing() {
        let alphabet = Alphabet::of_chars("a");
        let m = MarkovSequenceBuilder::new(alphabet.clone(), 2)
            .uniform_all()
            .build()
            .unwrap();
        // Selective machine rejecting everything reachable.
        let mut tb = Transducer::builder(alphabet.clone(), alphabet);
        let q = tb.add_state(false);
        tb.add_transition(q, sym(0), q, &[]).unwrap();
        let t = tb.build().unwrap();
        assert_eq!(enumerate_unranked(&t, &m).unwrap().count(), 0);
        assert_eq!(enumerate_by_emax(&t, &m).unwrap().count(), 0);
    }

    #[test]
    fn epsilon_answer_is_enumerated_first_lexicographically() {
        // Transducer that drops everything: the only answer is ε.
        let alphabet = Alphabet::of_chars("ab");
        let m = MarkovSequenceBuilder::new(alphabet.clone(), 2)
            .uniform_all()
            .build()
            .unwrap();
        let mut tb = Transducer::builder(alphabet.clone(), alphabet);
        let q = tb.add_state(true);
        for s in 0..2u32 {
            tb.add_transition(q, sym(s), q, &[]).unwrap();
        }
        let t = tb.build().unwrap();
        let got: Vec<_> = enumerate_unranked(&t, &m).unwrap().collect();
        assert_eq!(got, vec![Vec::<SymbolId>::new()]);
        let ranked: Vec<_> = enumerate_by_emax(&t, &m).unwrap().collect();
        assert_eq!(ranked.len(), 1);
        assert!(ranked[0].output.is_empty());
        // E_max(ε) = most likely world = 0.25.
        assert!((ranked[0].score() - 0.25).abs() < 1e-12);
    }
}
