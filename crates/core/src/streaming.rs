//! Streaming Boolean-query monitoring.
//!
//! §6 contrasts Lahar with CLARO, whose concern is "high-volume data
//! streams" where storing the whole Markov sequence may be infeasible.
//! The per-prefix acceptance DP of
//! [`crate::confidence::prefix_acceptance_probabilities`] needs only the
//! *current* layer, so it runs online: an [`EventMonitor`] holds the
//! distribution over (determinized query state × current node) — a kernel
//! [`SubsetLayer`] — and folds in one transition matrix at a time,
//! emitting the updated probability that the stream-so-far satisfies the
//! query. Memory is independent of the stream length (bounded by
//! reachable subsets × `|Σ|`).

use std::collections::HashMap;

use transmark_automata::{Nfa, SymbolId};
use transmark_kernel::SubsetLayer;
use transmark_markov::MarkovSequence;

use crate::error::EngineError;

/// An online monitor for `Pr(S[1..t] ∈ L(A))` over a Markov stream whose
/// transition matrices arrive one step at a time.
///
/// The query NFA is owned (determinized on the fly); feed the stream with
/// [`EventMonitor::start`] (initial distribution) and
/// [`EventMonitor::advance`] (one row-major `|Σ|²` matrix per step).
pub struct EventMonitor {
    nfa: Nfa,
    /// Index into the lazily-grown determinization; rebuilt per monitor.
    det: OwnedDeterminizer,
    /// Mass per (determinized state, current node). Dead subsets are
    /// dropped (they can never accept again).
    layer: SubsetLayer<(usize, u32)>,
    n_symbols: usize,
    steps: usize,
}

/// A `Determinizer` that owns its NFA (the library version borrows).
struct OwnedDeterminizer {
    /// Interned subsets → id, via the borrowed determinizer recreated on
    /// demand would lose the cache; instead store transitions explicitly.
    subset_accepting: Vec<bool>,
    subset_dead: Vec<bool>,
    trans: HashMap<(usize, u32), usize>,
    subsets: Vec<transmark_automata::BitSet>,
    ids: HashMap<transmark_automata::BitSet, usize>,
}

impl OwnedDeterminizer {
    fn new(nfa: &Nfa) -> Self {
        let init =
            transmark_automata::BitSet::singleton(nfa.n_states().max(1), nfa.initial().index());
        let mut ids = HashMap::new();
        ids.insert(init.clone(), 0);
        let accepting = nfa.accepting_set();
        Self {
            subset_accepting: vec![init.intersects(&accepting)],
            subset_dead: vec![init.is_empty()],
            trans: HashMap::new(),
            subsets: vec![init],
            ids,
        }
    }

    fn step(&mut self, nfa: &Nfa, id: usize, sym: SymbolId) -> usize {
        if let Some(&to) = self.trans.get(&(id, sym.0)) {
            return to;
        }
        let next = nfa.step_set(&self.subsets[id], sym);
        let to = match self.ids.get(&next) {
            Some(&i) => i,
            None => {
                let i = self.subsets.len();
                let accepting = nfa.accepting_set();
                self.subset_accepting.push(next.intersects(&accepting));
                self.subset_dead.push(next.is_empty());
                self.ids.insert(next.clone(), i);
                self.subsets.push(next);
                i
            }
        };
        self.trans.insert((id, sym.0), to);
        to
    }
}

impl EventMonitor {
    /// Starts monitoring: `initial` is the stream's `μ₀→` distribution
    /// over `|Σ|` nodes (must match the query's alphabet size).
    pub fn start(nfa: Nfa, initial: &[f64]) -> Result<Self, EngineError> {
        if nfa.n_symbols() != initial.len() {
            return Err(EngineError::AlphabetMismatch {
                transducer: nfa.n_symbols(),
                sequence: initial.len(),
            });
        }
        let mut det = OwnedDeterminizer::new(&nfa);
        let mut layer = SubsetLayer::new();
        for (node, &p) in initial.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let d = det.step(&nfa, 0, SymbolId(node as u32));
            if !det.subset_dead[d] {
                layer.add((d, node as u32), p);
            }
        }
        Ok(Self {
            n_symbols: initial.len(),
            nfa,
            det,
            layer,
            steps: 1,
        })
    }

    /// Number of stream positions consumed so far (`≥ 1`).
    pub fn len(&self) -> usize {
        self.steps
    }

    /// Always false (a monitor starts with one position consumed).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The current `Pr(S[1..t] ∈ L(A))`.
    pub fn probability(&self) -> f64 {
        // The layer reduces in ascending key order, so the result is
        // bit-for-bit independent of HashMap iteration order.
        self.layer.reduce(|&(d, _)| self.det.subset_accepting[d])
    }

    /// Folds in the next transition matrix (row-major `|Σ|²`) and returns
    /// the updated probability.
    pub fn advance(&mut self, matrix: &[f64]) -> Result<f64, EngineError> {
        let k = self.n_symbols;
        if matrix.len() != k * k {
            return Err(EngineError::AlphabetMismatch {
                transducer: k * k,
                sequence: matrix.len(),
            });
        }
        let mut next: SubsetLayer<(usize, u32)> = SubsetLayer::with_capacity(self.layer.len());
        for ((d, node), p) in self.layer.sorted() {
            let row = &matrix[node as usize * k..(node as usize + 1) * k];
            for (to, &pt) in row.iter().enumerate() {
                if pt == 0.0 {
                    continue;
                }
                let d2 = self.det.step(&self.nfa, d, SymbolId(to as u32));
                if !self.det.subset_dead[d2] {
                    next.add((d2, to as u32), p * pt);
                }
            }
        }
        self.layer = next;
        self.steps += 1;
        Ok(self.probability())
    }

    /// Convenience: replays a stored sequence through the monitor,
    /// returning the full probability series (equals
    /// [`crate::confidence::prefix_acceptance_probabilities`]).
    pub fn replay(nfa: Nfa, m: &MarkovSequence) -> Result<Vec<f64>, EngineError> {
        let mut monitor = EventMonitor::start(nfa, m.initial_dist())?;
        let mut out = Vec::with_capacity(m.len());
        out.push(monitor.probability());
        let k = m.n_symbols();
        let mut matrix = vec![0.0; k * k];
        for i in 0..m.len() - 1 {
            for from in 0..k {
                matrix[from * k..(from + 1) * k]
                    .copy_from_slice(m.transition_row(i, SymbolId(from as u32)));
            }
            out.push(monitor.advance(&matrix)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::prefix_acceptance_probabilities;
    use rand::{rngs::StdRng, SeedableRng};
    use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};
    use transmark_markov::numeric::approx_eq;

    /// NFA over 3 symbols: has seen symbol 2.
    fn has_two() -> Nfa {
        let mut nfa = Nfa::new(3);
        let q0 = nfa.add_state(false);
        let acc = nfa.add_state(true);
        for s in 0..3u32 {
            nfa.add_transition(q0, SymbolId(s), if s == 2 { acc } else { q0 });
            nfa.add_transition(acc, SymbolId(s), acc);
        }
        nfa
    }

    #[test]
    fn replay_matches_batch_series() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..10 {
            let m = random_markov_sequence(
                &RandomChainSpec {
                    len: 6,
                    n_symbols: 3,
                    zero_prob: 0.3,
                },
                &mut rng,
            );
            let batch = prefix_acceptance_probabilities(&has_two(), &m).unwrap();
            let streamed = EventMonitor::replay(has_two(), &m).unwrap();
            assert_eq!(batch.len(), streamed.len());
            for (b, s) in batch.iter().zip(streamed.iter()) {
                assert!(approx_eq(*b, *s, 1e-12, 1e-10), "{b} vs {s}");
            }
        }
    }

    #[test]
    fn incremental_use_without_storing_the_stream() {
        // Feed matrices one at a time; state size stays bounded.
        let k = 3;
        let uniform = vec![1.0 / k as f64; k * k];
        let mut monitor = EventMonitor::start(has_two(), &[1.0, 0.0, 0.0]).unwrap();
        assert_eq!(monitor.probability(), 0.0); // first node is 0, not 2
        let mut last = 0.0;
        for t in 0..1000 {
            let p = monitor.advance(&uniform).unwrap();
            assert!(p >= last - 1e-12, "monotone for a monotone property");
            last = p;
            let _ = t;
        }
        assert_eq!(monitor.len(), 1001);
        // After 1000 uniform steps the pattern has almost surely appeared.
        assert!(last > 0.999999);
    }

    #[test]
    fn start_and_advance_validate_shapes() {
        assert!(EventMonitor::start(has_two(), &[1.0]).is_err());
        let mut m = EventMonitor::start(has_two(), &[1.0, 0.0, 0.0]).unwrap();
        assert!(m.advance(&[1.0, 0.0]).is_err());
    }
}
