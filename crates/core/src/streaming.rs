//! Streaming Boolean-query monitoring.
//!
//! §6 contrasts Lahar with CLARO, whose concern is "high-volume data
//! streams" where storing the whole Markov sequence may be infeasible.
//! The per-prefix acceptance DP of
//! [`crate::confidence::prefix_acceptance_probabilities`] needs only the
//! *current* layer, so it runs online: an [`EventMonitor`] holds the
//! shared acceptance fold — a distribution over (determinized query state
//! × current node) — and folds in one transition matrix at a time,
//! emitting the updated probability that the stream-so-far satisfies the
//! query. Memory is independent of the stream length (bounded by
//! reachable subsets × `|Σ|`).
//!
//! The monitor is a thin adapter over the incremental state machine: the
//! session state (and the per-step arithmetic) lives in
//! [`crate::incremental::EventSession`] — which itself runs
//! `confidence::AcceptanceFold`, the same engine the batch and
//! [`StepSource`]-driven acceptance passes run on — and the subset
//! construction is the shared `transmark-automata` [`DetCore`]. Subset
//! ids are interned in discovery order exactly as the batch passes intern
//! them, so a monitor fed a stored sequence's matrices reproduces
//! `prefix_acceptance_probabilities` bit for bit, and a monitor
//! suspended with [`EventMonitor::checkpoint`] resumes bit-identically.
//!
//! [`DetCore`]: transmark_automata::ops::DetCore

use transmark_automata::Nfa;
use transmark_markov::{MarkovSequence, StepSource};

use crate::error::EngineError;
use crate::incremental::EventSession;

/// An online monitor for `Pr(S[1..t] ∈ L(A))` over a Markov stream whose
/// transition matrices arrive one step at a time.
///
/// The query NFA is owned (determinized on the fly); feed the stream with
/// [`EventMonitor::start`] (initial distribution) and
/// [`EventMonitor::advance`] (one row-major `|Σ|²` matrix per step).
pub struct EventMonitor {
    sess: EventSession,
}

impl EventMonitor {
    /// Starts monitoring: `initial` is the stream's `μ₀→` distribution
    /// over `|Σ|` nodes (must match the query's alphabet size).
    pub fn start(nfa: Nfa, initial: &[f64]) -> Result<Self, EngineError> {
        Ok(Self {
            sess: EventSession::start(nfa, initial)?,
        })
    }

    /// Number of stream positions consumed so far (`≥ 1`).
    pub fn len(&self) -> usize {
        self.sess.positions()
    }

    /// Always false (a monitor starts with one position consumed).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The current `Pr(S[1..t] ∈ L(A))`.
    pub fn probability(&self) -> f64 {
        self.sess.probability()
    }

    /// Folds in the next transition matrix (row-major `|Σ|²`) and returns
    /// the updated probability.
    pub fn advance(&mut self, matrix: &[f64]) -> Result<f64, EngineError> {
        self.sess.advance(matrix)
    }

    /// Suspends the monitor to a versioned checkpoint blob (see
    /// [`EventSession::checkpoint`]).
    pub fn checkpoint(&self) -> Vec<u8> {
        self.sess.checkpoint()
    }

    /// Restores a monitor suspended by [`EventMonitor::checkpoint`];
    /// continues bit-identically to the uninterrupted run.
    pub fn resume(nfa: Nfa, blob: &[u8]) -> Result<Self, EngineError> {
        Ok(Self {
            sess: EventSession::resume(nfa, blob)?,
        })
    }

    /// Drains a [`StepSource`] through the monitor, returning the full
    /// probability series (one entry per position, equal to
    /// [`crate::confidence::prefix_acceptance_probabilities`] over the
    /// materialized sequence). Named `*_source` like every other streamed
    /// variant of a batch pass.
    pub fn series_source<S: StepSource>(nfa: Nfa, src: &mut S) -> Result<Vec<f64>, EngineError> {
        crate::confidence::check_source_fresh(src)?;
        let mut monitor = EventMonitor::start(nfa, src.initial())?;
        let mut out = Vec::with_capacity(src.len());
        out.push(monitor.probability());
        while let Some(matrix) = src.next_step()? {
            out.push(monitor.advance(matrix)?);
        }
        Ok(out)
    }

    /// Convenience: replays a stored sequence through the monitor,
    /// returning the full probability series (equals
    /// [`crate::confidence::prefix_acceptance_probabilities`]).
    pub fn replay(nfa: Nfa, m: &MarkovSequence) -> Result<Vec<f64>, EngineError> {
        let mut monitor = EventMonitor::start(nfa, m.initial_dist())?;
        let mut out = Vec::with_capacity(m.len());
        out.push(monitor.probability());
        for i in 0..m.len() - 1 {
            out.push(monitor.advance(m.transition_matrix(i))?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::prefix_acceptance_probabilities;
    use rand::{rngs::StdRng, SeedableRng};
    use transmark_automata::SymbolId;
    use transmark_markov::generate::{random_markov_sequence, RandomChainSpec};

    /// NFA over 3 symbols: has seen symbol 2.
    fn has_two() -> Nfa {
        let mut nfa = Nfa::new(3);
        let q0 = nfa.add_state(false);
        let acc = nfa.add_state(true);
        for s in 0..3u32 {
            nfa.add_transition(q0, SymbolId(s), if s == 2 { acc } else { q0 });
            nfa.add_transition(acc, SymbolId(s), acc);
        }
        nfa
    }

    #[test]
    fn replay_matches_batch_series() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..10 {
            let m = random_markov_sequence(
                &RandomChainSpec {
                    len: 6,
                    n_symbols: 3,
                    zero_prob: 0.3,
                },
                &mut rng,
            );
            let batch = prefix_acceptance_probabilities(&has_two(), &m).unwrap();
            let streamed = EventMonitor::replay(has_two(), &m).unwrap();
            assert_eq!(batch.len(), streamed.len());
            for (b, s) in batch.iter().zip(streamed.iter()) {
                // The monitor shares the batch pass's fold, so the series
                // agree bit for bit, not just approximately.
                assert_eq!(b.to_bits(), s.to_bits(), "{b} vs {s}");
            }
        }
    }

    #[test]
    fn series_source_matches_batch_series() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..5 {
            let m = random_markov_sequence(
                &RandomChainSpec {
                    len: 7,
                    n_symbols: 3,
                    zero_prob: 0.3,
                },
                &mut rng,
            );
            let batch = prefix_acceptance_probabilities(&has_two(), &m).unwrap();
            let streamed = EventMonitor::series_source(has_two(), &mut m.step_source()).unwrap();
            assert_eq!(batch.len(), streamed.len());
            for (b, s) in batch.iter().zip(streamed.iter()) {
                assert_eq!(b.to_bits(), s.to_bits(), "{b} vs {s}");
            }
        }
    }

    #[test]
    fn incremental_use_without_storing_the_stream() {
        // Feed matrices one at a time; state size stays bounded.
        let k = 3;
        let uniform = vec![1.0 / k as f64; k * k];
        let mut monitor = EventMonitor::start(has_two(), &[1.0, 0.0, 0.0]).unwrap();
        assert_eq!(monitor.probability(), 0.0); // first node is 0, not 2
        let mut last = 0.0;
        for t in 0..1000 {
            let p = monitor.advance(&uniform).unwrap();
            assert!(p >= last - 1e-12, "monotone for a monotone property");
            last = p;
            let _ = t;
        }
        assert_eq!(monitor.len(), 1001);
        // After 1000 uniform steps the pattern has almost surely appeared.
        assert!(last > 0.999999);
    }

    #[test]
    fn start_and_advance_validate_shapes() {
        assert!(EventMonitor::start(has_two(), &[1.0]).is_err());
        let mut m = EventMonitor::start(has_two(), &[1.0, 0.0, 0.0]).unwrap();
        assert!(m.advance(&[1.0, 0.0]).is_err());
    }

    /// Uniform chains make every reachable subset appear; the approx check
    /// in the old suite is strengthened to bitwise here because the
    /// monitor and the batch pass now share one fold implementation.
    #[test]
    fn monitor_probability_is_bit_reproducible() {
        let mut rng = StdRng::seed_from_u64(77);
        let m = random_markov_sequence(
            &RandomChainSpec {
                len: 9,
                n_symbols: 3,
                zero_prob: 0.4,
            },
            &mut rng,
        );
        let a = EventMonitor::replay(has_two(), &m).unwrap();
        let b = EventMonitor::replay(has_two(), &m).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
