//! Prefix constraints over output strings, and their enforcement.
//!
//! Both enumeration results of §4 (Theorems 4.1 and 4.3) rest on one
//! technical device the paper calls *prefix constraints*: restricting the
//! answer space to output strings of the form
//!
//! ```text
//! { p }                      (if `allow_exact`)
//!   ∪ { p·d·w : d ∉ forbidden, w ∈ Δ* }
//! ```
//!
//! i.e. "everything extending the prefix `p`, except continuations that
//! start with a forbidden symbol — optionally including `p` itself".
//! This single family expresses the whole Lawler–Murty partition of
//! Theorem 4.3 as well as the trie descent of Theorem 4.1:
//!
//! * "answers with prefix `p`" = `(p, ∅, true)`;
//! * "exactly `p`" = `(p, Δ, true)`;
//! * "proper extensions of `p`" = `(p, ∅, false)`.
//!
//! A constraint is *enforced* by a product construction
//! ([`constrain`]): the transducer is crossed with the constraint's DFA
//! over the output alphabet, where the DFA consumes each transition's
//! emission string. The constrained machine accepts exactly the
//! (string, run) pairs whose output satisfies the constraint, so
//! answer-nonemptiness and `E_max` optimization apply unchanged.

use std::sync::Arc;

use transmark_automata::{Dfa, StateId, SymbolId};

use crate::error::EngineError;
use crate::transducer::{TEdge, Transducer, TransducerBuilder};

/// A prefix constraint over the output language (see module docs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PrefixConstraint {
    /// The required prefix `p`.
    pub prefix: Vec<SymbolId>,
    /// Symbols that must not immediately follow `p`.
    pub forbidden_next: Vec<SymbolId>,
    /// Whether the answer `p` itself is in the subspace.
    pub allow_exact: bool,
}

impl PrefixConstraint {
    /// The unconstrained space: every output string.
    pub fn all() -> Self {
        Self {
            prefix: Vec::new(),
            forbidden_next: Vec::new(),
            allow_exact: true,
        }
    }

    /// All outputs with prefix `p` (including `p`).
    pub fn with_prefix(p: Vec<SymbolId>) -> Self {
        Self {
            prefix: p,
            forbidden_next: Vec::new(),
            allow_exact: true,
        }
    }

    /// Exactly the output `p`.
    pub fn exactly(p: Vec<SymbolId>, n_output_symbols: usize) -> Self {
        Self {
            prefix: p,
            forbidden_next: (0..n_output_symbols as u32).map(SymbolId).collect(),
            allow_exact: true,
        }
    }

    /// Whether a concrete output satisfies the constraint.
    pub fn matches(&self, o: &[SymbolId]) -> bool {
        if o.len() < self.prefix.len() || o[..self.prefix.len()] != self.prefix[..] {
            return false;
        }
        match o.get(self.prefix.len()) {
            None => self.allow_exact,
            Some(d) => !self.forbidden_next.contains(d),
        }
    }

    /// Compiles the constraint to a complete DFA over the output alphabet
    /// (`n_output_symbols` symbols): `|p| + 3` states — the `|p|+1` match
    /// positions, an accept-all sink and a dead sink.
    pub fn to_dfa(&self, n_output_symbols: usize) -> Dfa {
        let mut d = Dfa::new(n_output_symbols);
        let positions: Vec<StateId> = (0..=self.prefix.len())
            .map(|j| d.add_state(j == self.prefix.len() && self.allow_exact))
            .collect();
        let accept = d.add_sink_state(true);
        let dead = d.add_sink_state(false);
        for (j, &q) in positions.iter().enumerate() {
            for s in 0..n_output_symbols {
                let sym = SymbolId(s as u32);
                let to = if j < self.prefix.len() {
                    if self.prefix[j] == sym {
                        positions[j + 1]
                    } else {
                        dead
                    }
                } else if self.forbidden_next.contains(&sym) {
                    dead
                } else {
                    accept
                };
                d.set_transition(q, sym, to);
            }
        }
        d
    }

    /// The Lawler–Murty partition of `self ∖ {answer}` (the answer must
    /// satisfy `self`). The returned constraints are pairwise disjoint and
    /// together cover every satisfying output except `answer`.
    pub fn split_around(&self, answer: &[SymbolId]) -> Vec<PrefixConstraint> {
        debug_assert!(self.matches(answer), "answer must satisfy the constraint");
        let p_len = self.prefix.len();
        if answer.len() == p_len {
            // `answer == p`: drop the exact answer, keep all extensions.
            return vec![PrefixConstraint {
                prefix: self.prefix.clone(),
                forbidden_next: self.forbidden_next.clone(),
                allow_exact: false,
            }];
        }
        let mut out = Vec::with_capacity(answer.len() - p_len + 2);
        // Outputs that deviate from `answer` immediately after `p`: the
        // original constraint with the answer's continuation also
        // forbidden.
        let mut forbidden = self.forbidden_next.clone();
        forbidden.push(answer[p_len]);
        out.push(PrefixConstraint {
            prefix: self.prefix.clone(),
            forbidden_next: forbidden,
            allow_exact: self.allow_exact,
        });
        // Outputs sharing a longer proper prefix with `answer`, grouped by
        // the exact length of the shared prefix.
        for j in p_len + 1..answer.len() {
            out.push(PrefixConstraint {
                prefix: answer[..j].to_vec(),
                forbidden_next: vec![answer[j]],
                allow_exact: true,
            });
        }
        // Strict extensions of `answer`.
        out.push(PrefixConstraint {
            prefix: answer.to_vec(),
            forbidden_next: Vec::new(),
            allow_exact: false,
        });
        out
    }
}

/// Enforces an output-language DFA on a transducer: the product machine
/// accepts `(s, run)` iff the original machine accepts it *and* the run's
/// output is accepted by `dfa`. Emissions are preserved, so the product is
/// again a transducer producing the same outputs.
///
/// State space is `Q_A × Q_dfa`; the construction is
/// `O(|Q_A| · |Q_dfa| · |Σ| · branching · max_emission)`.
pub fn constrain(t: &Transducer, dfa: &Dfa) -> Result<Transducer, EngineError> {
    if dfa.n_symbols() != t.n_output_symbols() {
        return Err(EngineError::AlphabetMismatch {
            transducer: t.n_output_symbols(),
            sequence: dfa.n_symbols(),
        });
    }
    let nq = t.n_states();
    let nc = dfa.n_states();
    let mut b = TransducerBuilder::new(
        Arc::clone(&t.input_alphabet_arc()),
        Arc::clone(&t.output_alphabet_arc()),
    );
    let state = |q: StateId, c: StateId| StateId((q.index() * nc + c.index()) as u32);
    for q in 0..nq {
        for c in 0..nc {
            b.add_state(t.is_accepting(StateId(q as u32)) && dfa.is_accepting(StateId(c as u32)));
        }
    }
    b.set_initial(state(t.initial(), dfa.initial()));

    // Precompute where each interned emission drives each DFA state.
    let mut em_step = vec![StateId(0); t.n_emissions() * nc];
    for em in 0..t.n_emissions() {
        let string = t
            .emission(crate::transducer::EmissionId(em as u32))
            .to_vec();
        for c in 0..nc {
            let mut cur = StateId(c as u32);
            for &d in &string {
                cur = dfa.step(cur, d);
            }
            em_step[em * nc + c] = cur;
        }
    }

    for (from, sym, TEdge { target, emission }) in t.transitions() {
        let em_string = t.emission(emission).to_vec();
        for c in 0..nc {
            let c2 = em_step[emission.index() * nc + c];
            b.add_transition(
                state(from, StateId(c as u32)),
                sym,
                state(target, c2),
                &em_string,
            )?;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmark_automata::Alphabet;

    fn sym(i: u32) -> SymbolId {
        SymbolId(i)
    }

    fn all_outputs(n_symbols: usize, max_len: usize) -> Vec<Vec<SymbolId>> {
        let mut out = vec![vec![]];
        let mut layer: Vec<Vec<SymbolId>> = vec![vec![]];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for s in &layer {
                for c in 0..n_symbols {
                    let mut t = s.clone();
                    t.push(sym(c as u32));
                    next.push(t);
                }
            }
            out.extend(next.iter().cloned());
            layer = next;
        }
        out
    }

    #[test]
    fn dfa_agrees_with_matches() {
        let cases = vec![
            PrefixConstraint::all(),
            PrefixConstraint::with_prefix(vec![sym(0), sym(1)]),
            PrefixConstraint::exactly(vec![sym(1)], 2),
            PrefixConstraint {
                prefix: vec![sym(0)],
                forbidden_next: vec![sym(0)],
                allow_exact: false,
            },
            PrefixConstraint {
                prefix: vec![],
                forbidden_next: vec![sym(1)],
                allow_exact: true,
            },
        ];
        for c in cases {
            let dfa = c.to_dfa(2);
            assert!(dfa.validate().is_ok());
            for o in all_outputs(2, 5) {
                assert_eq!(
                    dfa.accepts(&o),
                    c.matches(&o),
                    "constraint {c:?} on output {o:?}"
                );
            }
        }
    }

    #[test]
    fn split_partitions_the_space() {
        // Constraint: prefix [0], nothing forbidden, exact allowed.
        let c = PrefixConstraint::with_prefix(vec![sym(0)]);
        let answer = vec![sym(0), sym(1), sym(0)];
        let parts = c.split_around(&answer);
        for o in all_outputs(2, 5) {
            let in_parent = c.matches(&o) && o != answer;
            let count = parts.iter().filter(|p| p.matches(&o)).count();
            assert_eq!(
                count,
                usize::from(in_parent),
                "output {o:?} covered {count} times (parent={in_parent})"
            );
        }
    }

    #[test]
    fn split_around_exact_answer() {
        let c = PrefixConstraint::with_prefix(vec![sym(1)]);
        let answer = vec![sym(1)];
        let parts = c.split_around(&answer);
        assert_eq!(parts.len(), 1);
        for o in all_outputs(2, 4) {
            let in_parent = c.matches(&o) && o != answer;
            let count = parts.iter().filter(|p| p.matches(&o)).count();
            assert_eq!(count, usize::from(in_parent), "output {o:?}");
        }
    }

    #[test]
    fn split_respects_existing_forbidden_set() {
        let c = PrefixConstraint {
            prefix: vec![sym(0)],
            forbidden_next: vec![sym(0)],
            allow_exact: false,
        };
        let answer = vec![sym(0), sym(1), sym(1)];
        let parts = c.split_around(&answer);
        for o in all_outputs(2, 5) {
            let in_parent = c.matches(&o) && o != answer;
            let count = parts.iter().filter(|p| p.matches(&o)).count();
            assert_eq!(count, usize::from(in_parent), "output {o:?}");
        }
    }

    /// Transducer over Σ=Δ={a,b} copying its input (identity, accepts all).
    fn identity_transducer() -> Transducer {
        let a = Alphabet::of_chars("ab");
        let mut b = Transducer::builder(a.clone(), a);
        let q = b.add_state(true);
        for s in 0..2u32 {
            b.add_transition(q, sym(s), q, &[sym(s)]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn constrain_filters_outputs() {
        let t = identity_transducer();
        let c = PrefixConstraint::with_prefix(vec![sym(0), sym(0)]);
        let ct = constrain(&t, &c.to_dfa(2)).unwrap();
        // Input "aab" → output "aab" satisfies the prefix [a,a].
        let s = [sym(0), sym(0), sym(1)];
        assert_eq!(ct.transduce_all(&s), vec![s.to_vec()]);
        // Input "aba" → output "aba" violates it: no accepted run.
        let s2 = [sym(0), sym(1), sym(0)];
        assert!(ct.transduce_all(&s2).is_empty());
        // Too-short input "a": output "a" is a proper prefix of the
        // required prefix, rejected.
        assert!(ct.transduce_all(&[sym(0)]).is_empty());
    }

    #[test]
    fn constrain_preserves_emissions_with_multi_symbol_outputs() {
        // Machine emitting two symbols per step: Σ={a}, Δ={x,y},
        // ω = "xy" each step.
        let input = Alphabet::of_chars("a");
        let output = Alphabet::of_chars("xy");
        let mut b = Transducer::builder(input, output);
        let q = b.add_state(true);
        b.add_transition(q, sym(0), q, &[sym(0), sym(1)]).unwrap();
        let t = b.build().unwrap();

        // Constraint: outputs starting "xy x" — satisfied after 2 steps.
        let c = PrefixConstraint::with_prefix(vec![sym(0), sym(1), sym(0)]);
        let ct = constrain(&t, &c.to_dfa(2)).unwrap();
        assert!(ct.transduce_all(&[sym(0)]).is_empty());
        assert_eq!(
            ct.transduce_all(&[sym(0), sym(0)]),
            vec![vec![sym(0), sym(1), sym(0), sym(1)]]
        );
    }

    #[test]
    fn constrain_rejects_alphabet_mismatch() {
        let t = identity_transducer();
        let dfa = Dfa::universal(3);
        assert!(matches!(
            constrain(&t, &dfa),
            Err(EngineError::AlphabetMismatch { .. })
        ));
    }
}
