//! Finite-state transducers with deterministic emission (§3.1.1).
//!
//! A transducer `A^ω` is an NFA `A` over the input alphabet `Σ` together
//! with an output function `ω : Q × Σ × Q → Δ*`: every transition emits a
//! fixed string over the output alphabet `Δ` ("deterministic emission" —
//! the emitted string is determined by the transition, even though the
//! transition relation itself may be nondeterministic). There are no empty
//! transitions: the machine reads exactly one input symbol per step, which
//! keeps runs aligned with Markov-sequence positions.
//!
//! `A^ω` transduces `s` into `o` (written `s →[A^ω]→ o`) if some
//! *accepting* run on `s` emits exactly `o`.
//!
//! The type is immutable after construction; build with
//! [`TransducerBuilder`], which enforces deterministic emission (adding
//! the same `(q, σ, q')` transition twice with different emissions is an
//! error) and interns emission strings so the evaluation DPs compare them
//! by id.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use transmark_automata::{Alphabet, Nfa, StateId, SymbolId};

use crate::error::EngineError;

/// Dense id of an interned emission string. Id `0` is always `ε`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EmissionId(pub u32);

impl EmissionId {
    /// The id of the empty emission `ε`.
    pub const EPSILON: EmissionId = EmissionId(0);

    /// The index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One outgoing transducer transition: target state plus emitted string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TEdge {
    /// The state `q'` the transition moves to.
    pub target: StateId,
    /// The interned emission `ω(q, σ, q')`.
    pub emission: EmissionId,
}

/// A finite-state transducer with deterministic emission.
#[derive(Debug, Clone)]
pub struct Transducer {
    input_alphabet: Arc<Alphabet>,
    output_alphabet: Arc<Alphabet>,
    initial: StateId,
    accepting: Vec<bool>,
    /// Flat table indexed by `state * |Σ| + symbol`; edges sorted by
    /// target state.
    delta: Vec<Vec<TEdge>>,
    /// Interned emission strings; index 0 is `ε`.
    emissions: Vec<Box<[SymbolId]>>,
}

impl Transducer {
    /// Starts building a transducer over the given alphabets.
    pub fn builder(
        input_alphabet: impl Into<Arc<Alphabet>>,
        output_alphabet: impl Into<Arc<Alphabet>>,
    ) -> TransducerBuilder {
        TransducerBuilder::new(input_alphabet, output_alphabet)
    }

    /// The input alphabet `Σ_A` (must equal the Markov sequence's `Σ_μ`).
    pub fn input_alphabet(&self) -> &Alphabet {
        &self.input_alphabet
    }

    /// Shared handle to the input alphabet.
    pub fn input_alphabet_arc(&self) -> Arc<Alphabet> {
        Arc::clone(&self.input_alphabet)
    }

    /// The output alphabet `Δ_ω`.
    pub fn output_alphabet(&self) -> &Alphabet {
        &self.output_alphabet
    }

    /// Shared handle to the output alphabet.
    pub fn output_alphabet_arc(&self) -> Arc<Alphabet> {
        Arc::clone(&self.output_alphabet)
    }

    /// Number of states `|Q_A|`.
    #[inline]
    pub fn n_states(&self) -> usize {
        self.accepting.len()
    }

    /// Number of input symbols `|Σ_A|`.
    #[inline]
    pub fn n_input_symbols(&self) -> usize {
        self.input_alphabet.len()
    }

    /// Number of output symbols `|Δ_ω|`.
    #[inline]
    pub fn n_output_symbols(&self) -> usize {
        self.output_alphabet.len()
    }

    /// The initial state `q⁰_A`.
    #[inline]
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Whether `state ∈ F_A`.
    #[inline]
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state.index()]
    }

    /// The outgoing edges for `(state, symbol)`.
    #[inline]
    pub fn edges(&self, state: StateId, symbol: SymbolId) -> &[TEdge] {
        &self.delta[state.index() * self.input_alphabet.len() + symbol.index()]
    }

    /// The emission string behind an [`EmissionId`].
    #[inline]
    pub fn emission(&self, id: EmissionId) -> &[SymbolId] {
        &self.emissions[id.index()]
    }

    /// Number of distinct interned emissions (including `ε`).
    pub fn n_emissions(&self) -> usize {
        self.emissions.len()
    }

    /// Iterates over all transitions as `(from, symbol, edge)`.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, SymbolId, TEdge)> + '_ {
        let k = self.input_alphabet.len();
        (0..self.n_states()).flat_map(move |q| {
            (0..k).flat_map(move |s| {
                self.delta[q * k + s]
                    .iter()
                    .map(move |&e| (StateId(q as u32), SymbolId(s as u32), e))
            })
        })
    }

    /// A structural fingerprint of this transducer: a deterministic,
    /// platform-independent 64-bit hash of the alphabet sizes, initial
    /// state, accepting set, transition table, and interned emissions.
    ///
    /// This is the plan-cache key in `transmark-store`. Like any 64-bit
    /// hash it can collide; pair it with [`Transducer::same_structure`]
    /// when collisions must be distinguished.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = transmark_automata::Fingerprinter::new();
        fp.write_bytes(b"transducer");
        fp.write_usize(self.n_input_symbols());
        fp.write_usize(self.n_output_symbols());
        fp.write_usize(self.n_states());
        fp.write_u32(self.initial.0);
        for &acc in &self.accepting {
            fp.write_bool(acc);
        }
        fp.write_usize(self.emissions.len());
        for em in &self.emissions {
            fp.write_usize(em.len());
            for &d in em.iter() {
                fp.write_u32(d.0);
            }
        }
        for edges in &self.delta {
            fp.write_usize(edges.len());
            for e in edges {
                fp.write_u32(e.target.0);
                fp.write_u32(e.emission.0);
            }
        }
        fp.finish()
    }

    /// Exact structural equality: same alphabet sizes, initial state,
    /// accepting set, transition table, and emission interning. Two
    /// machines that are `same_structure` produce bit-identical results on
    /// every pass, so a cached plan for one is valid for the other.
    pub fn same_structure(&self, other: &Transducer) -> bool {
        self.n_input_symbols() == other.n_input_symbols()
            && self.n_output_symbols() == other.n_output_symbols()
            && self.initial == other.initial
            && self.accepting == other.accepting
            && self.delta == other.delta
            && self.emissions == other.emissions
    }

    // ---- Classification (§3.1.1) ----------------------------------------

    /// Whether the underlying automaton is a (complete) DFA.
    pub fn is_deterministic(&self) -> bool {
        self.delta.iter().all(|edges| edges.len() == 1)
    }

    /// Whether the transducer is selective (`F_A ≠ Q_A`). Non-selective
    /// transducers accept every readable string.
    pub fn is_selective(&self) -> bool {
        !self.accepting.iter().all(|&a| a)
    }

    /// Returns `Some(k)` if the emission is k-uniform (every emitted
    /// string has length exactly `k`), else `None`. A transducer with no
    /// transitions is vacuously 0-uniform.
    pub fn uniform_emission(&self) -> Option<usize> {
        let mut k: Option<usize> = None;
        for edges in &self.delta {
            for e in edges {
                let len = self.emissions[e.emission.index()].len();
                match k {
                    None => k = Some(len),
                    Some(prev) if prev != len => return None,
                    _ => {}
                }
            }
        }
        Some(k.unwrap_or(0))
    }

    /// Whether this is a Mealy machine: deterministic, non-selective, and
    /// 1-uniform.
    pub fn is_mealy(&self) -> bool {
        self.is_deterministic() && !self.is_selective() && self.uniform_emission() == Some(1)
    }

    /// Whether this is a projector: every `ω(q, σ, q')` is either the read
    /// symbol `σ` itself or `ε` (§4.2, before Theorem 4.5). Requires the
    /// output alphabet to share symbol names with the input alphabet for
    /// the emitted copies.
    pub fn is_projector(&self) -> bool {
        let k = self.input_alphabet.len();
        for q in 0..self.n_states() {
            for s in 0..k {
                let sym_name = self.input_alphabet.name(SymbolId(s as u32));
                for e in &self.delta[q * k + s] {
                    let em = &self.emissions[e.emission.index()];
                    let ok = em.is_empty()
                        || (em.len() == 1 && self.output_alphabet.name(em[0]) == sym_name);
                    if !ok {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The longest emission length (0 for an emission-free machine). The
    /// output of any transduction of an `n`-symbol string is at most
    /// `n · max_emission_len()` long — the bound behind the enumeration
    /// delay analysis.
    pub fn max_emission_len(&self) -> usize {
        self.emissions.iter().map(|e| e.len()).max().unwrap_or(0)
    }

    /// The underlying NFA `A` (emissions dropped).
    pub fn underlying_nfa(&self) -> Nfa {
        let k = self.input_alphabet.len();
        let mut nfa = Nfa::new(k);
        for &acc in &self.accepting {
            nfa.add_state(acc);
        }
        nfa.set_initial(self.initial);
        for q in 0..self.n_states() {
            for s in 0..k {
                for e in &self.delta[q * k + s] {
                    nfa.add_transition(StateId(q as u32), SymbolId(s as u32), e.target);
                }
            }
        }
        nfa
    }

    // ---- Transduction on concrete strings --------------------------------

    /// All outputs `o` with `s →[A^ω]→ o`, sorted and deduplicated.
    ///
    /// Exponential in the worst case (one output per accepting run); this
    /// is the *definition*, used by oracles and on deterministic machines.
    pub fn transduce_all(&self, s: &[SymbolId]) -> Vec<Vec<SymbolId>> {
        let mut outputs = BTreeSet::new();
        let mut out_prefix: Vec<SymbolId> = Vec::new();
        self.transduce_rec(self.initial, s, &mut out_prefix, &mut outputs);
        outputs.into_iter().collect()
    }

    fn transduce_rec(
        &self,
        q: StateId,
        rest: &[SymbolId],
        out_prefix: &mut Vec<SymbolId>,
        outputs: &mut BTreeSet<Vec<SymbolId>>,
    ) {
        match rest.split_first() {
            None => {
                if self.is_accepting(q) {
                    outputs.insert(out_prefix.clone());
                }
            }
            Some((&sym, tail)) => {
                for e in self.edges(q, sym) {
                    let em = self.emission(e.emission);
                    out_prefix.extend_from_slice(em);
                    self.transduce_rec(e.target, tail, out_prefix, outputs);
                    out_prefix.truncate(out_prefix.len() - em.len());
                }
            }
        }
    }

    /// The unique output of a deterministic transducer on `s`, or `None`
    /// if `s` is rejected (or a transition is missing).
    pub fn transduce_deterministic(&self, s: &[SymbolId]) -> Option<Vec<SymbolId>> {
        let mut q = self.initial;
        let mut out = Vec::new();
        for &sym in s {
            let edges = self.edges(q, sym);
            let e = edges.first()?;
            debug_assert!(
                edges.len() == 1,
                "transduce_deterministic on a nondeterministic machine"
            );
            out.extend_from_slice(self.emission(e.emission));
            q = e.target;
        }
        self.is_accepting(q).then_some(out)
    }

    /// Renders an output string using the output alphabet's names,
    /// separated by `sep`.
    pub fn render_output(&self, o: &[SymbolId], sep: &str) -> String {
        self.output_alphabet.render(o, sep)
    }
}

/// Builder for [`Transducer`]. See the module docs for the invariants it
/// enforces.
#[derive(Debug)]
pub struct TransducerBuilder {
    input_alphabet: Arc<Alphabet>,
    output_alphabet: Arc<Alphabet>,
    initial: StateId,
    accepting: Vec<bool>,
    delta: Vec<Vec<TEdge>>,
    emissions: Vec<Box<[SymbolId]>>,
    emission_ids: HashMap<Box<[SymbolId]>, EmissionId>,
}

impl TransducerBuilder {
    /// Starts a builder over the given alphabets.
    pub fn new(
        input_alphabet: impl Into<Arc<Alphabet>>,
        output_alphabet: impl Into<Arc<Alphabet>>,
    ) -> Self {
        let eps: Box<[SymbolId]> = Box::new([]);
        let mut emission_ids = HashMap::new();
        emission_ids.insert(eps.clone(), EmissionId::EPSILON);
        Self {
            input_alphabet: input_alphabet.into(),
            output_alphabet: output_alphabet.into(),
            initial: StateId(0),
            accepting: Vec::new(),
            delta: Vec::new(),
            emissions: vec![eps],
            emission_ids,
        }
    }

    /// Adds a state; the first added state is the initial state unless
    /// [`TransducerBuilder::set_initial`] overrides it.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        let id = StateId(u32::try_from(self.accepting.len()).expect("too many states"));
        self.accepting.push(accepting);
        self.delta
            .extend((0..self.input_alphabet.len()).map(|_| Vec::new()));
        id
    }

    /// Sets the initial state.
    pub fn set_initial(&mut self, state: StateId) -> &mut Self {
        self.initial = state;
        self
    }

    /// Changes a state's acceptance.
    pub fn set_accepting(&mut self, state: StateId, accepting: bool) -> &mut Self {
        self.accepting[state.index()] = accepting;
        self
    }

    /// Interns an emission string, validating its symbols.
    fn intern_emission(&mut self, emission: &[SymbolId]) -> Result<EmissionId, EngineError> {
        for &d in emission {
            if d.index() >= self.output_alphabet.len() {
                return Err(EngineError::InvalidSymbol {
                    symbol: d.index(),
                    n_symbols: self.output_alphabet.len(),
                    alphabet: "output",
                });
            }
        }
        if let Some(&id) = self.emission_ids.get(emission) {
            return Ok(id);
        }
        let id = EmissionId(u32::try_from(self.emissions.len()).expect("too many emissions"));
        let boxed: Box<[SymbolId]> = emission.into();
        self.emissions.push(boxed.clone());
        self.emission_ids.insert(boxed, id);
        Ok(id)
    }

    /// Adds the transition `q' ∈ δ(q, σ)` with `ω(q, σ, q') = emission`.
    ///
    /// Re-adding an existing transition with the same emission is a no-op;
    /// with a different emission it is an [`EngineError::EmissionConflict`]
    /// (deterministic emission).
    pub fn add_transition(
        &mut self,
        from: StateId,
        symbol: SymbolId,
        to: StateId,
        emission: &[SymbolId],
    ) -> Result<&mut Self, EngineError> {
        let n_states = self.accepting.len();
        if from.index() >= n_states {
            return Err(EngineError::InvalidState {
                state: from.index(),
                n_states,
            });
        }
        if to.index() >= n_states {
            return Err(EngineError::InvalidState {
                state: to.index(),
                n_states,
            });
        }
        if symbol.index() >= self.input_alphabet.len() {
            return Err(EngineError::InvalidSymbol {
                symbol: symbol.index(),
                n_symbols: self.input_alphabet.len(),
                alphabet: "input",
            });
        }
        let em = self.intern_emission(emission)?;
        let k = self.input_alphabet.len();
        let edges = &mut self.delta[from.index() * k + symbol.index()];
        match edges.binary_search_by_key(&to, |e| e.target) {
            Ok(pos) => {
                if edges[pos].emission != em {
                    return Err(EngineError::EmissionConflict {
                        from: from.index(),
                        symbol: symbol.index(),
                        to: to.index(),
                    });
                }
            }
            Err(pos) => edges.insert(
                pos,
                TEdge {
                    target: to,
                    emission: em,
                },
            ),
        }
        Ok(self)
    }

    /// Adds a transition whose emission is given by output-symbol *names*
    /// (convenient in examples and workloads).
    pub fn add_transition_named(
        &mut self,
        from: StateId,
        symbol: SymbolId,
        to: StateId,
        emission_names: &[&str],
    ) -> Result<&mut Self, EngineError> {
        let emission: Vec<SymbolId> = emission_names
            .iter()
            .map(|n| {
                self.output_alphabet
                    .get(n)
                    .ok_or(EngineError::InvalidSymbol {
                        symbol: usize::MAX,
                        n_symbols: self.output_alphabet.len(),
                        alphabet: "output",
                    })
            })
            .collect::<Result<_, _>>()?;
        self.add_transition(from, symbol, to, &emission)
    }

    /// Finalizes the transducer.
    pub fn build(self) -> Result<Transducer, EngineError> {
        if self.accepting.is_empty() {
            return Err(EngineError::EmptyTransducer);
        }
        if self.initial.index() >= self.accepting.len() {
            return Err(EngineError::InvalidState {
                state: self.initial.index(),
                n_states: self.accepting.len(),
            });
        }
        Ok(Transducer {
            input_alphabet: self.input_alphabet,
            output_alphabet: self.output_alphabet,
            initial: self.initial,
            accepting: self.accepting,
            delta: self.delta,
            emissions: self.emissions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> SymbolId {
        SymbolId(i)
    }

    /// A Mealy machine over Σ={a,b}, Δ={0,1}: emits 1 when the symbol
    /// repeats the previous one, else 0 (first symbol emits 0).
    fn repeat_detector() -> Transducer {
        let input = Alphabet::of_chars("ab");
        let output = Alphabet::of_chars("01");
        let mut b = Transducer::builder(input, output);
        let qa = b.add_state(true); // last read 'a'
        let qb = b.add_state(true); // last read 'b'
        let q0 = b.add_state(true); // start
        b.set_initial(q0);
        let zero = [sym(0)];
        let one = [sym(1)];
        b.add_transition(q0, sym(0), qa, &zero).unwrap();
        b.add_transition(q0, sym(1), qb, &zero).unwrap();
        b.add_transition(qa, sym(0), qa, &one).unwrap();
        b.add_transition(qa, sym(1), qb, &zero).unwrap();
        b.add_transition(qb, sym(0), qa, &zero).unwrap();
        b.add_transition(qb, sym(1), qb, &one).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn classification_of_mealy_machine() {
        let t = repeat_detector();
        assert!(t.is_deterministic());
        assert!(!t.is_selective());
        assert_eq!(t.uniform_emission(), Some(1));
        assert!(t.is_mealy());
        assert!(!t.is_projector());
        assert_eq!(t.max_emission_len(), 1);
    }

    #[test]
    fn deterministic_transduction() {
        let t = repeat_detector();
        let s = [sym(0), sym(0), sym(1), sym(1), sym(0)];
        assert_eq!(
            t.transduce_deterministic(&s).unwrap(),
            vec![sym(0), sym(1), sym(0), sym(1), sym(0)]
        );
        assert_eq!(
            t.transduce_all(&s),
            vec![vec![sym(0), sym(1), sym(0), sym(1), sym(0)]]
        );
        assert_eq!(
            t.transduce_deterministic(&[]).unwrap(),
            Vec::<SymbolId>::new()
        );
    }

    /// A nondeterministic projector: guess a suffix and copy it.
    fn suffix_guesser() -> Transducer {
        let input = Alphabet::of_chars("ab");
        let output = Alphabet::of_chars("ab");
        let mut b = Transducer::builder(input.clone(), output);
        let skip = b.add_state(true); // still skipping
        let copy = b.add_state(true); // copying suffix
        b.set_initial(skip);
        for s in 0..2u32 {
            b.add_transition(skip, sym(s), skip, &[]).unwrap();
            b.add_transition(skip, sym(s), copy, &[sym(s)]).unwrap();
            b.add_transition(copy, sym(s), copy, &[sym(s)]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn nondeterministic_transduction_collects_all_outputs() {
        let t = suffix_guesser();
        assert!(!t.is_deterministic());
        assert!(t.is_projector());
        assert!(!t.is_selective());
        let s = [sym(0), sym(1)];
        // Outputs: ε (skip all), "b" (copy last), "ab" (copy all).
        let outs = t.transduce_all(&s);
        assert_eq!(outs, vec![vec![], vec![sym(0), sym(1)], vec![sym(1)]]);
    }

    #[test]
    fn emission_conflict_is_rejected() {
        let input = Alphabet::of_chars("a");
        let output = Alphabet::of_chars("x");
        let mut b = Transducer::builder(input, output);
        let q = b.add_state(true);
        b.add_transition(q, sym(0), q, &[sym(0)]).unwrap();
        // Same triple, same emission: fine.
        b.add_transition(q, sym(0), q, &[sym(0)]).unwrap();
        // Same triple, different emission: conflict.
        let err = b.add_transition(q, sym(0), q, &[]).unwrap_err();
        assert!(matches!(err, EngineError::EmissionConflict { .. }));
    }

    #[test]
    fn out_of_range_inputs_are_rejected() {
        let input = Alphabet::of_chars("a");
        let output = Alphabet::of_chars("x");
        let mut b = Transducer::builder(input, output);
        let q = b.add_state(true);
        assert!(matches!(
            b.add_transition(q, sym(5), q, &[]),
            Err(EngineError::InvalidSymbol {
                alphabet: "input",
                ..
            })
        ));
        assert!(matches!(
            b.add_transition(q, sym(0), StateId(9), &[]),
            Err(EngineError::InvalidState { .. })
        ));
        assert!(matches!(
            b.add_transition(q, sym(0), q, &[sym(7)]),
            Err(EngineError::InvalidSymbol {
                alphabet: "output",
                ..
            })
        ));
    }

    #[test]
    fn empty_transducer_is_rejected() {
        let input = Alphabet::of_chars("a");
        let output = Alphabet::of_chars("x");
        assert!(matches!(
            Transducer::builder(input, output).build(),
            Err(EngineError::EmptyTransducer)
        ));
    }

    #[test]
    fn underlying_nfa_matches_acceptance() {
        let t = suffix_guesser();
        let nfa = t.underlying_nfa();
        let s = [sym(0), sym(1), sym(1)];
        assert!(nfa.accepts(&s));
        assert_eq!(nfa.n_states(), t.n_states());
    }

    #[test]
    fn uniform_emission_detects_nonuniform() {
        let t = suffix_guesser(); // mixes ε and length-1
        assert_eq!(t.uniform_emission(), None);
    }

    #[test]
    fn emissions_are_interned() {
        let t = repeat_detector();
        // ε plus "0" and "1".
        assert_eq!(t.n_emissions(), 3);
    }

    #[test]
    fn add_transition_named_resolves_names() {
        let input = Alphabet::of_chars("a");
        let output = Alphabet::from_names(["room1", "room2"]);
        let mut b = Transducer::builder(input, output);
        let q = b.add_state(true);
        b.add_transition_named(q, sym(0), q, &["room2", "room1"])
            .unwrap();
        let t = b.build().unwrap();
        let out = t.transduce_deterministic(&[sym(0)]).unwrap();
        assert_eq!(t.render_output(&out, " "), "room2 room1");
    }
}
