//! Brute-force oracles: query evaluation by definition.
//!
//! These enumerate the whole possible-world space (`support(μ)`), apply
//! the transducer to each world, and aggregate — exactly the semantics of
//! §3.1.2, with exponential cost. They are the ground truth against which
//! every engine algorithm is tested, and the only way to rank by *true*
//! confidence for general transducers (which Theorem 4.4 shows is
//! inherently intractable).

use std::collections::BTreeMap;

use transmark_automata::SymbolId;
use transmark_markov::numeric::KahanSum;
use transmark_markov::support::support;
use transmark_markov::MarkovSequence;

use crate::confidence::check_inputs;
use crate::error::EngineError;
use crate::transducer::Transducer;

/// The full evaluation result `conf : A^ω(μ) → (0, 1]` by brute force.
///
/// Exponential in `μ`'s length; intended for tests, examples and the
/// experiment harness on small instances.
pub fn evaluate(
    t: &Transducer,
    m: &MarkovSequence,
) -> Result<BTreeMap<Vec<SymbolId>, f64>, EngineError> {
    check_inputs(t, m, None)?;
    let mut acc: BTreeMap<Vec<SymbolId>, KahanSum> = BTreeMap::new();
    for (s, p) in support(m) {
        for o in t.transduce_all(&s) {
            acc.entry(o).or_default().add(p);
        }
    }
    Ok(acc.into_iter().map(|(o, k)| (o, k.total())).collect())
}

/// The answers sorted by decreasing confidence (ties broken
/// lexicographically), with their confidences — the paper's "gold
/// standard" order, computable only by brute force in general.
pub fn ranked_by_confidence(
    t: &Transducer,
    m: &MarkovSequence,
) -> Result<Vec<(Vec<SymbolId>, f64)>, EngineError> {
    let mut v: Vec<(Vec<SymbolId>, f64)> = evaluate(t, m)?.into_iter().collect();
    v.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("no NaN")
            .then_with(|| a.0.cmp(&b.0))
    });
    Ok(v)
}

/// The top answer by confidence and its confidence (brute force).
pub fn top_by_confidence(
    t: &Transducer,
    m: &MarkovSequence,
) -> Result<Option<(Vec<SymbolId>, f64)>, EngineError> {
    Ok(ranked_by_confidence(t, m)?.into_iter().next())
}

/// `E_max(o)` by brute force: the max-probability world transduced to `o`.
pub fn emax(t: &Transducer, m: &MarkovSequence, o: &[SymbolId]) -> Result<f64, EngineError> {
    check_inputs(t, m, Some(o))?;
    let mut best = 0.0f64;
    for (s, p) in support(m) {
        if p > best && t.transduce_all(&s).iter().any(|out| out == o) {
            best = p;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmark_automata::Alphabet;
    use transmark_markov::MarkovSequenceBuilder;

    fn sym(i: u32) -> SymbolId {
        SymbolId(i)
    }

    /// μ over {a,b}, n=2: uniform first symbol; a→a w.p. 1; b uniform.
    fn chain() -> MarkovSequence {
        let alphabet = Alphabet::of_chars("ab");
        let (a, b) = (alphabet.sym("a"), alphabet.sym("b"));
        MarkovSequenceBuilder::new(alphabet, 2)
            .initial(a, 0.5)
            .initial(b, 0.5)
            .transition(0, a, a, 1.0)
            .transition(0, b, a, 0.5)
            .transition(0, b, b, 0.5)
            .build()
            .unwrap()
    }

    /// Identity transducer over {a,b}.
    fn identity() -> Transducer {
        let a = Alphabet::of_chars("ab");
        let mut b = Transducer::builder(a.clone(), a);
        let q = b.add_state(true);
        for s in 0..2u32 {
            b.add_transition(q, sym(s), q, &[sym(s)]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn identity_evaluation_recovers_string_distribution() {
        let m = chain();
        let t = identity();
        let conf = evaluate(&t, &m).unwrap();
        assert_eq!(conf.len(), 3);
        assert!((conf[&vec![sym(0), sym(0)]] - 0.5).abs() < 1e-12);
        assert!((conf[&vec![sym(1), sym(0)]] - 0.25).abs() < 1e-12);
        assert!((conf[&vec![sym(1), sym(1)]] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ranking_is_by_decreasing_confidence() {
        let m = chain();
        let t = identity();
        let ranked = ranked_by_confidence(&t, &m).unwrap();
        assert_eq!(ranked[0].0, vec![sym(0), sym(0)]);
        assert_eq!(top_by_confidence(&t, &m).unwrap().unwrap().1, 0.5);
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn brute_emax_is_best_single_world() {
        let m = chain();
        let t = identity();
        // Identity: E_max(o) = p(o).
        assert!((emax(&t, &m, &[sym(1), sym(0)]).unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(emax(&t, &m, &[sym(0), sym(1)]).unwrap(), 0.0);
    }
}
