//! Transducer composition: querying the output of another query.
//!
//! The related-work discussion (§6, Kempe \[29\]) raises composition of
//! transducers as the natural way to layer extractions. For machines in
//! our model (no empty transitions, deterministic emission), composition
//! `T₂ ∘ T₁` is well-defined whenever `T₁` is **1-uniform**: then `T₁`
//! emits exactly one `Δ₁` symbol per input symbol, `T₂` can consume that
//! symbol in lock-step, and the composite is again a transducer with
//! deterministic emission over `Σ₁ → Δ₂`:
//!
//! ```text
//! s →[T₂ ∘ T₁]→ o   ⇔   ∃d: s →[T₁]→ d  and  d →[T₂]→ o
//! ```
//!
//! A typical use: a Mealy machine first classifies raw locations into
//! rooms, and a second transducer extracts patterns over rooms — the
//! composite runs directly on the raw Markov sequence.

use std::sync::Arc;

use crate::error::EngineError;
use crate::transducer::{Transducer, TransducerBuilder};
use transmark_automata::StateId;

/// The composition `second ∘ first` (first runs on the input, second on
/// first's output). Requires `first` to be 1-uniform and the alphabets to
/// agree (`Δ₁ = Σ₂`); returns [`EngineError::NotUniform`] /
/// [`EngineError::AlphabetMismatch`] otherwise.
///
/// The state space is `Q₁ × Q₂` and the construction preserves
/// deterministic emission: the emission of a composite edge is
/// `ω₂(q₂, ω₁(q₁, σ, q₁'), q₂')`, fixed by the composite transition.
///
/// Why exactly 1-uniform? For `k ≥ 2` the second machine may have several
/// runs over one emitted block `d ∈ Δ₁ᵏ` that reach the *same* state with
/// *different* outputs; the composite transition `(q₁,q₂) → (q₁',q₂')`
/// would then need several emissions — i.e. **nondeterministic emission**,
/// the model the paper deliberately excludes (§3.1.1, §7: without
/// deterministic emission "almost every basic problem is computationally
/// hard"). Composing through a 1-uniform first stage is the fragment where
/// the composite stays inside the tractable model.
pub fn compose(first: &Transducer, second: &Transducer) -> Result<Transducer, EngineError> {
    if first.uniform_emission() != Some(1) {
        return Err(EngineError::NotUniform);
    }
    if first.n_output_symbols() != second.n_input_symbols() {
        return Err(EngineError::AlphabetMismatch {
            transducer: first.n_output_symbols(),
            sequence: second.n_input_symbols(),
        });
    }
    let (n1, n2) = (first.n_states(), second.n_states());
    let mut b = TransducerBuilder::new(
        first.input_alphabet_arc(),
        Arc::clone(&second.output_alphabet_arc()),
    );
    let state = |q1: StateId, q2: StateId| StateId((q1.index() * n2 + q2.index()) as u32);
    for q1 in 0..n1 {
        for q2 in 0..n2 {
            b.add_state(
                first.is_accepting(StateId(q1 as u32)) && second.is_accepting(StateId(q2 as u32)),
            );
        }
    }
    b.set_initial(state(first.initial(), second.initial()));
    for (from1, sym, e1) in first.transitions() {
        let mid = first.emission(e1.emission)[0];
        for q2 in 0..n2 {
            let from2 = StateId(q2 as u32);
            for e2 in second.edges(from2, mid) {
                let emission = second.emission(e2.emission).to_vec();
                b.add_transition(
                    state(from1, from2),
                    sym,
                    state(e1.target, e2.target),
                    &emission,
                )?;
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use transmark_automata::{Alphabet, SymbolId};

    fn sym(i: u32) -> SymbolId {
        SymbolId(i)
    }

    fn strings(k: usize, n: usize) -> Vec<Vec<SymbolId>> {
        let mut out: Vec<Vec<SymbolId>> = vec![vec![]];
        for _ in 0..n {
            out = out
                .into_iter()
                .flat_map(|s| {
                    (0..k).map(move |c| {
                        let mut t = s.clone();
                        t.push(sym(c as u32));
                        t
                    })
                })
                .collect();
        }
        out
    }

    /// Exhaustive semantic check: outputs of the composite equal the
    /// union over intermediate strings.
    fn assert_composition(first: &Transducer, second: &Transducer, max_len: usize) {
        let composite = compose(first, second).unwrap();
        for s in strings(first.n_input_symbols(), max_len) {
            let mut expected = BTreeSet::new();
            for d in first.transduce_all(&s) {
                for o in second.transduce_all(&d) {
                    expected.insert(o);
                }
            }
            let got: BTreeSet<_> = composite.transduce_all(&s).into_iter().collect();
            assert_eq!(got, expected, "composition diverges on {s:?}");
        }
    }

    /// Mealy: classify {r1a, r1b, r2a} into rooms {1, 2}.
    fn classifier() -> Transducer {
        let input = Alphabet::from_names(["r1a", "r1b", "r2a"]);
        let rooms = Alphabet::of_chars("12");
        let mut b = Transducer::builder(input, rooms.clone());
        let q = b.add_state(true);
        b.add_transition(q, sym(0), q, &[rooms.sym("1")]).unwrap();
        b.add_transition(q, sym(1), q, &[rooms.sym("1")]).unwrap();
        b.add_transition(q, sym(2), q, &[rooms.sym("2")]).unwrap();
        b.build().unwrap()
    }

    /// Deduplicate consecutive repeats of the room sequence.
    fn dedup_rooms() -> Transducer {
        let rooms = Alphabet::of_chars("12");
        let mut b = Transducer::builder(rooms.clone(), rooms.clone());
        let q0 = b.add_state(true);
        let q1 = b.add_state(true);
        let q2 = b.add_state(true);
        b.set_initial(q0);
        let one = [rooms.sym("1")];
        let two = [rooms.sym("2")];
        b.add_transition(q0, sym(0), q1, &one).unwrap();
        b.add_transition(q0, sym(1), q2, &two).unwrap();
        b.add_transition(q1, sym(0), q1, &[]).unwrap();
        b.add_transition(q1, sym(1), q2, &two).unwrap();
        b.add_transition(q2, sym(1), q2, &[]).unwrap();
        b.add_transition(q2, sym(0), q1, &one).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn deterministic_pipeline_composes() {
        let c = classifier();
        let d = dedup_rooms();
        assert_composition(&c, &d, 4);
        // Concrete spot check: r1a r1b r2a r1a → rooms 1121 → dedup 121.
        let composite = compose(&c, &d).unwrap();
        let out = composite
            .transduce_deterministic(&[sym(0), sym(1), sym(2), sym(0)])
            .unwrap();
        assert_eq!(composite.render_output(&out, ""), "121");
    }

    /// Nondeterministic second stage.
    fn guessing_stage() -> Transducer {
        let rooms = Alphabet::of_chars("12");
        let out = Alphabet::of_chars("x");
        let mut b = Transducer::builder(rooms, out.clone());
        let q = b.add_state(true);
        let r = b.add_state(true);
        // On "1": either emit x or nothing (two nondeterministic edges).
        b.add_transition(q, sym(0), q, &[out.sym("x")]).unwrap();
        b.add_transition(q, sym(0), r, &[]).unwrap();
        b.add_transition(q, sym(1), q, &[]).unwrap();
        b.add_transition(r, sym(0), r, &[]).unwrap();
        b.add_transition(r, sym(1), r, &[]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn nondeterministic_composition_matches_definition() {
        assert_composition(&classifier(), &guessing_stage(), 4);
    }

    #[test]
    fn composition_requirements_are_enforced() {
        let rooms = Alphabet::of_chars("12");
        // Not 1-uniform first stage.
        let mut b = Transducer::builder(rooms.clone(), rooms.clone());
        let q = b.add_state(true);
        b.add_transition(q, sym(0), q, &[]).unwrap();
        b.add_transition(q, sym(1), q, &[sym(0)]).unwrap();
        let nonuniform = b.build().unwrap();
        assert!(matches!(
            compose(&nonuniform, &dedup_rooms()),
            Err(EngineError::NotUniform)
        ));

        // Alphabet mismatch: classifier outputs 2 symbols, a 3-symbol
        // second stage cannot consume them.
        let tri = Alphabet::of_chars("abc");
        let mut b = Transducer::builder(tri.clone(), tri);
        let q = b.add_state(true);
        for s in 0..3u32 {
            b.add_transition(q, sym(s), q, &[sym(s)]).unwrap();
        }
        let second = b.build().unwrap();
        assert!(matches!(
            compose(&classifier(), &second),
            Err(EngineError::AlphabetMismatch { .. })
        ));
    }

    /// Composition interacts correctly with the engine: confidence of the
    /// composite equals brute force through both stages.
    #[test]
    fn composite_confidence_matches_two_stage_brute_force() {
        use transmark_markov::MarkovSequenceBuilder;
        let c = classifier();
        let d = dedup_rooms();
        let composite = compose(&c, &d).unwrap();
        let alphabet = c.input_alphabet_arc();
        let m = MarkovSequenceBuilder::new(alphabet, 3)
            .uniform_all()
            .build()
            .unwrap();
        let truth = crate::brute::evaluate(&composite, &m).unwrap();
        assert!(!truth.is_empty());
        for (o, want) in truth {
            let got = crate::confidence::confidence(&composite, &m, &o).unwrap();
            assert!((got - want).abs() < 1e-12, "output {o:?}");
        }
    }
}
