//! Property-based tests for the automata toolkit.
//!
//! Random NFAs/DFAs/regexes are checked against language-level laws:
//! determinization preserves the language, boolean products behave like
//! boolean connectives, minimization preserves the language while never
//! growing the automaton, and concatenation matches its definition.

use proptest::prelude::*;
use transmark_automata::{ops, regex::Regex, Alphabet, Dfa, Nfa, StateId, SymbolId};

/// A compact random NFA description that proptest can shrink.
#[derive(Debug, Clone)]
struct NfaSpec {
    n_symbols: usize,
    n_states: usize,
    accepting_mask: u32,
    /// (from, symbol, to) triples, reduced modulo the sizes.
    edges: Vec<(u8, u8, u8)>,
}

fn nfa_spec() -> impl Strategy<Value = NfaSpec> {
    (
        1usize..=3,
        1usize..=4,
        any::<u32>(),
        proptest::collection::vec(any::<(u8, u8, u8)>(), 0..20),
    )
        .prop_map(|(n_symbols, n_states, accepting_mask, edges)| NfaSpec {
            n_symbols,
            n_states,
            accepting_mask,
            edges,
        })
}

fn build_nfa(spec: &NfaSpec) -> Nfa {
    let mut n = Nfa::new(spec.n_symbols);
    for q in 0..spec.n_states {
        n.add_state(spec.accepting_mask >> q & 1 == 1);
    }
    for &(f, s, t) in &spec.edges {
        n.add_transition(
            StateId(f as u32 % spec.n_states as u32),
            SymbolId(s as u32 % spec.n_symbols as u32),
            StateId(t as u32 % spec.n_states as u32),
        );
    }
    n
}

fn all_strings(n_symbols: usize, max_len: usize) -> Vec<Vec<SymbolId>> {
    let mut out = vec![vec![]];
    let mut layer: Vec<Vec<SymbolId>> = vec![vec![]];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for s in &layer {
            for c in 0..n_symbols {
                let mut t = s.clone();
                t.push(SymbolId(c as u32));
                next.push(t);
            }
        }
        out.extend(next.iter().cloned());
        layer = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn determinization_preserves_language(spec in nfa_spec()) {
        let nfa = build_nfa(&spec);
        let dfa = ops::determinize(&nfa);
        prop_assert!(dfa.validate().is_ok());
        for s in all_strings(spec.n_symbols, 4) {
            prop_assert_eq!(nfa.accepts(&s), dfa.accepts(&s), "string {:?}", s);
        }
    }

    #[test]
    fn minimization_preserves_language_and_shrinks(spec in nfa_spec()) {
        let dfa = ops::determinize(&build_nfa(&spec));
        let min = ops::minimize(&dfa);
        prop_assert!(min.n_states() <= dfa.n_states());
        prop_assert!(ops::equivalent(&dfa, &min).unwrap());
        // Minimization is idempotent.
        prop_assert_eq!(ops::minimize(&min).n_states(), min.n_states());
    }

    #[test]
    fn boolean_products_are_boolean(a in nfa_spec(), b in nfa_spec()) {
        let n_symbols = a.n_symbols.min(b.n_symbols);
        let mut a = a; a.n_symbols = n_symbols;
        let mut b = b; b.n_symbols = n_symbols;
        let da = ops::determinize(&build_nfa(&a));
        let db = ops::determinize(&build_nfa(&b));
        let and = ops::product(&da, &db, ops::BoolOp::And).unwrap();
        let or = ops::product(&da, &db, ops::BoolOp::Or).unwrap();
        let xor = ops::product(&da, &db, ops::BoolOp::Xor).unwrap();
        let not_a = ops::complement(&da);
        for s in all_strings(n_symbols, 3) {
            let (x, y) = (da.accepts(&s), db.accepts(&s));
            prop_assert_eq!(and.accepts(&s), x && y);
            prop_assert_eq!(or.accepts(&s), x || y);
            prop_assert_eq!(xor.accepts(&s), x != y);
            prop_assert_eq!(not_a.accepts(&s), !x);
        }
    }

    #[test]
    fn concatenation_matches_definition(a in nfa_spec(), b in nfa_spec()) {
        let n_symbols = a.n_symbols.min(b.n_symbols);
        let mut a = a; a.n_symbols = n_symbols;
        let mut b = b; b.n_symbols = n_symbols;
        let na = build_nfa(&a);
        let nb = build_nfa(&b);
        let cat = ops::concat_nfa(&na, &nb).unwrap();
        for s in all_strings(n_symbols, 4) {
            let expect = (0..=s.len()).any(|i| na.accepts(&s[..i]) && nb.accepts(&s[i..]));
            prop_assert_eq!(cat.accepts(&s), expect, "string {:?}", s);
        }
    }

    #[test]
    fn union_matches_definition(a in nfa_spec(), b in nfa_spec()) {
        let n_symbols = a.n_symbols.min(b.n_symbols);
        let mut a = a; a.n_symbols = n_symbols;
        let mut b = b; b.n_symbols = n_symbols;
        let na = build_nfa(&a);
        let nb = build_nfa(&b);
        let u = ops::union_nfa(&na, &nb).unwrap();
        for s in all_strings(n_symbols, 4) {
            prop_assert_eq!(u.accepts(&s), na.accepts(&s) || nb.accepts(&s));
        }
    }

    #[test]
    fn emptiness_agrees_with_enumeration(spec in nfa_spec()) {
        let nfa = build_nfa(&spec);
        // If the language restricted to short strings is nonempty, the
        // emptiness check must say nonempty (the converse needs longer
        // strings, bounded by the state count: pumping).
        let has_short = all_strings(spec.n_symbols, spec.n_states + 1)
            .iter()
            .any(|s| nfa.accepts(s));
        prop_assert_eq!(!ops::is_empty_nfa(&nfa), has_short);
    }
}

/// Random regexes, checked against a reference matcher on the AST.
mod regex_props {
    use super::*;

    /// Reference semantics by recursive matching on the AST.
    fn matches_ref(re: &Regex, s: &[SymbolId]) -> bool {
        match re {
            Regex::Epsilon => s.is_empty(),
            Regex::Class(set) => s.len() == 1 && set.contains(s[0].index()),
            Regex::Concat(a, b) => {
                (0..=s.len()).any(|i| matches_ref(a, &s[..i]) && matches_ref(b, &s[i..]))
            }
            Regex::Alt(a, b) => matches_ref(a, s) || matches_ref(b, s),
            Regex::Star(a) => {
                if s.is_empty() {
                    return true;
                }
                // Split off a nonempty prefix matching `a`.
                (1..=s.len()).any(|i| matches_ref(a, &s[..i]) && matches_ref(re, &s[i..]))
            }
        }
    }

    fn arb_regex(alphabet_len: usize) -> impl Strategy<Value = Regex> {
        let leaf = prop_oneof![
            Just(Regex::Epsilon),
            (0..alphabet_len as u32).prop_map(move |c| {
                Regex::Class(transmark_automata::BitSet::singleton(
                    alphabet_len,
                    c as usize,
                ))
            }),
        ];
        leaf.prop_recursive(3, 12, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Regex::Concat(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Regex::Alt(Box::new(a), Box::new(b))),
                inner.prop_map(|a| Regex::Star(Box::new(a))),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn glushkov_matches_reference_semantics(re in arb_regex(2)) {
            let alphabet = Alphabet::of_chars("ab");
            let nfa = re.compile(&alphabet);
            for s in super::all_strings(2, 5) {
                prop_assert_eq!(nfa.accepts(&s), matches_ref(&re, &s), "string {:?}", s);
            }
        }
    }
}

#[test]
fn word_dfa_language_is_singleton() {
    for w in all_strings(2, 3) {
        let d = Dfa::word(2, &w);
        for s in all_strings(2, 4) {
            assert_eq!(d.accepts(&s), s == w);
        }
    }
}

mod determinizer_props {
    use super::*;
    use transmark_automata::ops::Determinizer;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// On-the-fly determinization agrees with direct NFA subset
        /// simulation on every string, including dead-subset detection.
        #[test]
        fn determinizer_tracks_reach_sets(spec in super::nfa_spec()) {
            let nfa = super::build_nfa(&spec);
            let mut det = Determinizer::new(&nfa);
            for s in super::all_strings(spec.n_symbols, 4) {
                let mut id = det.initial();
                for &c in &s {
                    id = det.step(id, c);
                }
                let reach = nfa.reachable_after(&s);
                prop_assert_eq!(det.is_dead(id), reach.is_empty());
                prop_assert_eq!(det.subset(id), &reach);
                prop_assert_eq!(det.is_accepting(id), nfa.accepts(&s));
            }
            // Materialized subsets are bounded by distinct reach sets + 1.
            prop_assert!(det.n_materialized() <= 2usize.pow(spec.n_states as u32) + 1);
        }
    }
}
