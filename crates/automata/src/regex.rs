//! A regular-expression compiler for query authoring.
//!
//! §5 of the paper writes s-projector components as Perl-syntax
//! expressions (e.g. `".*Name:"`, `"[a-zA-Z,]+"`, `"\s.*"`). This module
//! compiles that subset into an epsilon-free [`Nfa`] via the Glushkov
//! (position automaton) construction, so the result plugs directly into
//! the engine's position-aligned dynamic programs.
//!
//! Supported syntax, interpreted over a caller-supplied [`Alphabet`] whose
//! symbol names are single characters:
//!
//! * literal characters, `\`-escaped metacharacters
//! * `.` — any symbol of the alphabet
//! * `[abc]`, `[a-z0-9]`, `[^...]` — character classes (over the alphabet)
//! * `\s` (whitespace), `\d` (digits), `\w` (word characters) — classes
//!   restricted to symbols present in the alphabet
//! * concatenation, `|`, `*`, `+`, `?`, and `(...)` grouping
//!
//! A class that matches no alphabet symbol is allowed (it denotes the empty
//! language at that position), mirroring how Perl classes behave over a
//! restricted alphabet.

use crate::alphabet::{Alphabet, SymbolId};
use crate::bitset::BitSet;
use crate::error::AutomataError;
use crate::nfa::Nfa;

/// Abstract syntax of the supported regex subset. Character classes are
/// pre-resolved to sets of alphabet symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regex {
    /// Matches only the empty string.
    Epsilon,
    /// Matches one symbol drawn from the class.
    Class(BitSet),
    /// Concatenation.
    Concat(Box<Regex>, Box<Regex>),
    /// Alternation.
    Alt(Box<Regex>, Box<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
}

impl Regex {
    /// Parses `pattern` against `alphabet` (symbol names must be single
    /// characters for symbols used by the pattern).
    pub fn parse(pattern: &str, alphabet: &Alphabet) -> Result<Regex, AutomataError> {
        Parser {
            chars: pattern.char_indices().collect(),
            pos: 0,
            alphabet,
        }
        .parse_top()
    }

    /// Compiles the regex to an epsilon-free NFA over `alphabet`.
    pub fn compile(&self, alphabet: &Alphabet) -> Nfa {
        glushkov(self, alphabet.len())
    }

    /// Convenience: parse and compile in one step.
    ///
    /// ```
    /// use transmark_automata::{regex::Regex, Alphabet};
    ///
    /// let alphabet = Alphabet::of_chars("ab");
    /// let nfa = Regex::to_nfa("a(ba)*", &alphabet)?;
    /// let a = alphabet.sym("a");
    /// let b = alphabet.sym("b");
    /// assert!(nfa.accepts(&[a]));
    /// assert!(nfa.accepts(&[a, b, a]));
    /// assert!(!nfa.accepts(&[a, b]));
    /// # Ok::<(), transmark_automata::AutomataError>(())
    /// ```
    pub fn to_nfa(pattern: &str, alphabet: &Alphabet) -> Result<Nfa, AutomataError> {
        Ok(Regex::parse(pattern, alphabet)?.compile(alphabet))
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    chars: Vec<(usize, char)>,
    pos: usize,
    alphabet: &'a Alphabet,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn byte_pos(&self) -> usize {
        self.chars.get(self.pos).map_or_else(
            || self.chars.last().map_or(0, |&(i, c)| i + c.len_utf8()),
            |&(i, _)| i,
        )
    }

    fn err(&self, message: impl Into<String>) -> AutomataError {
        AutomataError::RegexParse {
            position: self.byte_pos(),
            message: message.into(),
        }
    }

    fn parse_top(&mut self) -> Result<Regex, AutomataError> {
        let r = self.parse_alt()?;
        if self.pos != self.chars.len() {
            return Err(self.err("unexpected trailing input (unbalanced ')'?)"));
        }
        Ok(r)
    }

    fn parse_alt(&mut self) -> Result<Regex, AutomataError> {
        let mut r = self.parse_concat()?;
        while self.peek() == Some('|') {
            self.bump();
            let rhs = self.parse_concat()?;
            r = Regex::Alt(Box::new(r), Box::new(rhs));
        }
        Ok(r)
    }

    fn parse_concat(&mut self) -> Result<Regex, AutomataError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.parse_repeat()?);
        }
        Ok(parts
            .into_iter()
            .reduce(|a, b| Regex::Concat(Box::new(a), Box::new(b)))
            .unwrap_or(Regex::Epsilon))
    }

    fn parse_repeat(&mut self) -> Result<Regex, AutomataError> {
        let mut r = self.parse_atom()?;
        while let Some(c) = self.peek() {
            match c {
                '*' => {
                    self.bump();
                    r = Regex::Star(Box::new(r));
                }
                '+' => {
                    self.bump();
                    // r+ = r · r*
                    r = Regex::Concat(Box::new(r.clone()), Box::new(Regex::Star(Box::new(r))));
                }
                '?' => {
                    self.bump();
                    // r? = r | ε
                    r = Regex::Alt(Box::new(r), Box::new(Regex::Epsilon));
                }
                _ => break,
            }
        }
        Ok(r)
    }

    fn parse_atom(&mut self) -> Result<Regex, AutomataError> {
        match self.peek() {
            None => Err(self.err("expected an atom, found end of pattern")),
            Some('(') => {
                self.bump();
                let r = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(self.err("expected ')'"));
                }
                Ok(r)
            }
            Some('.') => {
                self.bump();
                let mut set = BitSet::new(self.alphabet.len());
                for id in self.alphabet.ids() {
                    set.insert(id.index());
                }
                Ok(Regex::Class(set))
            }
            Some('[') => {
                self.bump();
                self.parse_class()
            }
            Some('\\') => {
                self.bump();
                let c = self.bump().ok_or_else(|| self.err("dangling '\\'"))?;
                Ok(Regex::Class(self.escape_class(c)?))
            }
            Some(c) if "*+?)|]".contains(c) => {
                Err(self.err(format!("unexpected metacharacter {c:?}")))
            }
            Some(c) => {
                self.bump();
                Ok(Regex::Class(self.literal_class(c)?))
            }
        }
    }

    fn parse_class(&mut self) -> Result<Regex, AutomataError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut chars: Vec<char> = Vec::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated character class")),
                Some(']') => break,
                Some('\\') => {
                    let c = self
                        .bump()
                        .ok_or_else(|| self.err("dangling '\\' in class"))?;
                    // In-class escapes: \s \d \w expand; others are literal.
                    match c {
                        's' => chars.extend([' ', '\t', '\n', '\r']),
                        'd' => chars.extend('0'..='9'),
                        'w' => {
                            chars.extend('a'..='z');
                            chars.extend('A'..='Z');
                            chars.extend('0'..='9');
                            chars.push('_');
                        }
                        other => chars.push(other),
                    }
                }
                Some(lo) => {
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).map(|&(_, c)| c) != Some(']')
                    {
                        self.bump(); // '-'
                        let hi = self.bump().ok_or_else(|| self.err("unterminated range"))?;
                        if hi < lo {
                            return Err(self.err(format!("invalid range {lo}-{hi}")));
                        }
                        chars.extend(lo..=hi);
                    } else {
                        chars.push(lo);
                    }
                }
            }
        }
        let mut set = BitSet::new(self.alphabet.len());
        for c in chars {
            if let Some(id) = self.alphabet.get(&c.to_string()) {
                set.insert(id.index());
            }
            // Characters outside the alphabet simply cannot match.
        }
        if negated {
            let mut neg = BitSet::new(self.alphabet.len());
            for id in self.alphabet.ids() {
                if !set.contains(id.index()) {
                    neg.insert(id.index());
                }
            }
            set = neg;
        }
        Ok(Regex::Class(set))
    }

    /// A class for a top-level escape like `\s`, `\d`, `\w`, or an escaped
    /// literal metacharacter.
    fn escape_class(&self, c: char) -> Result<BitSet, AutomataError> {
        let mut set = BitSet::new(self.alphabet.len());
        let mut add = |chars: &mut dyn Iterator<Item = char>, alphabet: &Alphabet| {
            for ch in chars {
                if let Some(id) = alphabet.get(&ch.to_string()) {
                    set.insert(id.index());
                }
            }
        };
        match c {
            's' => add(&mut [' ', '\t', '\n', '\r'].into_iter(), self.alphabet),
            'd' => add(&mut ('0'..='9'), self.alphabet),
            'w' => {
                add(&mut ('a'..='z'), self.alphabet);
                add(&mut ('A'..='Z'), self.alphabet);
                add(&mut ('0'..='9'), self.alphabet);
                add(&mut ['_'].into_iter(), self.alphabet);
            }
            // Escaped literal (covers \. \* \\ \[ etc.).
            other => return self.literal_class(other),
        }
        Ok(set)
    }

    /// A singleton class for a literal character; it is an error if the
    /// character is not in the alphabet (that literal could never match,
    /// which is almost certainly a query bug — unlike classes, where
    /// partial overlap with the alphabet is normal).
    fn literal_class(&self, c: char) -> Result<BitSet, AutomataError> {
        let id = self
            .alphabet
            .get(&c.to_string())
            .ok_or(AutomataError::UnknownSymbol {
                symbol: c.to_string(),
            })?;
        Ok(BitSet::singleton(self.alphabet.len(), id.index()))
    }
}

// ---------------------------------------------------------------------------
// Glushkov construction
// ---------------------------------------------------------------------------

/// Per-node analysis for the position automaton.
struct Analysis {
    nullable: bool,
    first: Vec<usize>,
    last: Vec<usize>,
}

fn glushkov(re: &Regex, n_symbols: usize) -> Nfa {
    fn analyze(re: &Regex, classes: &mut Vec<BitSet>, follow: &mut Vec<Vec<usize>>) -> Analysis {
        match re {
            Regex::Epsilon => Analysis {
                nullable: true,
                first: vec![],
                last: vec![],
            },
            Regex::Class(set) => {
                let pos = classes.len();
                classes.push(set.clone());
                follow.push(Vec::new());
                Analysis {
                    nullable: false,
                    first: vec![pos],
                    last: vec![pos],
                }
            }
            Regex::Concat(a, b) => {
                let left = analyze(a, classes, follow);
                let right = analyze(b, classes, follow);
                for &l in &left.last {
                    follow[l].extend(right.first.iter().copied());
                }
                let mut first = left.first.clone();
                if left.nullable {
                    first.extend(right.first.iter().copied());
                }
                let mut last = right.last.clone();
                if right.nullable {
                    last.extend(left.last.iter().copied());
                }
                Analysis {
                    nullable: left.nullable && right.nullable,
                    first,
                    last,
                }
            }
            Regex::Alt(a, b) => {
                let left = analyze(a, classes, follow);
                let right = analyze(b, classes, follow);
                let mut first = left.first;
                first.extend(right.first);
                let mut last = left.last;
                last.extend(right.last);
                Analysis {
                    nullable: left.nullable || right.nullable,
                    first,
                    last,
                }
            }
            Regex::Star(a) => {
                let inner = analyze(a, classes, follow);
                for &l in &inner.last {
                    follow[l].extend(inner.first.iter().copied());
                }
                Analysis {
                    nullable: true,
                    first: inner.first,
                    last: inner.last,
                }
            }
        }
    }

    // Linearize: assign a position id to each Class leaf, collecting the
    // per-position classes and the follow table.
    let mut classes: Vec<BitSet> = Vec::new();
    let mut follow: Vec<Vec<usize>> = Vec::new();
    let analysis = analyze(re, &mut classes, &mut follow);

    // Build the NFA: state 0 = start; state i+1 = position i.
    let mut nfa = Nfa::new(n_symbols);
    let start = nfa.add_state(analysis.nullable);
    let pos_states: Vec<_> = (0..classes.len())
        .map(|i| nfa.add_state(analysis.last.contains(&i)))
        .collect();
    nfa.set_initial(start);
    for &p in &analysis.first {
        for s in classes[p].iter() {
            nfa.add_transition(start, SymbolId(s as u32), pos_states[p]);
        }
    }
    for (p, nexts) in follow.iter().enumerate() {
        for &q in nexts {
            for s in classes[q].iter() {
                nfa.add_transition(pos_states[p], SymbolId(s as u32), pos_states[q]);
            }
        }
    }
    nfa
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::of_chars("ab")
    }

    fn strings(alphabet: &Alphabet, max_len: usize) -> Vec<Vec<SymbolId>> {
        let mut out = vec![vec![]];
        let mut layer: Vec<Vec<SymbolId>> = vec![vec![]];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for s in &layer {
                for id in alphabet.ids() {
                    let mut t = s.clone();
                    t.push(id);
                    next.push(t);
                }
            }
            out.extend(next.iter().cloned());
            layer = next;
        }
        out
    }

    /// Checks pattern acceptance against a predicate on the rendered string.
    fn check(pattern: &str, alphabet: &Alphabet, oracle: impl Fn(&str) -> bool) {
        let nfa = Regex::to_nfa(pattern, alphabet).unwrap();
        for s in strings(alphabet, 5) {
            let text = alphabet.render(&s, "");
            assert_eq!(
                nfa.accepts(&s),
                oracle(&text),
                "pattern {pattern:?} on input {text:?}"
            );
        }
    }

    #[test]
    fn literal_and_concat() {
        check("ab", &ab(), |s| s == "ab");
        check("aba", &ab(), |s| s == "aba");
    }

    #[test]
    fn alternation() {
        check("a|bb", &ab(), |s| s == "a" || s == "bb");
        check("ab|ba|", &ab(), |s| s == "ab" || s == "ba" || s.is_empty());
    }

    #[test]
    fn star_plus_opt() {
        check("a*", &ab(), |s| s.chars().all(|c| c == 'a'));
        check("a+", &ab(), |s| {
            !s.is_empty() && s.chars().all(|c| c == 'a')
        });
        check("ab?", &ab(), |s| s == "a" || s == "ab");
        check("(ab)*", &ab(), |s| {
            s.len() % 2 == 0 && s.as_bytes().chunks(2).all(|c| c == b"ab")
        });
    }

    #[test]
    fn dot_and_classes() {
        check(".b", &ab(), |s| s.len() == 2 && s.ends_with('b'));
        check(".*b", &ab(), |s| s.ends_with('b'));
        let abc = Alphabet::of_chars("abc");
        check("[ab]+", &abc, |s| {
            !s.is_empty() && s.chars().all(|c| c == 'a' || c == 'b')
        });
        check("[^a]*", &abc, |s| s.chars().all(|c| c != 'a'));
    }

    #[test]
    fn ranges_and_escapes() {
        let alpha = Alphabet::of_chars("abcXY2 .");
        check("[a-c]+", &alpha, |s| {
            !s.is_empty() && s.chars().all(|c| ('a'..='c').contains(&c))
        });
        check(r"\d", &alpha, |s| s == "2");
        check(r"\s", &alpha, |s| s == " ");
        check(r"\.", &alpha, |s| s == ".");
        check(r"\w+", &alpha, |s| {
            !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_')
        });
    }

    #[test]
    fn paper_section5_example_shapes() {
        // The paper's Example 5.1 patterns, over a toy character alphabet.
        let alpha = Alphabet::of_chars("Name:Hilary s");
        let b = Regex::to_nfa(".*Name:", &alpha).unwrap();
        let text: Vec<_> = "aNme:Name:"
            .chars()
            .map(|c| alpha.sym(&c.to_string()))
            .collect();
        let _ = text; // (symbols 'a'… may not exist; just exercise compile)
        assert!(b.n_states() > 0);
        let body = Regex::to_nfa("[a-zA-Z,]+", &alpha).unwrap();
        let h: Vec<_> = "Hilary"
            .chars()
            .map(|c| alpha.sym(&c.to_string()))
            .collect();
        assert!(body.accepts(&h));
    }

    #[test]
    fn parse_errors_are_reported() {
        let a = ab();
        assert!(matches!(
            Regex::parse("(ab", &a),
            Err(AutomataError::RegexParse { .. })
        ));
        assert!(matches!(
            Regex::parse("a)", &a),
            Err(AutomataError::RegexParse { .. })
        ));
        assert!(matches!(
            Regex::parse("*a", &a),
            Err(AutomataError::RegexParse { .. })
        ));
        assert!(matches!(
            Regex::parse("[ab", &a),
            Err(AutomataError::RegexParse { .. })
        ));
        assert!(matches!(
            Regex::parse("z", &a),
            Err(AutomataError::UnknownSymbol { .. })
        ));
    }

    #[test]
    fn class_outside_alphabet_matches_nothing() {
        // `[z]` over {a,b}: empty class — matches no single symbol.
        let nfa = Regex::to_nfa("[z]", &ab()).unwrap();
        for s in strings(&ab(), 3) {
            assert!(!nfa.accepts(&s));
        }
        // But `[z]*` still matches ε.
        let star = Regex::to_nfa("[z]*", &ab()).unwrap();
        assert!(star.accepts(&[]));
        assert!(!star.accepts(&[SymbolId(0)]));
    }

    #[test]
    fn dash_at_class_end_is_literal() {
        let alpha = Alphabet::of_chars("a-b");
        check("[a-]", &alpha, |s| s == "a" || s == "-");
    }
}
