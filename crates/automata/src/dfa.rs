//! Deterministic finite automata.
//!
//! A [`Dfa`] here is a *complete* DFA, matching the paper's definition:
//! `|δ(q, s)| = 1` for every state and symbol. Completeness is what makes
//! the s-projector constructions of §5 well-defined (prefix/suffix
//! constraints must classify *every* string).

use crate::alphabet::SymbolId;
use crate::error::AutomataError;
use crate::nfa::{Nfa, StateId};

/// Sentinel for "transition not yet set" inside the builder.
const UNSET: StateId = StateId(u32::MAX);

/// A complete deterministic finite automaton over `0..n_symbols`.
#[derive(Debug, Clone)]
pub struct Dfa {
    n_symbols: usize,
    initial: StateId,
    accepting: Vec<bool>,
    /// Flat table indexed by `state * n_symbols + symbol`.
    delta: Vec<StateId>,
}

impl Dfa {
    /// Creates a DFA with no states. All transitions start out unset; call
    /// [`Dfa::validate`] (or any run method, which validates in debug
    /// builds) after construction.
    pub fn new(n_symbols: usize) -> Self {
        Self {
            n_symbols,
            initial: StateId(0),
            accepting: Vec::new(),
            delta: Vec::new(),
        }
    }

    /// Adds a state and returns its id.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        let id = StateId(u32::try_from(self.accepting.len()).expect("too many states"));
        self.accepting.push(accepting);
        self.delta.extend((0..self.n_symbols).map(|_| UNSET));
        id
    }

    /// Adds a state whose transitions all point at itself (a sink).
    pub fn add_sink_state(&mut self, accepting: bool) -> StateId {
        let id = self.add_state(accepting);
        for s in 0..self.n_symbols {
            self.set_transition(id, SymbolId(s as u32), id);
        }
        id
    }

    /// Sets the initial state.
    pub fn set_initial(&mut self, state: StateId) {
        assert!(
            state.index() < self.n_states(),
            "initial state out of range"
        );
        self.initial = state;
    }

    /// Marks or unmarks a state as accepting.
    pub fn set_accepting(&mut self, state: StateId, accepting: bool) {
        self.accepting[state.index()] = accepting;
    }

    /// Sets `δ(from, symbol) = to`.
    pub fn set_transition(&mut self, from: StateId, symbol: SymbolId, to: StateId) {
        assert!(from.index() < self.n_states(), "source state out of range");
        assert!(to.index() < self.n_states(), "target state out of range");
        assert!(symbol.index() < self.n_symbols, "symbol out of range");
        self.delta[from.index() * self.n_symbols + symbol.index()] = to;
    }

    /// Number of states.
    #[inline]
    pub fn n_states(&self) -> usize {
        self.accepting.len()
    }

    /// Alphabet size.
    #[inline]
    pub fn n_symbols(&self) -> usize {
        self.n_symbols
    }

    /// The initial state.
    #[inline]
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Whether `state` is accepting.
    #[inline]
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state.index()]
    }

    /// The unique successor `δ(state, symbol)`.
    #[inline]
    pub fn step(&self, state: StateId, symbol: SymbolId) -> StateId {
        let to = self.delta[state.index() * self.n_symbols + symbol.index()];
        debug_assert!(to != UNSET, "transition ({}, {}) unset", state.0, symbol.0);
        to
    }

    /// Runs the DFA on `string` from the initial state, returning the final
    /// state.
    pub fn run(&self, string: &[SymbolId]) -> StateId {
        debug_assert!(self.validate().is_ok(), "running an invalid DFA");
        let mut q = self.initial;
        for &s in string {
            q = self.step(q, s);
        }
        q
    }

    /// Whether the DFA accepts `string`.
    pub fn accepts(&self, string: &[SymbolId]) -> bool {
        self.is_accepting(self.run(string))
    }

    /// Checks that the DFA is complete and all ids are in range.
    pub fn validate(&self) -> Result<(), AutomataError> {
        if self.n_states() == 0 {
            return Err(AutomataError::InvalidState {
                state: 0,
                n_states: 0,
            });
        }
        if self.initial.index() >= self.n_states() {
            return Err(AutomataError::InvalidState {
                state: self.initial.index(),
                n_states: self.n_states(),
            });
        }
        for q in 0..self.n_states() {
            for s in 0..self.n_symbols {
                let to = self.delta[q * self.n_symbols + s];
                if to == UNSET {
                    return Err(AutomataError::NotDeterministic {
                        state: q,
                        symbol: s,
                        arity: 0,
                    });
                }
                if to.index() >= self.n_states() {
                    return Err(AutomataError::InvalidState {
                        state: to.index(),
                        n_states: self.n_states(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Views this DFA as an [`Nfa`] (singleton transition sets).
    pub fn to_nfa(&self) -> Nfa {
        let mut n = Nfa::new(self.n_symbols);
        for q in 0..self.n_states() {
            n.add_state(self.accepting[q]);
        }
        n.set_initial(self.initial);
        for q in 0..self.n_states() {
            for s in 0..self.n_symbols {
                let to = self.delta[q * self.n_symbols + s];
                if to != UNSET {
                    n.add_transition(StateId(q as u32), SymbolId(s as u32), to);
                }
            }
        }
        n
    }

    // ---- Common language constructors ----------------------------------

    /// The DFA accepting every string of `Σ*` (the `[*]` constraint of
    /// simple s-projectors).
    pub fn universal(n_symbols: usize) -> Self {
        let mut d = Self::new(n_symbols);
        d.add_sink_state(true);
        d
    }

    /// The DFA accepting no string.
    pub fn empty_language(n_symbols: usize) -> Self {
        let mut d = Self::new(n_symbols);
        d.add_sink_state(false);
        d
    }

    /// The DFA accepting only the empty string.
    pub fn epsilon_only(n_symbols: usize) -> Self {
        let mut d = Self::new(n_symbols);
        let ok = d.add_state(true);
        let dead = d.add_sink_state(false);
        for s in 0..n_symbols {
            d.set_transition(ok, SymbolId(s as u32), dead);
        }
        d
    }

    /// The DFA accepting exactly `word`.
    pub fn word(n_symbols: usize, word: &[SymbolId]) -> Self {
        let mut d = Self::new(n_symbols);
        let states: Vec<StateId> = (0..=word.len())
            .map(|i| d.add_state(i == word.len()))
            .collect();
        let dead = d.add_sink_state(false);
        for (i, q) in states.iter().enumerate() {
            for s in 0..n_symbols {
                let sym = SymbolId(s as u32);
                let to = if i < word.len() && word[i] == sym {
                    states[i + 1]
                } else {
                    dead
                };
                d.set_transition(*q, sym, to);
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// DFA over {a, b} accepting strings with an even number of `a`s.
    fn even_as() -> Dfa {
        let mut d = Dfa::new(2);
        let even = d.add_state(true);
        let odd = d.add_state(false);
        let (a, b) = (SymbolId(0), SymbolId(1));
        d.set_transition(even, a, odd);
        d.set_transition(even, b, even);
        d.set_transition(odd, a, even);
        d.set_transition(odd, b, odd);
        d
    }

    #[test]
    fn accepts_even_as() {
        let d = even_as();
        let (a, b) = (SymbolId(0), SymbolId(1));
        assert!(d.accepts(&[]));
        assert!(d.accepts(&[a, a]));
        assert!(d.accepts(&[b, a, b, a]));
        assert!(!d.accepts(&[a]));
        assert!(!d.accepts(&[a, b, b]));
    }

    #[test]
    fn validate_catches_incomplete() {
        let mut d = Dfa::new(2);
        let q = d.add_state(true);
        d.set_transition(q, SymbolId(0), q);
        assert!(matches!(
            d.validate(),
            Err(AutomataError::NotDeterministic { symbol: 1, .. })
        ));
        d.set_transition(q, SymbolId(1), q);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn universal_and_empty_and_epsilon() {
        let u = Dfa::universal(3);
        let e = Dfa::empty_language(3);
        let eps = Dfa::epsilon_only(3);
        let s = [SymbolId(0), SymbolId(2)];
        assert!(u.accepts(&s) && u.accepts(&[]));
        assert!(!e.accepts(&s) && !e.accepts(&[]));
        assert!(eps.accepts(&[]) && !eps.accepts(&s) && !eps.accepts(&[SymbolId(1)]));
    }

    #[test]
    fn word_dfa_accepts_only_the_word() {
        let w = [SymbolId(1), SymbolId(0), SymbolId(1)];
        let d = Dfa::word(2, &w);
        assert!(d.accepts(&w));
        assert!(!d.accepts(&[]));
        assert!(!d.accepts(&w[..2]));
        assert!(!d.accepts(&[SymbolId(1), SymbolId(0), SymbolId(1), SymbolId(0)]));
        assert!(!d.accepts(&[SymbolId(0), SymbolId(0), SymbolId(1)]));
        assert!(d.validate().is_ok());
    }

    #[test]
    fn to_nfa_preserves_language() {
        let d = even_as();
        let n = d.to_nfa();
        assert!(n.is_deterministic());
        let (a, b) = (SymbolId(0), SymbolId(1));
        for s in [
            vec![],
            vec![a],
            vec![a, a],
            vec![b, a, a, b],
            vec![a, b, a, a],
        ] {
            assert_eq!(d.accepts(&s), n.accepts(&s), "mismatch on {s:?}");
        }
    }
}
