//! Constructions on automata: determinization, boolean combinations,
//! concatenation, trimming, emptiness, and minimization.
//!
//! Two pieces deserve a note:
//!
//! * [`Determinizer`] performs *on-the-fly* subset construction. The query
//!   engine uses it for Theorem 5.5 (s-projector confidence), where only
//!   the subsets actually reachable while scanning the Markov sequence are
//!   materialized — this is what turns the naive `2^{|Q|}` blow-up into the
//!   paper's `|Q_B|²·4^{|Q_E|}`-style bound without special-casing.
//! * [`concat_nfa`] builds the concatenation of two epsilon-free NFAs
//!   without introducing epsilon transitions, which keeps the engine's DP
//!   layers aligned with Markov-sequence positions.

use std::collections::HashMap;

use crate::alphabet::SymbolId;
use crate::bitset::BitSet;
use crate::dfa::Dfa;
use crate::error::AutomataError;
use crate::nfa::{Nfa, StateId};

// ---------------------------------------------------------------------------
// Determinization
// ---------------------------------------------------------------------------

/// The NFA-free state of an on-the-fly subset construction: interned
/// subsets, their dense ids, and the cached transition table.
///
/// [`Determinizer`] wraps this with a borrowed NFA for the common case; a
/// consumer that *owns* its NFA (e.g. a long-lived streaming monitor)
/// holds a `DetCore` beside the automaton and passes `&Nfa` per call —
/// avoiding the self-referential borrow a `Determinizer<'a>` field would
/// force. Both produce identical subset ids: `{q0}` is id `0` and new
/// subsets are interned densely in discovery order, so reductions that
/// order by id are bit-reproducible across either form.
pub struct DetCore {
    accepting: BitSet,
    subsets: Vec<BitSet>,
    ids: HashMap<BitSet, usize>,
    /// Cached transitions: `trans[id * n_symbols + sym]`, `usize::MAX` = not
    /// yet computed.
    trans: Vec<usize>,
    n_symbols: usize,
}

impl DetCore {
    /// Starts a subset construction for `nfa`. Every later call must pass
    /// the same automaton.
    pub fn new(nfa: &Nfa) -> Self {
        let init = BitSet::singleton(nfa.n_states().max(1), nfa.initial().index());
        let mut ids = HashMap::new();
        ids.insert(init.clone(), 0);
        Self {
            accepting: nfa.accepting_set(),
            subsets: vec![init],
            ids,
            trans: vec![usize::MAX; nfa.n_symbols()],
            n_symbols: nfa.n_symbols(),
        }
    }

    /// The id of the initial subset `{q0}`.
    pub fn initial(&self) -> usize {
        0
    }

    /// Number of subset states materialized so far.
    pub fn n_materialized(&self) -> usize {
        self.subsets.len()
    }

    /// The subset of NFA states behind a determinized state.
    pub fn subset(&self, id: usize) -> &BitSet {
        &self.subsets[id]
    }

    /// Whether the determinized state is accepting (its subset contains an
    /// accepting NFA state).
    pub fn is_accepting(&self, id: usize) -> bool {
        self.subsets[id].intersects(&self.accepting)
    }

    /// Whether the determinized state is the dead (empty) subset.
    pub fn is_dead(&self, id: usize) -> bool {
        self.subsets[id].is_empty()
    }

    /// The successor of subset-state `id` under `symbol`. `nfa` must be
    /// the automaton this core was created from.
    pub fn step(&mut self, nfa: &Nfa, id: usize, symbol: SymbolId) -> usize {
        let slot = id * self.n_symbols + symbol.index();
        let cached = self.trans[slot];
        if cached != usize::MAX {
            return cached;
        }
        let next = nfa.step_set(&self.subsets[id], symbol);
        let next_id = match self.ids.get(&next) {
            Some(&i) => i,
            None => {
                let i = self.subsets.len();
                self.ids.insert(next.clone(), i);
                self.subsets.push(next);
                self.trans.extend((0..self.n_symbols).map(|_| usize::MAX));
                i
            }
        };
        self.trans[slot] = next_id;
        next_id
    }

    /// Interns `subset` exactly as [`DetCore::step`] would on first
    /// discovery, returning its dense id (existing subsets return their
    /// original id). Checkpoint resume uses this to replay a fold's
    /// discovery order: re-interning the serialized subsets in id order
    /// rebuilds identical ids, so reductions that order by id stay
    /// bit-reproducible across suspend/resume. The transition cache is
    /// left cold — it refills deterministically on demand.
    pub fn intern(&mut self, subset: BitSet) -> usize {
        match self.ids.get(&subset) {
            Some(&i) => i,
            None => {
                let i = self.subsets.len();
                self.ids.insert(subset.clone(), i);
                self.subsets.push(subset);
                self.trans.extend((0..self.n_symbols).map(|_| usize::MAX));
                i
            }
        }
    }
}

/// On-the-fly subset construction over an [`Nfa`].
///
/// Determinized states are interned lazily: [`Determinizer::step`] computes
/// (and caches) the successor of a subset-state under a symbol. Subset
/// states are identified by dense `usize` ids; id `0` is the initial subset
/// `{q0}`. A thin borrow-carrying wrapper around [`DetCore`].
pub struct Determinizer<'a> {
    nfa: &'a Nfa,
    core: DetCore,
}

impl<'a> Determinizer<'a> {
    /// Starts determinizing `nfa`.
    pub fn new(nfa: &'a Nfa) -> Self {
        Self {
            core: DetCore::new(nfa),
            nfa,
        }
    }

    /// The id of the initial subset `{q0}`.
    pub fn initial(&self) -> usize {
        self.core.initial()
    }

    /// Number of subset states materialized so far.
    pub fn n_materialized(&self) -> usize {
        self.core.n_materialized()
    }

    /// The subset of NFA states behind a determinized state.
    pub fn subset(&self, id: usize) -> &BitSet {
        self.core.subset(id)
    }

    /// Whether the determinized state is accepting (its subset contains an
    /// accepting NFA state).
    pub fn is_accepting(&self, id: usize) -> bool {
        self.core.is_accepting(id)
    }

    /// Whether the determinized state is the dead (empty) subset.
    pub fn is_dead(&self, id: usize) -> bool {
        self.core.is_dead(id)
    }

    /// The successor of subset-state `id` under `symbol`.
    pub fn step(&mut self, id: usize, symbol: SymbolId) -> usize {
        self.core.step(self.nfa, id, symbol)
    }
}

/// Eager subset construction: the complete DFA for `L(nfa)`.
pub fn determinize(nfa: &Nfa) -> Dfa {
    let mut det = Determinizer::new(nfa);
    let mut dfa = Dfa::new(nfa.n_symbols());
    // Subset ids are discovered in BFS order and coincide with DFA state
    // ids because Determinizer interns subsets densely.
    let mut frontier = vec![0usize];
    dfa.add_state(det.is_accepting(0));
    let mut known = 1usize;
    while let Some(id) = frontier.pop() {
        for s in 0..nfa.n_symbols() {
            let sym = SymbolId(s as u32);
            let to = det.step(id, sym);
            while to >= known {
                dfa.add_state(det.is_accepting(known));
                frontier.push(known);
                known += 1;
            }
            dfa.set_transition(StateId(id as u32), sym, StateId(to as u32));
        }
    }
    dfa
}

// ---------------------------------------------------------------------------
// Boolean combinations of DFAs
// ---------------------------------------------------------------------------

/// How to combine acceptance in a [`product`] construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoolOp {
    /// Intersection of languages.
    And,
    /// Union of languages.
    Or,
    /// Symmetric difference (useful for equivalence checking).
    Xor,
}

/// The product DFA of `left` and `right`, accepting by `op`.
pub fn product(left: &Dfa, right: &Dfa, op: BoolOp) -> Result<Dfa, AutomataError> {
    if left.n_symbols() != right.n_symbols() {
        return Err(AutomataError::AlphabetMismatch {
            left: left.n_symbols(),
            right: right.n_symbols(),
        });
    }
    let (nl, nr) = (left.n_states(), right.n_states());
    let mut d = Dfa::new(left.n_symbols());
    for ql in 0..nl {
        for qr in 0..nr {
            let (al, ar) = (
                left.is_accepting(StateId(ql as u32)),
                right.is_accepting(StateId(qr as u32)),
            );
            let acc = match op {
                BoolOp::And => al && ar,
                BoolOp::Or => al || ar,
                BoolOp::Xor => al != ar,
            };
            d.add_state(acc);
        }
    }
    for ql in 0..nl {
        for qr in 0..nr {
            let from = StateId((ql * nr + qr) as u32);
            for s in 0..left.n_symbols() {
                let sym = SymbolId(s as u32);
                let tl = left.step(StateId(ql as u32), sym).index();
                let tr = right.step(StateId(qr as u32), sym).index();
                d.set_transition(from, sym, StateId((tl * nr + tr) as u32));
            }
        }
    }
    d.set_initial(StateId(
        (left.initial().index() * nr + right.initial().index()) as u32,
    ));
    Ok(d)
}

/// The complement DFA (complete DFAs only, so this is just flipping the
/// accepting set).
pub fn complement(dfa: &Dfa) -> Dfa {
    let mut d = dfa.clone();
    for q in 0..d.n_states() {
        let id = StateId(q as u32);
        let acc = d.is_accepting(id);
        d.set_accepting(id, !acc);
    }
    d
}

/// Whether two DFAs accept the same language (via emptiness of the XOR
/// product).
pub fn equivalent(left: &Dfa, right: &Dfa) -> Result<bool, AutomataError> {
    let xor = product(left, right, BoolOp::Xor)?;
    Ok(is_empty_dfa(&xor))
}

/// Whether `L(dfa)` is empty.
pub fn is_empty_dfa(dfa: &Dfa) -> bool {
    // BFS from the initial state looking for an accepting state.
    let mut seen = vec![false; dfa.n_states()];
    let mut stack = vec![dfa.initial()];
    seen[dfa.initial().index()] = true;
    while let Some(q) = stack.pop() {
        if dfa.is_accepting(q) {
            return false;
        }
        for s in 0..dfa.n_symbols() {
            let to = dfa.step(q, SymbolId(s as u32));
            if !seen[to.index()] {
                seen[to.index()] = true;
                stack.push(to);
            }
        }
    }
    true
}

/// Whether `L(nfa)` is empty.
pub fn is_empty_nfa(nfa: &Nfa) -> bool {
    let mut seen = vec![false; nfa.n_states()];
    let mut stack = vec![nfa.initial()];
    if nfa.n_states() == 0 {
        return true;
    }
    seen[nfa.initial().index()] = true;
    while let Some(q) = stack.pop() {
        if nfa.is_accepting(q) {
            return false;
        }
        for s in 0..nfa.n_symbols() {
            for &to in nfa.successors(q, SymbolId(s as u32)) {
                if !seen[to.index()] {
                    seen[to.index()] = true;
                    stack.push(to);
                }
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// NFA constructions
// ---------------------------------------------------------------------------

/// Concatenation `L(first)·L(second)` as an epsilon-free NFA.
///
/// States are the disjoint union. Every transition of `first` that enters
/// an accepting state of `first` is duplicated to also enter (a copy of)
/// `second`'s initial state — i.e. we may "hand over" exactly when a prefix
/// of the input lies in `L(first)`. If `ε ∈ L(first)`, the combined initial
/// state is `second`'s behaviour merged into `first`'s initial state.
pub fn concat_nfa(first: &Nfa, second: &Nfa) -> Result<Nfa, AutomataError> {
    if first.n_symbols() != second.n_symbols() {
        return Err(AutomataError::AlphabetMismatch {
            left: first.n_symbols(),
            right: second.n_symbols(),
        });
    }
    let k = first.n_symbols();
    let eps_in_second = second.is_accepting(second.initial());
    let mut out = Nfa::new(k);
    // First block: accepting only if the second machine accepts ε and the
    // first state is accepting (a split right after this prefix).
    for q in 0..first.n_states() {
        out.add_state(eps_in_second && first.is_accepting(StateId(q as u32)));
    }
    // Second block.
    let off = first.n_states() as u32;
    for q in 0..second.n_states() {
        out.add_state(second.is_accepting(StateId(q as u32)));
    }
    out.set_initial(first.initial());
    for (from, sym, to) in first.transitions() {
        out.add_transition(from, sym, to);
    }
    for (from, sym, to) in second.transitions() {
        out.add_transition(StateId(from.0 + off), sym, StateId(to.0 + off));
    }
    // Hand-over edges: from any accepting state q of `first` (the prefix
    // ending at q is in L(first)), reading symbol s can also act as the
    // first symbol of the second machine. ε ∈ L(first) is the q = initial
    // case of the same rule.
    for q in 0..first.n_states() {
        let qs = StateId(q as u32);
        if !first.is_accepting(qs) {
            continue;
        }
        for s in 0..k {
            let sym = SymbolId(s as u32);
            for &to in second.successors(second.initial(), sym) {
                out.add_transition(qs, sym, StateId(to.0 + off));
            }
        }
    }
    Ok(out)
}

/// Union `L(first) ∪ L(second)` as an epsilon-free NFA (fresh initial state
/// simulating both initial states).
pub fn union_nfa(first: &Nfa, second: &Nfa) -> Result<Nfa, AutomataError> {
    if first.n_symbols() != second.n_symbols() {
        return Err(AutomataError::AlphabetMismatch {
            left: first.n_symbols(),
            right: second.n_symbols(),
        });
    }
    let k = first.n_symbols();
    let mut out = Nfa::new(k);
    let init_acc = first.is_accepting(first.initial()) || second.is_accepting(second.initial());
    let init = out.add_state(init_acc);
    let off1 = 1u32;
    for q in 0..first.n_states() {
        out.add_state(first.is_accepting(StateId(q as u32)));
    }
    let off2 = 1 + first.n_states() as u32;
    for q in 0..second.n_states() {
        out.add_state(second.is_accepting(StateId(q as u32)));
    }
    out.set_initial(init);
    for (from, sym, to) in first.transitions() {
        out.add_transition(StateId(from.0 + off1), sym, StateId(to.0 + off1));
    }
    for (from, sym, to) in second.transitions() {
        out.add_transition(StateId(from.0 + off2), sym, StateId(to.0 + off2));
    }
    for s in 0..k {
        let sym = SymbolId(s as u32);
        for &to in first.successors(first.initial(), sym) {
            out.add_transition(init, sym, StateId(to.0 + off1));
        }
        for &to in second.successors(second.initial(), sym) {
            out.add_transition(init, sym, StateId(to.0 + off2));
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Minimization (Moore's algorithm)
// ---------------------------------------------------------------------------

/// Minimizes a complete DFA with Moore's partition-refinement algorithm.
///
/// Unreachable states are dropped first. `O(n² |Σ|)` — fine for the query
/// automata this engine deals with (constraint DFAs are small).
pub fn minimize(dfa: &Dfa) -> Dfa {
    // 1. Keep only reachable states.
    let mut reach = vec![false; dfa.n_states()];
    let mut stack = vec![dfa.initial()];
    reach[dfa.initial().index()] = true;
    while let Some(q) = stack.pop() {
        for s in 0..dfa.n_symbols() {
            let to = dfa.step(q, SymbolId(s as u32));
            if !reach[to.index()] {
                reach[to.index()] = true;
                stack.push(to);
            }
        }
    }
    let reachable: Vec<usize> = (0..dfa.n_states()).filter(|&q| reach[q]).collect();
    let dense: HashMap<usize, usize> = reachable.iter().enumerate().map(|(i, &q)| (q, i)).collect();

    // 2. Moore refinement over reachable states.
    let n = reachable.len();
    let mut class: Vec<usize> = reachable
        .iter()
        .map(|&q| usize::from(dfa.is_accepting(StateId(q as u32))))
        .collect();
    loop {
        // Signature of a state: (class, classes of successors).
        let mut sig_ids: HashMap<Vec<usize>, usize> = HashMap::new();
        let mut next_class = vec![0usize; n];
        for i in 0..n {
            let q = reachable[i];
            let mut sig = Vec::with_capacity(dfa.n_symbols() + 1);
            sig.push(class[i]);
            for s in 0..dfa.n_symbols() {
                let to = dfa.step(StateId(q as u32), SymbolId(s as u32));
                sig.push(class[dense[&to.index()]]);
            }
            let next_id = sig_ids.len();
            next_class[i] = *sig_ids.entry(sig).or_insert(next_id);
        }
        if next_class == class {
            break;
        }
        class = next_class;
    }

    // 3. Build the quotient.
    let n_classes = class.iter().copied().max().map_or(0, |m| m + 1);
    let mut out = Dfa::new(dfa.n_symbols());
    let mut rep: Vec<Option<usize>> = vec![None; n_classes];
    for i in 0..n {
        if rep[class[i]].is_none() {
            rep[class[i]] = Some(reachable[i]);
        }
    }
    for c in 0..n_classes {
        let q = rep[c].expect("every class has a representative");
        out.add_state(dfa.is_accepting(StateId(q as u32)));
    }
    for c in 0..n_classes {
        let q = rep[c].expect("every class has a representative");
        for s in 0..dfa.n_symbols() {
            let to = dfa.step(StateId(q as u32), SymbolId(s as u32));
            let to_class = class[dense[&to.index()]];
            out.set_transition(
                StateId(c as u32),
                SymbolId(s as u32),
                StateId(to_class as u32),
            );
        }
    }
    out.set_initial(StateId(class[dense[&dfa.initial().index()]] as u32));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> SymbolId {
        SymbolId(i)
    }

    /// NFA over {a,b}: strings ending in "ab".
    fn ends_ab() -> Nfa {
        let mut n = Nfa::new(2);
        let q0 = n.add_state(false);
        let q1 = n.add_state(false);
        let q2 = n.add_state(true);
        n.add_transition(q0, sym(0), q0);
        n.add_transition(q0, sym(1), q0);
        n.add_transition(q0, sym(0), q1);
        n.add_transition(q1, sym(1), q2);
        n
    }

    fn all_strings(n_symbols: usize, max_len: usize) -> Vec<Vec<SymbolId>> {
        let mut out = vec![vec![]];
        let mut layer: Vec<Vec<SymbolId>> = vec![vec![]];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for s in &layer {
                for c in 0..n_symbols {
                    let mut t = s.clone();
                    t.push(sym(c as u32));
                    next.push(t);
                }
            }
            out.extend(next.iter().cloned());
            layer = next;
        }
        out
    }

    #[test]
    fn determinize_preserves_language() {
        let n = ends_ab();
        let d = determinize(&n);
        assert!(d.validate().is_ok());
        for s in all_strings(2, 6) {
            assert_eq!(n.accepts(&s), d.accepts(&s), "mismatch on {s:?}");
        }
    }

    #[test]
    fn on_the_fly_matches_eager() {
        let n = ends_ab();
        let d = determinize(&n);
        let mut det = Determinizer::new(&n);
        for s in all_strings(2, 5) {
            let mut id = det.initial();
            for &c in &s {
                id = det.step(id, c);
            }
            assert_eq!(det.is_accepting(id), d.accepts(&s), "mismatch on {s:?}");
        }
    }

    /// A `DetCore` driven directly must intern the exact same subset ids,
    /// in the same discovery order, as the borrowing `Determinizer`.
    #[test]
    fn det_core_ids_match_determinizer() {
        let n = ends_ab();
        let mut wrapper = Determinizer::new(&n);
        let mut core = DetCore::new(&n);
        for s in all_strings(2, 5) {
            let mut a = wrapper.initial();
            let mut b = core.initial();
            for &c in &s {
                a = wrapper.step(a, c);
                b = core.step(&n, b, c);
                assert_eq!(a, b, "subset id diverged on {s:?}");
            }
            assert_eq!(wrapper.is_accepting(a), core.is_accepting(b));
            assert_eq!(wrapper.is_dead(a), core.is_dead(b));
        }
        assert_eq!(wrapper.n_materialized(), core.n_materialized());
    }

    #[test]
    fn product_and_or_xor() {
        let ends = determinize(&ends_ab());
        // "contains b" DFA
        let mut has_b = Dfa::new(2);
        let q0 = has_b.add_state(false);
        let q1 = has_b.add_sink_state(true);
        has_b.set_transition(q0, sym(0), q0);
        has_b.set_transition(q0, sym(1), q1);

        let and = product(&ends, &has_b, BoolOp::And).unwrap();
        let or = product(&ends, &has_b, BoolOp::Or).unwrap();
        let xor = product(&ends, &has_b, BoolOp::Xor).unwrap();
        for s in all_strings(2, 5) {
            let (l, r) = (ends.accepts(&s), has_b.accepts(&s));
            assert_eq!(and.accepts(&s), l && r);
            assert_eq!(or.accepts(&s), l || r);
            assert_eq!(xor.accepts(&s), l != r);
        }
    }

    #[test]
    fn complement_flips_membership() {
        let d = determinize(&ends_ab());
        let c = complement(&d);
        for s in all_strings(2, 5) {
            assert_eq!(d.accepts(&s), !c.accepts(&s));
        }
    }

    #[test]
    fn emptiness_checks() {
        assert!(is_empty_dfa(&Dfa::empty_language(2)));
        assert!(!is_empty_dfa(&Dfa::universal(2)));
        assert!(!is_empty_nfa(&ends_ab()));
        let mut dead = Nfa::new(2);
        dead.add_state(false);
        assert!(is_empty_nfa(&dead));
    }

    #[test]
    fn concat_word_languages() {
        // L1 = {ab}, L2 = {b, bb}
        let l1 = Dfa::word(2, &[sym(0), sym(1)]).to_nfa();
        let mut l2 = Nfa::new(2);
        let p0 = l2.add_state(false);
        let p1 = l2.add_state(true);
        let p2 = l2.add_state(true);
        l2.add_transition(p0, sym(1), p1);
        l2.add_transition(p1, sym(1), p2);
        let cat = concat_nfa(&l1, &l2).unwrap();
        for s in all_strings(2, 5) {
            let expect = s == [sym(0), sym(1), sym(1)] || s == [sym(0), sym(1), sym(1), sym(1)];
            assert_eq!(cat.accepts(&s), expect, "mismatch on {s:?}");
        }
    }

    #[test]
    fn concat_with_epsilon_languages() {
        // L1 = {ε, a}, L2 = {b}
        let mut l1 = Nfa::new(2);
        let a0 = l1.add_state(true);
        let a1 = l1.add_state(true);
        l1.add_transition(a0, sym(0), a1);
        let l2 = Dfa::word(2, &[sym(1)]).to_nfa();
        let cat = concat_nfa(&l1, &l2).unwrap();
        for s in all_strings(2, 4) {
            let expect = s == [sym(1)] || s == [sym(0), sym(1)];
            assert_eq!(cat.accepts(&s), expect, "mismatch on {s:?}");
        }
        // L2 = {ε, b}: concat = {ε, a, b, ab}
        let mut l2e = Nfa::new(2);
        let b0 = l2e.add_state(true);
        let b1 = l2e.add_state(true);
        l2e.add_transition(b0, sym(1), b1);
        let cat2 = concat_nfa(&l1, &l2e).unwrap();
        for s in all_strings(2, 4) {
            let expect = s.is_empty() || s == [sym(0)] || s == [sym(1)] || s == [sym(0), sym(1)];
            assert_eq!(cat2.accepts(&s), expect, "mismatch on {s:?}");
        }
    }

    #[test]
    fn union_of_word_languages() {
        let l1 = Dfa::word(2, &[sym(0)]).to_nfa();
        let l2 = Dfa::word(2, &[sym(1), sym(1)]).to_nfa();
        let u = union_nfa(&l1, &l2).unwrap();
        for s in all_strings(2, 4) {
            let expect = s == [sym(0)] || s == [sym(1), sym(1)];
            assert_eq!(u.accepts(&s), expect, "mismatch on {s:?}");
        }
    }

    #[test]
    fn minimize_produces_equivalent_smaller_dfa() {
        // Build a redundant DFA for "even number of a's" with duplicated states.
        let mut d = Dfa::new(2);
        let e0 = d.add_state(true);
        let o0 = d.add_state(false);
        let e1 = d.add_state(true);
        let o1 = d.add_state(false);
        let unreachable = d.add_sink_state(true);
        let _ = unreachable;
        for (q, (on_a, on_b)) in [
            (e0, (o1, e1)),
            (o0, (e1, o1)),
            (e1, (o0, e0)),
            (o1, (e0, o0)),
        ] {
            d.set_transition(q, sym(0), on_a);
            d.set_transition(q, sym(1), on_b);
        }
        let m = minimize(&d);
        assert_eq!(m.n_states(), 2);
        assert!(equivalent(&d, &m).unwrap());
    }

    #[test]
    fn alphabet_mismatch_is_reported() {
        let a = Dfa::universal(2);
        let b = Dfa::universal(3);
        assert!(matches!(
            product(&a, &b, BoolOp::And),
            Err(AutomataError::AlphabetMismatch { .. })
        ));
    }
}
