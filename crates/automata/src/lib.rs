#![warn(missing_docs)]
// Index-based loops are the clearest way to write the layered DP kernels
// and matrix scans in this codebase; the clippy suggestion (iterators with
// enumerate/zip) obscures the (position, node, state) indexing.
#![allow(clippy::needless_range_loop)]

//! Finite-automata toolkit for `transmark`.
//!
//! The paper ("Transducing Markov Sequences", PODS 2010) builds its query
//! language on nondeterministic finite automata (NFAs) without
//! epsilon-transitions: a transducer is an NFA plus an output function, and
//! substring projectors are triples of DFAs. This crate provides exactly
//! that automaton model, together with the constructions the query engine
//! needs:
//!
//! * [`Alphabet`] — interned symbol tables shared between Markov sequences
//!   and automata (the paper deliberately uses the same `Σ` for both).
//! * [`Nfa`] and [`Dfa`] — dense transition tables, single initial state,
//!   no epsilon transitions (matching §2.1 of the paper).
//! * [`regex`] — a compiler from a Perl-ish regular-expression subset (the
//!   syntax used by the paper's §5 examples, e.g. `".*Name:"`,
//!   `"[a-zA-Z,]+"`) into an [`Nfa`].
//! * [`ops`] — products, complement, concatenation, reversal, trimming,
//!   emptiness, and both eager and on-the-fly subset construction.
//! * [`bitset`] — a small fixed-capacity bit set used as the subset key in
//!   determinization (also reused by the query engine's subset DPs).
//!
//! Everything here is deterministic and allocation-conscious: transition
//! tables are flat `Vec`s indexed by `state * |Σ| + symbol`.

pub mod alphabet;
pub mod bitset;
pub mod dfa;
pub mod error;
pub mod fingerprint;
pub mod nfa;
pub mod ops;
pub mod regex;

pub use alphabet::{Alphabet, SymbolId};
pub use bitset::BitSet;
pub use dfa::Dfa;
pub use error::AutomataError;
pub use fingerprint::Fingerprinter;
pub use nfa::{Nfa, StateId};
