//! Interned symbol tables.
//!
//! The paper uses the same finite set `Σ` both as the state-node set of a
//! Markov sequence and as the input alphabet of the query automata
//! (footnote 4). An [`Alphabet`] is the shared symbol table; a [`SymbolId`]
//! is a dense index into it, so transition matrices and automaton tables
//! can be flat arrays.

use std::collections::HashMap;
use std::fmt;

/// A dense index identifying a symbol within an [`Alphabet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(pub u32);

impl SymbolId {
    /// The index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An interned, ordered set of named symbols.
///
/// Symbols keep the order in which they were added; `SymbolId(i)` refers to
/// the `i`-th added symbol. Names are unique.
#[derive(Debug, Clone, Default)]
pub struct Alphabet {
    names: Vec<String>,
    index: HashMap<String, SymbolId>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an alphabet from an iterator of names. Duplicate names are
    /// collapsed to their first occurrence.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut a = Self::new();
        for n in names {
            a.intern(n.as_ref());
        }
        a
    }

    /// An alphabet whose symbols are the single characters of `chars`, in
    /// order. Convenient for text-like examples.
    pub fn of_chars(chars: &str) -> Self {
        Self::from_names(chars.chars().map(|c| c.to_string()))
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = SymbolId(u32::try_from(self.names.len()).expect("alphabet too large"));
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up a symbol by name.
    pub fn get(&self, name: &str) -> Option<SymbolId> {
        self.index.get(name).copied()
    }

    /// Looks up a symbol by name, panicking with a clear message if absent.
    /// Intended for tests and examples where the symbol is known to exist.
    pub fn sym(&self, name: &str) -> SymbolId {
        self.get(name)
            .unwrap_or_else(|| panic!("symbol {name:?} not in alphabet"))
    }

    /// The name of a symbol.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.names[id.index()]
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all symbol ids in order.
    pub fn ids(&self) -> impl Iterator<Item = SymbolId> + '_ {
        (0..self.names.len() as u32).map(SymbolId)
    }

    /// Iterates over `(id, name)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SymbolId(i as u32), n.as_str()))
    }

    /// Renders a string of symbols using their names, separated by
    /// `sep` (use `""` for character alphabets).
    pub fn render(&self, symbols: &[SymbolId], sep: &str) -> String {
        let mut out = String::new();
        for (i, s) in symbols.iter().enumerate() {
            if i > 0 {
                out.push_str(sep);
            }
            out.push_str(self.name(*s));
        }
        out
    }

    /// Parses a whitespace-separated list of names into symbol ids.
    pub fn parse(&self, text: &str) -> Option<Vec<SymbolId>> {
        text.split_whitespace().map(|w| self.get(w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        let x = a.intern("x");
        let y = a.intern("y");
        assert_eq!(a.intern("x"), x);
        assert_ne!(x, y);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn from_names_collapses_duplicates() {
        let a = Alphabet::from_names(["a", "b", "a", "c"]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.name(SymbolId(0)), "a");
        assert_eq!(a.name(SymbolId(2)), "c");
    }

    #[test]
    fn of_chars_builds_char_alphabet() {
        let a = Alphabet::of_chars("abc");
        assert_eq!(a.len(), 3);
        assert_eq!(a.sym("b"), SymbolId(1));
    }

    #[test]
    fn render_and_parse_round_trip() {
        let a = Alphabet::from_names(["r1a", "r1b", "la"]);
        let s = vec![a.sym("r1a"), a.sym("la"), a.sym("r1b")];
        assert_eq!(a.render(&s, " "), "r1a la r1b");
        assert_eq!(a.parse("r1a la r1b").unwrap(), s);
        assert!(a.parse("r1a bogus").is_none());
    }

    #[test]
    fn ids_iterates_in_order() {
        let a = Alphabet::from_names(["a", "b"]);
        let ids: Vec<_> = a.ids().collect();
        assert_eq!(ids, vec![SymbolId(0), SymbolId(1)]);
    }
}
