//! Error type shared by the automata constructors and the regex compiler.

use std::fmt;

/// Errors produced while building or combining automata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutomataError {
    /// A state id was out of range for the automaton it was used with.
    InvalidState {
        /// The offending state id.
        state: usize,
        /// The automaton's state count.
        n_states: usize,
    },
    /// A symbol id was out of range for the automaton's alphabet.
    InvalidSymbol {
        /// The offending symbol id.
        symbol: usize,
        /// The alphabet size.
        n_symbols: usize,
    },
    /// Two automata (or an automaton and a Markov sequence) were combined
    /// but their alphabets have different sizes.
    AlphabetMismatch {
        /// Alphabet size on the left/first object.
        left: usize,
        /// Alphabet size on the right/second object.
        right: usize,
    },
    /// The automaton is required to be deterministic (a complete DFA) but
    /// some `δ(q, s)` is not a singleton.
    NotDeterministic {
        /// The state whose transition violates determinism.
        state: usize,
        /// The symbol read.
        symbol: usize,
        /// How many successors `δ(state, symbol)` actually has.
        arity: usize,
    },
    /// The regular expression failed to parse.
    RegexParse {
        /// Byte offset of the failure in the pattern.
        position: usize,
        /// Human-readable description.
        message: String,
    },
    /// A regex character class or literal mentions a symbol that is not in
    /// the alphabet the expression is being compiled against.
    UnknownSymbol {
        /// The symbol name that failed to resolve.
        symbol: String,
    },
}

impl fmt::Display for AutomataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomataError::InvalidState { state, n_states } => {
                write!(
                    f,
                    "state {state} out of range (automaton has {n_states} states)"
                )
            }
            AutomataError::InvalidSymbol { symbol, n_symbols } => {
                write!(
                    f,
                    "symbol {symbol} out of range (alphabet has {n_symbols} symbols)"
                )
            }
            AutomataError::AlphabetMismatch { left, right } => {
                write!(f, "alphabet size mismatch: {left} vs {right}")
            }
            AutomataError::NotDeterministic {
                state,
                symbol,
                arity,
            } => write!(
                f,
                "automaton is not deterministic: delta({state}, {symbol}) has {arity} successors"
            ),
            AutomataError::RegexParse { position, message } => {
                write!(f, "regex parse error at byte {position}: {message}")
            }
            AutomataError::UnknownSymbol { symbol } => {
                write!(f, "symbol {symbol:?} is not in the alphabet")
            }
        }
    }
}

impl std::error::Error for AutomataError {}
