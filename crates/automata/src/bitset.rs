//! A small fixed-capacity bit set.
//!
//! Used as the canonical key for state subsets in determinization and in
//! the query engine's subset-construction dynamic programs (Theorem 4.8 of
//! the paper). The backing storage is a boxed `u64` slice so that a
//! `BitSet` can be hashed and compared cheaply as a map key.

use std::fmt;

/// A set of small integers backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitSet {
    words: Box<[u64]>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        let n_words = capacity.div_ceil(64).max(1);
        Self {
            words: vec![0u64; n_words].into_boxed_slice(),
            capacity,
        }
    }

    /// Creates a set containing a single value.
    pub fn singleton(capacity: usize, value: usize) -> Self {
        let mut s = Self::new(capacity);
        s.insert(value);
        s
    }

    /// Creates a set from an iterator of values.
    pub fn from_iter_with_capacity<I: IntoIterator<Item = usize>>(
        capacity: usize,
        values: I,
    ) -> Self {
        let mut s = Self::new(capacity);
        for v in values {
            s.insert(v);
        }
        s
    }

    /// The capacity the set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `value`. Panics if `value >= capacity`.
    #[inline]
    pub fn insert(&mut self, value: usize) {
        assert!(
            value < self.capacity,
            "bit {value} out of capacity {}",
            self.capacity
        );
        self.words[value / 64] |= 1u64 << (value % 64);
    }

    /// Removes `value` if present.
    #[inline]
    pub fn remove(&mut self, value: usize) {
        if value < self.capacity {
            self.words[value / 64] &= !(1u64 << (value % 64));
        }
    }

    /// Whether `value` is in the set.
    #[inline]
    pub fn contains(&self, value: usize) -> bool {
        value < self.capacity && (self.words[value / 64] >> (value % 64)) & 1 == 1
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in self.words.iter_mut() {
            *w = 0;
        }
    }

    /// In-place union with `other`. Panics on capacity mismatch.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Whether `self` and `other` share an element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the elements of a [`BitSet`].
pub struct BitSetIter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert_eq!(s.len(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_yields_sorted_elements() {
        let s = BitSet::from_iter_with_capacity(200, [199, 3, 64, 65, 0]);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![0, 3, 64, 65, 199]);
    }

    #[test]
    fn union_and_intersects() {
        let mut a = BitSet::from_iter_with_capacity(70, [1, 65]);
        let b = BitSet::from_iter_with_capacity(70, [2, 65]);
        assert!(a.intersects(&b));
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 65]);
        let c = BitSet::from_iter_with_capacity(70, [3]);
        assert!(!b.intersects(&c));
    }

    #[test]
    fn equality_is_by_contents() {
        let a = BitSet::from_iter_with_capacity(100, [5, 50]);
        let b = BitSet::from_iter_with_capacity(100, [50, 5]);
        assert_eq!(a, b);
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(8);
        s.insert(8);
    }

    #[test]
    fn empty_capacity_is_usable() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
