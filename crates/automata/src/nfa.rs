//! Nondeterministic finite automata without epsilon transitions.
//!
//! This matches §2.1 of the paper: an NFA is `⟨Σ, Q, q0, F, δ⟩` with
//! `δ : Q × Σ → 2^Q`, a single initial state, and no empty transitions.
//! A *run* on `s₁⋯sₙ` assigns a state to every position; the automaton
//! accepts if some run ends in an accepting state. The empty string is
//! accepted iff the initial state is accepting.

use crate::alphabet::SymbolId;
use crate::bitset::BitSet;
use crate::error::AutomataError;

/// A dense index identifying a state of an automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// The index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An epsilon-free NFA over a dense alphabet `0..n_symbols`.
///
/// Transition targets are kept sorted and deduplicated, so
/// [`Nfa::successors`] returns a canonical slice.
#[derive(Debug, Clone)]
pub struct Nfa {
    n_symbols: usize,
    initial: StateId,
    accepting: Vec<bool>,
    /// Flat table indexed by `state * n_symbols + symbol`.
    delta: Vec<Vec<StateId>>,
}

impl Nfa {
    /// Creates an NFA with no states over an alphabet of `n_symbols`
    /// symbols. The first added state becomes the initial state unless
    /// [`Nfa::set_initial`] is called.
    pub fn new(n_symbols: usize) -> Self {
        Self {
            n_symbols,
            initial: StateId(0),
            accepting: Vec::new(),
            delta: Vec::new(),
        }
    }

    /// Adds a state and returns its id.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        let id = StateId(u32::try_from(self.accepting.len()).expect("too many states"));
        self.accepting.push(accepting);
        self.delta.extend((0..self.n_symbols).map(|_| Vec::new()));
        id
    }

    /// Sets the initial state.
    pub fn set_initial(&mut self, state: StateId) {
        assert!(
            state.index() < self.n_states(),
            "initial state out of range"
        );
        self.initial = state;
    }

    /// Marks or unmarks a state as accepting.
    pub fn set_accepting(&mut self, state: StateId, accepting: bool) {
        self.accepting[state.index()] = accepting;
    }

    /// Adds `to` to `δ(from, symbol)`. Duplicate insertions are collapsed.
    pub fn add_transition(&mut self, from: StateId, symbol: SymbolId, to: StateId) {
        assert!(from.index() < self.n_states(), "source state out of range");
        assert!(to.index() < self.n_states(), "target state out of range");
        assert!(symbol.index() < self.n_symbols, "symbol out of range");
        let targets = &mut self.delta[from.index() * self.n_symbols + symbol.index()];
        if let Err(pos) = targets.binary_search(&to) {
            targets.insert(pos, to);
        }
    }

    /// Number of states.
    #[inline]
    pub fn n_states(&self) -> usize {
        self.accepting.len()
    }

    /// Alphabet size.
    #[inline]
    pub fn n_symbols(&self) -> usize {
        self.n_symbols
    }

    /// The initial state.
    #[inline]
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Whether `state` is accepting.
    #[inline]
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state.index()]
    }

    /// The sorted successor states `δ(state, symbol)`.
    #[inline]
    pub fn successors(&self, state: StateId, symbol: SymbolId) -> &[StateId] {
        &self.delta[state.index() * self.n_symbols + symbol.index()]
    }

    /// Iterates over all transitions as `(from, symbol, to)` triples.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, SymbolId, StateId)> + '_ {
        (0..self.n_states()).flat_map(move |q| {
            (0..self.n_symbols).flat_map(move |s| {
                self.delta[q * self.n_symbols + s]
                    .iter()
                    .map(move |&to| (StateId(q as u32), SymbolId(s as u32), to))
            })
        })
    }

    /// Whether every `δ(q, s)` is a singleton (the paper's DFA condition).
    pub fn is_deterministic(&self) -> bool {
        self.delta.iter().all(|t| t.len() == 1)
    }

    /// Computes the set of states reachable from `set` by reading `symbol`.
    pub fn step_set(&self, set: &BitSet, symbol: SymbolId) -> BitSet {
        let mut out = BitSet::new(self.n_states());
        for q in set.iter() {
            for &to in self.successors(StateId(q as u32), symbol) {
                out.insert(to.index());
            }
        }
        out
    }

    /// The set of states reachable from the initial state by reading
    /// `string` (empty if the string cannot be read at all).
    pub fn reachable_after(&self, string: &[SymbolId]) -> BitSet {
        let mut set = BitSet::singleton(self.n_states().max(1), self.initial.index());
        for &s in string {
            set = self.step_set(&set, s);
            if set.is_empty() {
                break;
            }
        }
        set
    }

    /// Whether the automaton accepts `string`.
    pub fn accepts(&self, string: &[SymbolId]) -> bool {
        if self.n_states() == 0 {
            return false;
        }
        self.reachable_after(string)
            .iter()
            .any(|q| self.accepting[q])
    }

    /// The set of accepting state indices as a [`BitSet`].
    pub fn accepting_set(&self) -> BitSet {
        BitSet::from_iter_with_capacity(
            self.n_states().max(1),
            self.accepting
                .iter()
                .enumerate()
                .filter(|(_, &a)| a)
                .map(|(i, _)| i),
        )
    }

    /// Validates internal consistency (states and symbols in range).
    ///
    /// The builder methods enforce this already; `validate` is a cheap
    /// defensive check for automata produced by external constructors.
    pub fn validate(&self) -> Result<(), AutomataError> {
        if self.n_states() == 0 {
            return Err(AutomataError::InvalidState {
                state: 0,
                n_states: 0,
            });
        }
        if self.initial.index() >= self.n_states() {
            return Err(AutomataError::InvalidState {
                state: self.initial.index(),
                n_states: self.n_states(),
            });
        }
        for (q, _, to) in self.transitions() {
            if to.index() >= self.n_states() {
                return Err(AutomataError::InvalidState {
                    state: to.index(),
                    n_states: self.n_states(),
                });
            }
            let _ = q;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NFA over {a, b} accepting strings that contain "ab".
    fn contains_ab() -> Nfa {
        let mut n = Nfa::new(2);
        let q0 = n.add_state(false);
        let q1 = n.add_state(false);
        let q2 = n.add_state(true);
        let (a, b) = (SymbolId(0), SymbolId(1));
        n.add_transition(q0, a, q0);
        n.add_transition(q0, b, q0);
        n.add_transition(q0, a, q1);
        n.add_transition(q1, b, q2);
        n.add_transition(q2, a, q2);
        n.add_transition(q2, b, q2);
        n
    }

    #[test]
    fn accepts_contains_ab() {
        let n = contains_ab();
        let (a, b) = (SymbolId(0), SymbolId(1));
        assert!(n.accepts(&[a, b]));
        assert!(n.accepts(&[b, b, a, b, a]));
        assert!(!n.accepts(&[b, a]));
        assert!(!n.accepts(&[]));
        assert!(!n.accepts(&[a, a]));
    }

    #[test]
    fn empty_string_accepted_iff_initial_accepting() {
        let mut n = Nfa::new(1);
        let q0 = n.add_state(true);
        n.add_transition(q0, SymbolId(0), q0);
        assert!(n.accepts(&[]));
        n.set_accepting(q0, false);
        assert!(!n.accepts(&[]));
    }

    #[test]
    fn duplicate_transitions_collapse() {
        let mut n = Nfa::new(1);
        let q0 = n.add_state(false);
        let q1 = n.add_state(true);
        n.add_transition(q0, SymbolId(0), q1);
        n.add_transition(q0, SymbolId(0), q1);
        assert_eq!(n.successors(q0, SymbolId(0)), &[q1]);
    }

    #[test]
    fn successors_are_sorted() {
        let mut n = Nfa::new(1);
        let q0 = n.add_state(false);
        let q1 = n.add_state(false);
        let q2 = n.add_state(false);
        n.add_transition(q0, SymbolId(0), q2);
        n.add_transition(q0, SymbolId(0), q0);
        n.add_transition(q0, SymbolId(0), q1);
        assert_eq!(n.successors(q0, SymbolId(0)), &[q0, q1, q2]);
    }

    #[test]
    fn is_deterministic_detects_missing_and_multiple() {
        let mut n = Nfa::new(1);
        let q0 = n.add_state(true);
        assert!(!n.is_deterministic()); // no transition at all
        n.add_transition(q0, SymbolId(0), q0);
        assert!(n.is_deterministic());
        let q1 = n.add_state(false);
        n.add_transition(q0, SymbolId(0), q1);
        assert!(!n.is_deterministic()); // two successors
    }

    #[test]
    fn transitions_iterator_reports_all() {
        let n = contains_ab();
        assert_eq!(n.transitions().count(), 6);
    }

    #[test]
    fn dead_string_yields_empty_reach_set() {
        let mut n = Nfa::new(2);
        let q0 = n.add_state(false);
        let q1 = n.add_state(true);
        n.add_transition(q0, SymbolId(0), q1);
        // no transition on symbol 1 anywhere
        let set = n.reachable_after(&[SymbolId(1), SymbolId(0)]);
        assert!(set.is_empty());
        assert!(!n.accepts(&[SymbolId(1), SymbolId(0)]));
    }

    #[test]
    fn validate_accepts_builder_output() {
        assert!(contains_ab().validate().is_ok());
        assert!(Nfa::new(3).validate().is_err()); // zero states
    }
}
