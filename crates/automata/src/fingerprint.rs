//! Structural fingerprints for automata.
//!
//! A fingerprint is a deterministic 64-bit hash of an automaton's exact
//! structure (alphabet size, initial state, accepting set, transition
//! table). It is platform-independent — FNV-1a over a fixed little-endian
//! encoding, not `std::hash` (whose `Hasher` output is allowed to vary
//! between releases) — so it can key on-disk or cross-process caches.
//!
//! Fingerprints are *not* canonical forms: two automata accepting the same
//! language but built differently hash differently, and (as with any 64-bit
//! hash) distinct structures may collide. Callers that must distinguish
//! collisions (e.g. the plan cache in `transmark-store`) pair the
//! fingerprint with a full structural-equality check.

use crate::dfa::Dfa;
use crate::nfa::Nfa;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64-bit hasher with fixed-width integer encoding.
///
/// Every `write_*` method feeds a self-delimiting little-endian encoding,
/// so value sequences cannot alias each other across field boundaries as
/// long as callers write a fixed schema (length prefixes before
/// variable-length data).
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    state: u64,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprinter {
    /// Starts a fresh fingerprint.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u32` as 4 little-endian bytes.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` as a `u64` (so 32- and 64-bit builds agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Feeds a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[u8::from(v)]);
    }

    /// The fingerprint of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Nfa {
    /// A structural fingerprint of this NFA (see the module docs for the
    /// collision / canonicity caveats).
    pub fn fingerprint(&self) -> u64 {
        use crate::nfa::StateId;
        let mut fp = Fingerprinter::new();
        fp.write_bytes(b"nfa");
        fp.write_usize(self.n_symbols());
        fp.write_usize(self.n_states());
        fp.write_u32(self.initial().0);
        for q in 0..self.n_states() {
            fp.write_bool(self.is_accepting(StateId(q as u32)));
        }
        for (from, symbol, to) in self.transitions() {
            fp.write_u32(from.0);
            fp.write_u32(symbol.0);
            fp.write_u32(to.0);
        }
        fp.finish()
    }
}

impl Dfa {
    /// A structural fingerprint of this DFA (see the module docs for the
    /// collision / canonicity caveats).
    pub fn fingerprint(&self) -> u64 {
        use crate::alphabet::SymbolId;
        use crate::nfa::StateId;
        let mut fp = Fingerprinter::new();
        fp.write_bytes(b"dfa");
        fp.write_usize(self.n_symbols());
        fp.write_usize(self.n_states());
        fp.write_u32(self.initial().0);
        for q in 0..self.n_states() {
            let q = StateId(q as u32);
            fp.write_bool(self.is_accepting(q));
            for s in 0..self.n_symbols() {
                fp.write_u32(self.step(q, SymbolId(s as u32)).0);
            }
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::SymbolId;

    fn two_state_nfa(accepting_second: bool) -> Nfa {
        let mut n = Nfa::new(2);
        let a = n.add_state(false);
        let b = n.add_state(accepting_second);
        n.add_transition(a, SymbolId(0), b);
        n.add_transition(b, SymbolId(1), a);
        n
    }

    #[test]
    fn identical_structures_agree() {
        assert_eq!(
            two_state_nfa(true).fingerprint(),
            two_state_nfa(true).fingerprint()
        );
    }

    #[test]
    fn accepting_flip_changes_fingerprint() {
        assert_ne!(
            two_state_nfa(true).fingerprint(),
            two_state_nfa(false).fingerprint()
        );
    }

    #[test]
    fn transition_changes_fingerprint() {
        use crate::nfa::StateId;
        let base = two_state_nfa(true);
        let mut other = two_state_nfa(true);
        other.add_transition(StateId(0), SymbolId(1), StateId(1));
        assert_ne!(base.fingerprint(), other.fingerprint());
    }

    #[test]
    fn dfa_fingerprint_is_stable_and_structure_sensitive() {
        let mut d = Dfa::new(1);
        let s = d.add_sink_state(true);
        let mut d2 = Dfa::new(1);
        let s2 = d2.add_sink_state(false);
        let _ = (s, s2);
        assert_eq!(d.fingerprint(), d.clone().fingerprint());
        assert_ne!(d.fingerprint(), d2.fingerprint());
    }

    #[test]
    fn nfa_and_dfa_domains_are_separated() {
        // A 1-symbol, 1-state accepting sink in both representations must
        // not collide just because the encoded fields happen to match.
        let mut n = Nfa::new(1);
        let q = n.add_state(true);
        n.add_transition(q, SymbolId(0), q);
        let mut d = Dfa::new(1);
        d.add_sink_state(true);
        assert_ne!(n.fingerprint(), d.fingerprint());
    }
}
