//! A minimal JSON writer and parser for [`Snapshot`](crate::Snapshot)
//! serialization.
//!
//! The container is fully offline, so no serde: this module hand-rolls
//! exactly the subset snapshots need — objects, arrays, strings, and
//! non-negative integers (every metric value is a `u64`). The parser is
//! a plain recursive descent over that subset plus the standard escapes,
//! strict enough that `Snapshot::from_json(s.to_json())` round-trips and
//! garbage is rejected with a positioned error.

use std::collections::BTreeMap;
use std::fmt;

/// The JSON values snapshots use.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A non-negative integer (all metric payloads are `u64`).
    Int(u64),
    /// A non-negative decimal (Chrome-trace timestamps are fractional
    /// microseconds); never produced for metric payloads.
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Ordered so serialization is deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_int(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric view: integers widen losslessly for small values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace), with deterministic key order.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Int(n) => {
                use fmt::Write;
                let _ = write!(out, "{n}");
            }
            Value::Float(f) => {
                use fmt::Write;
                // `{}` on f64 is shortest-round-trip; force a decimal
                // point so the value re-parses as a Float.
                let text = format!("{f}");
                if text.contains('.') {
                    let _ = write!(out, "{text}");
                } else {
                    let _ = write!(out, "{text}.0");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }
}

/// Writes `s` as a JSON string literal with the mandatory escapes.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value and requires it to span the whole input.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'0'..=b'9') => self.integer(),
            Some(_) => Err(self.err("expected object, array, string, or integer")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn integer(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after decimal point"));
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
            return text
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("number out of range"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<u64>()
            .map(Value::Int)
            .map_err(|_| self.err("integer out of range"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Snapshot names never contain surrogate
                            // pairs; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut obj = BTreeMap::new();
        obj.insert("a".to_string(), Value::Int(42));
        obj.insert(
            "b\"c".to_string(),
            Value::Array(vec![Value::Int(0), Value::Str("x\ny".to_string())]),
        );
        let v = Value::Object(obj);
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("-3").is_err());
        assert!(parse("\"\\q\"").is_err());
        assert!(parse("1.").is_err());
        assert!(parse(".5").is_err());
    }

    #[test]
    fn floats_round_trip() {
        let v = parse("[0.5,1234.375,2.0]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(0.5));
        assert_eq!(items[1].as_f64(), Some(1234.375));
        assert_eq!(items[2].as_f64(), Some(2.0));
        assert_eq!(parse(&v.to_json()).unwrap(), v);
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(
            obj["k"].as_array().unwrap(),
            &[Value::Int(1), Value::Int(2)]
        );
    }
}
