//! A structured event log: a lock-light, process-global ring buffer of
//! typed service records.
//!
//! Metrics answer "how much"; the event log answers "what happened,
//! when, to whom" for the handful of service-level events worth keeping
//! individually: request lifecycles, admission rejections, checkpoint
//! resumes, plan-cache evictions, and slow queries. Producers call
//! [`publish`] (one mutex hit on a buffer capped at [`RING_CAP`]
//! records — old records are dropped, never blocked on); a single
//! consumer (e.g. the `tmk serve --log` drain thread) calls [`drain`]
//! and serializes each record with [`Record::to_json_line`].
//!
//! Timestamps are nanoseconds since the first record ([`epoch_ns`]), so
//! a log is self-relative and needs no wall-clock agreement between
//! readers. Under `obs-off`, [`publish`] compiles to an empty body and
//! [`drain`] always returns nothing.

#[cfg(not(feature = "obs-off"))]
use std::collections::VecDeque;
#[cfg(not(feature = "obs-off"))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "obs-off"))]
use std::sync::{Mutex, OnceLock};

/// Maximum records buffered between drains; the oldest record is
/// dropped when a publish would exceed this.
pub const RING_CAP: usize = 1024;

/// What a [`Record`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A request began executing (tenant + request kind in `detail`).
    RequestStart,
    /// A request finished; `dur_ns` is its wall time.
    RequestFinish,
    /// A request was rejected by the tenant quota.
    RejectQuota,
    /// A connection was shed because the worker pool queue was full.
    RejectSaturated,
    /// A streamed session resumed from a checkpoint.
    CheckpointResume,
    /// The plan cache evicted a compiled query to admit another.
    PlanCacheEvict,
    /// A request exceeded the slow-query threshold; `detail` carries
    /// the plan explanation and phase timings.
    SlowQuery,
}

impl RecordKind {
    /// Stable snake_case tag used in the JSON rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            RecordKind::RequestStart => "request_start",
            RecordKind::RequestFinish => "request_finish",
            RecordKind::RejectQuota => "reject_quota",
            RecordKind::RejectSaturated => "reject_saturated",
            RecordKind::CheckpointResume => "checkpoint_resume",
            RecordKind::PlanCacheEvict => "plan_cache_evict",
            RecordKind::SlowQuery => "slow_query",
        }
    }
}

/// One logged event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Monotonic sequence number (gaps reveal ring overflow drops).
    pub seq: u64,
    /// Nanoseconds since the process log epoch (first record).
    pub t_ns: u64,
    pub kind: RecordKind,
    /// Tenant the event belongs to ("" when not tenant-scoped).
    pub tenant: String,
    /// Free-form context: request kind, error text, plan explanation…
    pub detail: String,
    /// Duration for timed events (0 otherwise).
    pub dur_ns: u64,
}

impl Record {
    /// Renders one JSON-lines entry (single line, no trailing newline),
    /// e.g. `{"seq":3,"t_ns":1200,"kind":"slow_query","tenant":"a","detail":"…","dur_ns":88}`.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96 + self.detail.len());
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"t_ns\":");
        out.push_str(&self.t_ns.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"tenant\":");
        crate::json::write_json_string(&self.tenant, &mut out);
        out.push_str(",\"detail\":");
        crate::json::write_json_string(&self.detail, &mut out);
        out.push_str(",\"dur_ns\":");
        out.push_str(&self.dur_ns.to_string());
        out.push('}');
        out
    }
}

#[cfg(not(feature = "obs-off"))]
struct Ring {
    records: Mutex<VecDeque<Record>>,
    seq: AtomicU64,
    epoch: std::time::Instant,
}

#[cfg(not(feature = "obs-off"))]
fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| Ring {
        records: Mutex::new(VecDeque::with_capacity(64)),
        seq: AtomicU64::new(0),
        epoch: std::time::Instant::now(),
    })
}

/// Nanoseconds since the log epoch (the first touch of the log); 0
/// under `obs-off`.
pub fn epoch_ns() -> u64 {
    #[cfg(not(feature = "obs-off"))]
    {
        let ns = ring().epoch.elapsed().as_nanos();
        if ns > u64::MAX as u128 {
            u64::MAX
        } else {
            ns as u64
        }
    }
    #[cfg(feature = "obs-off")]
    0
}

/// Appends one record to the ring, dropping the oldest buffered record
/// if the ring is full. A no-op under `obs-off`.
pub fn publish(kind: RecordKind, tenant: &str, detail: &str, dur_ns: u64) {
    #[cfg(not(feature = "obs-off"))]
    {
        let r = ring();
        let rec = Record {
            seq: r.seq.fetch_add(1, Ordering::Relaxed),
            t_ns: epoch_ns(),
            kind,
            tenant: tenant.to_string(),
            detail: detail.to_string(),
            dur_ns,
        };
        let mut records = r.records.lock().unwrap_or_else(|e| e.into_inner());
        if records.len() >= RING_CAP {
            records.pop_front();
        }
        records.push_back(rec);
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = (kind, tenant, detail, dur_ns);
    }
}

/// Removes and returns every buffered record, oldest first. Always
/// empty under `obs-off`.
pub fn drain() -> Vec<Record> {
    #[cfg(not(feature = "obs-off"))]
    {
        ring()
            .records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect()
    }
    #[cfg(feature = "obs-off")]
    Vec::new()
}

/// Records currently buffered (0 under `obs-off`).
pub fn len() -> usize {
    #[cfg(not(feature = "obs-off"))]
    {
        ring()
            .records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }
    #[cfg(feature = "obs-off")]
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_escapes_and_tags() {
        let rec = Record {
            seq: 7,
            t_ns: 1200,
            kind: RecordKind::SlowQuery,
            tenant: "a\"b".into(),
            detail: "plan: dense\nphases".into(),
            dur_ns: 88,
        };
        let line = rec.to_json_line();
        assert!(line.contains("\"kind\":\"slow_query\""));
        assert!(line.contains("\"tenant\":\"a\\\"b\""));
        assert!(line.contains("\\n"), "newlines are escaped: {line}");
        assert!(!line.contains('\n'), "one line per record");
        // The line is valid JSON for our own parser.
        let v = crate::json::parse(&line).expect("record lines parse");
        let o = v.as_object().unwrap();
        assert_eq!(o["seq"].as_int(), Some(7));
        assert_eq!(o["dur_ns"].as_int(), Some(88));
    }

    // Publish/drain tests run single-file here but the ring is
    // process-global, so they tolerate records from concurrent tests by
    // filtering on their own tenant tag.
    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn publish_then_drain_preserves_order() {
        publish(RecordKind::RequestStart, "log-test-a", "confidence", 0);
        publish(RecordKind::RequestFinish, "log-test-a", "confidence", 42);
        let mine: Vec<Record> = drain()
            .into_iter()
            .filter(|r| r.tenant == "log-test-a")
            .collect();
        assert_eq!(mine.len(), 2);
        assert!(mine[0].seq < mine[1].seq);
        assert_eq!(mine[0].kind, RecordKind::RequestStart);
        assert_eq!(mine[1].dur_ns, 42);
        assert!(mine[1].t_ns >= mine[0].t_ns);
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn obs_off_log_is_inert() {
        publish(RecordKind::RequestStart, "t", "d", 1);
        assert_eq!(len(), 0);
        assert!(drain().is_empty());
        assert_eq!(epoch_ns(), 0);
    }
}
