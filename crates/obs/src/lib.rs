//! # transmark-obs — dependency-free observability
//!
//! Always-compiled, near-zero-cost instrumentation for the transmark
//! engine: atomic [`Counter`]s, monotonic [`Gauge`]s, log₂-bucketed
//! [`Histogram`]s, and a lightweight [`span!`] API for nested phase
//! timings — all aggregated in a process-global [`Registry`] whose
//! [`Snapshot`]s render to text and JSON (and parse back) without serde.
//!
//! ## Recording
//!
//! The `counter!`/`gauge!`/`histogram!` macros plant a `static`
//! instrument at the call site and register it on first touch, so the
//! steady-state cost of a recording is one relaxed atomic op:
//!
//! ```
//! use transmark_obs::{counter, histogram, span, Timer};
//!
//! counter!("dataplane.steps").inc();
//! let t = Timer::start();
//! // ... decode a layer ...
//! histogram!("dataplane.tms.decode_ns").record(t.elapsed_ns());
//!
//! // A span times a whole phase; nested spans aggregate under
//! // "/"-joined paths ("prepare", "bind/csr", ...).
//! {
//!     span!("bind");
//!     // ... bind work ...
//! }
//! ```
//!
//! ## Reading
//!
//! ```
//! use transmark_obs::registry;
//!
//! let before = registry().snapshot();
//! // ... run a query ...
//! let after = registry().snapshot();
//! let report = after.diff(&before);   // only what this query did
//! println!("{}", report.to_text());
//! let json = report.to_json();        // round-trips via Snapshot::from_json
//! # let _ = json;
//! ```
//!
//! ## Profiling a single query
//!
//! Aggregates answer "how much, overall"; a [`Recorder`] answers "where
//! did *this* query's time go". Install one around the work (fleet code
//! propagates it to workers as per-worker lanes), then export the
//! merged [`ExecutionProfile`] as a Chrome trace or folded stacks:
//!
//! ```
//! use std::sync::Arc;
//! use transmark_obs::Recorder;
//!
//! let rec = Arc::new(Recorder::new());
//! rec.scope(|| {
//!     let _phase = transmark_obs::span::enter("execute");
//!     // ... run the query ...
//! });
//! let profile = rec.finish();
//! let trace_json = transmark_obs::trace::chrome_trace(&profile); // chrome://tracing
//! let flame = transmark_obs::trace::folded(&profile);            // flamegraph.pl
//! # let _ = (trace_json, flame);
//! ```
//!
//! ## Turning it off
//!
//! Building with the `obs-off` feature compiles every recording to an
//! empty body and every timer read to `0`; the API keeps its shape so
//! call sites are identical either way. `scripts/check.sh` uses this to
//! assert the instrumented hot paths stay within the overhead budget.
//!
//! ## Bit-reproducibility
//!
//! Nothing in this crate touches query data: instruments observe counts
//! and clocks only, so instrumented passes are bit-identical to
//! uninstrumented ones by construction (asserted end-to-end in
//! `crates/core/tests/observability.rs`).

pub mod json;
pub mod labels;
pub mod log;
pub mod metrics;
pub mod profile;
pub mod registry;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use labels::{CounterFamily, GaugeFamily, HistogramFamily};
pub use metrics::{Counter, Gauge, Histogram, Timer};
pub use profile::{ExecutionProfile, Recorder, RecorderScope};
pub use registry::{registry, Registry};
pub use snapshot::{fmt_ns, HistogramSnapshot, Snapshot, SpanSnapshot};
pub use span::SpanGuard;

/// True when the crate was built with the `obs-off` feature (recording
/// compiled out). Lets tests and the overhead harness report which mode
/// they measured.
pub const fn enabled() -> bool {
    cfg!(not(feature = "obs-off"))
}

/// A call-site counter: plants a `static` [`Counter`], registers it
/// under `$name` on first touch, and evaluates to `&'static Counter`.
///
/// The labeled form (`counter!("serve.requests", tenant = t, kind = k)`)
/// plants a bounded-cardinality [`labels::CounterFamily`] instead and
/// evaluates to an `Arc<Counter>` for the given label values; see
/// [`labels`] for the rendered-name grammar and the overflow rule.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __OBS_C: $crate::Counter = $crate::Counter::new();
        static __OBS_REG: ::std::sync::Once = ::std::sync::Once::new();
        __OBS_REG.call_once(|| $crate::registry().register_counter($name, &__OBS_C));
        &__OBS_C
    }};
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {{
        static __OBS_F: $crate::labels::CounterFamily =
            $crate::labels::CounterFamily::new($name, &[$(stringify!($key)),+]);
        __OBS_F.with(&[$(::std::convert::AsRef::<str>::as_ref(&$val)),+])
    }};
}

/// A call-site monotonic gauge; see [`counter!`] (including the labeled
/// family form).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __OBS_G: $crate::Gauge = $crate::Gauge::new();
        static __OBS_REG: ::std::sync::Once = ::std::sync::Once::new();
        __OBS_REG.call_once(|| $crate::registry().register_gauge($name, &__OBS_G));
        &__OBS_G
    }};
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {{
        static __OBS_F: $crate::labels::GaugeFamily =
            $crate::labels::GaugeFamily::new($name, &[$(stringify!($key)),+]);
        __OBS_F.with(&[$(::std::convert::AsRef::<str>::as_ref(&$val)),+])
    }};
}

/// A call-site histogram; see [`counter!`] (including the labeled
/// family form).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __OBS_H: $crate::Histogram = $crate::Histogram::new();
        static __OBS_REG: ::std::sync::Once = ::std::sync::Once::new();
        __OBS_REG.call_once(|| $crate::registry().register_histogram($name, &__OBS_H));
        &__OBS_H
    }};
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {{
        static __OBS_F: $crate::labels::HistogramFamily =
            $crate::labels::HistogramFamily::new($name, &[$(stringify!($key)),+]);
        __OBS_F.with(&[$(::std::convert::AsRef::<str>::as_ref(&$val)),+])
    }};
}

/// Opens a span that closes with the enclosing scope. The name must be
/// `&'static str`; nested spans aggregate under "/"-joined paths.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let __obs_span_guard = $crate::span::enter($name);
        let _ = &__obs_span_guard;
    };
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn labeled_macro_arms_record_per_label_series() {
        let tenant = String::from("acme");
        counter!("test.lib.labeled", tenant = tenant, kind = "top_k").add(2);
        counter!("test.lib.labeled", tenant = "zen", kind = "series").inc();
        histogram!("test.lib.labeled_ns", tenant = tenant).record(4096);
        let snap = registry().snapshot();
        assert_eq!(snap.counter("test.lib.labeled{tenant=acme,kind=top_k}"), 2);
        assert_eq!(snap.counter("test.lib.labeled{tenant=zen,kind=series}"), 1);
        assert_eq!(
            snap.histogram("test.lib.labeled_ns{tenant=acme}")
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn macros_record_through_the_registry() {
        counter!("test.lib.counter").add(7);
        gauge!("test.lib.gauge").set(3);
        histogram!("test.lib.hist").record(100);
        {
            span!("test.lib.span");
            counter!("test.lib.counter").inc();
        }
        let snap = registry().snapshot();
        assert_eq!(snap.counter("test.lib.counter"), 8);
        assert_eq!(snap.gauge("test.lib.gauge"), 3);
        assert_eq!(snap.histogram("test.lib.hist").unwrap().count, 1);
        assert!(snap.span("test.lib.span").unwrap().count >= 1);
    }
}
