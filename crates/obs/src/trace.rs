//! Timeline exports for [`ExecutionProfile`]: Chrome `trace_event` JSON
//! and folded stacks for flamegraphs.
//!
//! ## Chrome trace schema
//!
//! [`chrome_trace`] emits the *JSON array format* that
//! `chrome://tracing` and Perfetto accept: one object per event, with
//! `ph` (phase) `"M"` for lane metadata, `"B"`/`"E"` for span
//! begin/end, `"i"` for instants (scope `"s":"t"` = thread), and `"C"`
//! for cumulative layer/byte counters. All events share `pid` 1; each
//! lane (recorder scope label — `"main"`, `"worker-0"`, …) gets its own
//! `tid`, named via a `thread_name` metadata event, so fleet workers
//! render as separate tracks. Timestamps are microseconds from the
//! recorder epoch with nanosecond precision kept as a fraction.
//!
//! ## Folded-stack format
//!
//! [`folded`] emits `flamegraph.pl`/inferno input: one line per unique
//! stack, `lane;outer;inner <self_ns>`, where the count is the stack's
//! *self* time (inclusive minus children) in nanoseconds so frame widths
//! sum correctly. [`parse_folded`] is the strict reader the test suite
//! uses to prove the output round-trips.

use crate::json::write_json_string;
use crate::profile::{walk_spans, EventKind, ExecutionProfile};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Renders a profile as a Chrome `trace_event` JSON array.
pub fn chrome_trace(profile: &ExecutionProfile) -> String {
    let mut out = String::new();
    out.push('[');
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, event: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(&event);
    };
    if profile.trace_id != 0 {
        // Wire-propagated trace id: name the process after it so a
        // stitched client+server capture is visibly one trace.
        push(
            &mut out,
            &mut first,
            format!(
                r#"{{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{{"name":"tmk trace {:016x}"}}}}"#,
                profile.trace_id
            ),
        );
    }
    for (tid, lane) in profile.lanes.iter().enumerate() {
        let mut meta =
            format!(r#"{{"ph":"M","pid":1,"tid":{tid},"name":"thread_name","args":{{"name":"#);
        write_json_string(&lane.label, &mut meta);
        meta.push_str("}}");
        push(&mut out, &mut first, meta);
        let mut layers: u64 = 0;
        let mut bytes: u64 = 0;
        for e in &lane.events {
            let ts = micros(e.t_ns);
            let ev = match e.kind {
                EventKind::Begin => {
                    let mut s =
                        format!(r#"{{"ph":"B","pid":1,"tid":{tid},"ts":{ts},"cat":"span","name":"#);
                    write_json_string(e.name, &mut s);
                    s.push('}');
                    s
                }
                EventKind::End => {
                    format!(r#"{{"ph":"E","pid":1,"tid":{tid},"ts":{ts}}}"#)
                }
                EventKind::Instant => {
                    let mut s =
                        format!(r#"{{"ph":"i","pid":1,"tid":{tid},"ts":{ts},"s":"t","name":"#);
                    write_json_string(e.name, &mut s);
                    if !e.detail.is_empty() {
                        s.push_str(r#","args":{"detail":"#);
                        write_json_string(e.detail, &mut s);
                        s.push('}');
                    }
                    s.push('}');
                    s
                }
                EventKind::Progress => {
                    layers += e.value;
                    let mut s = format!(r#"{{"ph":"C","pid":1,"tid":{tid},"ts":{ts},"name":"#);
                    write_json_string(e.name, &mut s);
                    let _ = write!(s, r#","args":{{"layers":{layers}}}}}"#);
                    s
                }
                EventKind::Bytes => {
                    bytes += e.value;
                    let mut s = format!(r#"{{"ph":"C","pid":1,"tid":{tid},"ts":{ts},"name":"#);
                    write_json_string(e.name, &mut s);
                    let _ = write!(s, r#","args":{{"bytes":{bytes}}}}}"#);
                    s
                }
            };
            push(&mut out, &mut first, ev);
        }
    }
    out.push_str("\n]\n");
    out
}

/// Nanoseconds as a microsecond literal with the sub-µs part kept as a
/// fraction (`1234567` → `"1234.567"`), so short phases stay visible.
fn micros(t_ns: u64) -> String {
    format!("{}.{:03}", t_ns / 1000, t_ns % 1000)
}

/// Renders a profile as folded stacks: `lane;outer;inner <self_ns>`
/// lines, one per unique stack, sorted for determinism.
pub fn folded(profile: &ExecutionProfile) -> String {
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for lane in &profile.lanes {
        walk_spans(&lane.events, profile.wall_ns, |path, frame| {
            let mut key = sanitize_frame(&lane.label);
            for name in path {
                key.push(';');
                key.push_str(&sanitize_frame(name));
            }
            *stacks.entry(key).or_insert(0) += frame.self_ns;
        });
    }
    let mut out = String::new();
    for (stack, self_ns) in stacks {
        let _ = writeln!(out, "{stack} {self_ns}");
    }
    out
}

/// Frame names may not contain the folded format's separators
/// (`;` between frames, space before the count).
fn sanitize_frame(name: &str) -> String {
    name.replace([';', ' '], "_")
}

/// Parses folded-stack text back into `(frames, count)` pairs — the
/// same grammar `flamegraph.pl` and inferno consume: every non-empty
/// line is `frame(;frame)* <count>`, count a base-10 integer.
pub fn parse_folded(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let (stack, count) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: missing count separator", i + 1))?;
        let count: u64 = count
            .parse()
            .map_err(|_| format!("line {}: invalid count {count:?}", i + 1))?;
        if stack.is_empty() {
            return Err(format!("line {}: empty stack", i + 1));
        }
        let frames: Vec<String> = stack.split(';').map(str::to_string).collect();
        if frames.iter().any(String::is_empty) {
            return Err(format!("line {}: empty frame", i + 1));
        }
        out.push((frames, count));
    }
    Ok(out)
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;
    use crate::profile::Recorder;
    use std::sync::Arc;

    fn sample_profile() -> ExecutionProfile {
        let rec = Arc::new(Recorder::new());
        rec.scope(|| {
            let _e = crate::span::enter("trace_test_execute");
            {
                let _k = crate::span::enter("kernel");
                crate::profile::progress(16);
                crate::profile::bytes(128);
            }
            crate::profile::instant_detail("planner.cache", "miss");
        });
        rec.finish()
    }

    #[test]
    fn chrome_trace_is_valid_event_array() {
        let text = chrome_trace(&sample_profile());
        let v = crate::json::parse(&text).expect("trace parses as JSON");
        let events = v.as_array().expect("top level is an array");
        let ph = |e: &crate::json::Value| e.as_object().unwrap()["ph"].clone();
        let phases: Vec<String> = events
            .iter()
            .map(|e| match ph(e) {
                crate::json::Value::Str(s) => s,
                other => panic!("ph is not a string: {other:?}"),
            })
            .collect();
        assert!(phases.contains(&"M".to_string()));
        assert!(phases.contains(&"B".to_string()));
        assert!(phases.contains(&"E".to_string()));
        assert!(phases.contains(&"i".to_string()));
        assert!(phases.contains(&"C".to_string()));
        for e in events {
            let obj = e.as_object().unwrap();
            assert!(obj.contains_key("pid"));
            assert!(obj.contains_key("tid"));
        }
    }

    #[test]
    fn folded_round_trips_and_self_time_sums() {
        let profile = sample_profile();
        let text = folded(&profile);
        let stacks = parse_folded(&text).expect("folded output parses");
        assert!(!stacks.is_empty());
        let total: u64 = stacks.iter().map(|(_, n)| n).sum();
        // Self times partition the root's inclusive time exactly.
        assert_eq!(total, profile.phases["trace_test_execute"].total_ns);
        assert!(stacks.iter().any(|(frames, _)| frames
            == &["main", "trace_test_execute", "kernel"]
                .map(String::from)
                .to_vec()));
    }

    #[test]
    fn parse_folded_rejects_malformed_lines() {
        assert!(parse_folded("no_count").is_err());
        assert!(parse_folded("a;b notanumber").is_err());
        assert!(parse_folded("a;;b 3").is_err());
        assert!(parse_folded(" 3").is_err());
        assert!(parse_folded("a;b 3\n").unwrap().len() == 1);
    }
}
