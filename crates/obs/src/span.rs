//! Lightweight phase spans: named, nested wall-clock scopes aggregated
//! process-wide.
//!
//! `span!("bind")` opens a scope that closes when the enclosing block
//! does. Each thread keeps a stack of active span names; a span's
//! aggregation key is the "/"-joined path of that stack (`"prepare"`,
//! `"bind/csr"`, …), so nesting is visible in the snapshot without any
//! per-event storage. On close, the elapsed time folds into a global
//! `path → {count, total_ns, max_ns}` map behind one mutex — spans are
//! for coarse phases (prepare / bind / execute), not per-layer work, so
//! the lock is touched a handful of times per query.
//!
//! There is no external `tracing` dependency: the container is offline,
//! and this is the whole feature we need from one.

use crate::snapshot::SpanSnapshot;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;

static AGGREGATE: Mutex<Option<BTreeMap<String, SpanSnapshot>>> = Mutex::new(None);

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Opens a span; the returned guard closes it on drop. Prefer the
/// [`span!`](crate::span!) macro, which ties the guard to the enclosing
/// scope without naming it.
#[inline]
pub fn enter(name: &'static str) -> SpanGuard {
    #[cfg(not(feature = "obs-off"))]
    {
        let path = STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            s.join("/")
        });
        SpanGuard {
            path: Some(path),
            start: std::time::Instant::now(),
        }
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = name;
        SpanGuard { _priv: () }
    }
}

/// Closes its span when dropped.
#[must_use = "a span closes when its guard drops; an unbound guard closes immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    #[cfg(not(feature = "obs-off"))]
    path: Option<String>,
    #[cfg(not(feature = "obs-off"))]
    start: std::time::Instant,
    #[cfg(feature = "obs-off")]
    _priv: (),
}

#[cfg(not(feature = "obs-off"))]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = {
            let e = self.start.elapsed().as_nanos();
            if e > u64::MAX as u128 {
                u64::MAX
            } else {
                e as u64
            }
        };
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        let path = match self.path.take() {
            Some(p) => p,
            None => return,
        };
        let mut agg = AGGREGATE.lock().unwrap_or_else(|e| e.into_inner());
        let stat = agg
            .get_or_insert_with(BTreeMap::new)
            .entry(path)
            .or_default();
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(ns);
        stat.max_ns = stat.max_ns.max(ns);
    }
}

/// A copy of the global span aggregates, keyed by "/"-joined path.
pub fn collect() -> BTreeMap<String, SpanSnapshot> {
    AGGREGATE
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
        .unwrap_or_default()
}

/// The depth of the current thread's span stack (for tests).
pub fn current_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn paths_nest_per_thread() {
        {
            let _outer = enter("outer_span_test");
            assert_eq!(current_depth(), 1);
            {
                let _inner = enter("inner");
                assert_eq!(current_depth(), 2);
            }
            assert_eq!(current_depth(), 1);
        }
        assert_eq!(current_depth(), 0);
        let agg = collect();
        assert!(agg["outer_span_test"].count >= 1);
        assert!(agg["outer_span_test/inner"].count >= 1);
    }
}
