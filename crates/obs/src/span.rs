//! Lightweight phase spans: named, nested wall-clock scopes aggregated
//! process-wide.
//!
//! `span!("bind")` opens a scope that closes when the enclosing block
//! does. Each thread keeps a stack of active span names; a span's
//! aggregation key is the "/"-joined path of that stack (`"prepare"`,
//! `"bind/csr"`, …), so nesting is visible in the snapshot without any
//! per-event storage. On close, the elapsed time folds into global
//! per-path aggregates — spans are for coarse phases (prepare / bind /
//! execute), not per-layer work, so that lock is touched a handful of
//! times per query.
//!
//! Paths are **interned**: the first time a `(parent, name)` pair is
//! seen the joined `String` is built once and assigned a small id;
//! every later [`enter`] on the same path resolves the id from a
//! thread-local cache without allocating or taking the global lock.
//! (`examples/obs_overhead.rs` asserts the interner stops growing once
//! the hot paths are warm.)
//!
//! Spans also feed the query-scoped profiler: when a
//! [`Recorder`](crate::profile::Recorder) scope is installed on the
//! thread, `enter`/drop emit timeline begin/end events, so phase
//! breakdowns appear in Chrome traces and flamegraphs for free.
//!
//! There is no external `tracing` dependency: the container is offline,
//! and this is the whole feature we need from one.

use crate::snapshot::SpanSnapshot;
use std::collections::BTreeMap;

#[cfg(not(feature = "obs-off"))]
use std::cell::RefCell;
#[cfg(not(feature = "obs-off"))]
use std::collections::HashMap;
#[cfg(not(feature = "obs-off"))]
use std::sync::Mutex;

/// Index into the global interner's `paths`/`stats` tables.
#[cfg(not(feature = "obs-off"))]
type PathId = u32;

/// Sentinel parent id for root (depth-1) spans.
#[cfg(not(feature = "obs-off"))]
const ROOT: PathId = PathId::MAX;

#[cfg(not(feature = "obs-off"))]
#[derive(Default)]
struct Interner {
    /// `(parent id, name ptr, name len) → id`. Keying by pointer keeps
    /// lookups allocation-free; distinct `&'static str`s with equal text
    /// get distinct ids, and [`collect`] merges them by path string.
    table: HashMap<(PathId, usize, usize), PathId>,
    /// `id → "/"-joined path`, built once at interning time.
    paths: Vec<String>,
    /// `id → aggregate`, updated on every span close.
    stats: Vec<SpanSnapshot>,
}

#[cfg(not(feature = "obs-off"))]
static GLOBAL: Mutex<Option<Interner>> = Mutex::new(None);

#[cfg(not(feature = "obs-off"))]
thread_local! {
    /// This thread's active span stack: `(name, interned path id)`.
    static STACK: RefCell<Vec<(&'static str, PathId)>> = const { RefCell::new(Vec::new()) };
    /// Thread-local mirror of the interner's key table, so the steady
    /// state never takes the global lock on enter.
    static LOCAL_IDS: RefCell<HashMap<(PathId, usize, usize), PathId>> =
        RefCell::new(HashMap::new());
}

#[cfg(not(feature = "obs-off"))]
fn intern(parent: PathId, name: &'static str) -> PathId {
    let mut guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let interner = guard.get_or_insert_with(Interner::default);
    let key = (parent, name.as_ptr() as usize, name.len());
    if let Some(&id) = interner.table.get(&key) {
        return id;
    }
    let path = if parent == ROOT {
        name.to_string()
    } else {
        format!("{}/{}", interner.paths[parent as usize], name)
    };
    let id = interner.paths.len() as PathId;
    interner.paths.push(path);
    interner.stats.push(SpanSnapshot::default());
    interner.table.insert(key, id);
    id
}

/// Opens a span; the returned guard closes it on drop. Prefer the
/// [`span!`](crate::span!) macro, which ties the guard to the enclosing
/// scope without naming it.
#[inline]
pub fn enter(name: &'static str) -> SpanGuard {
    #[cfg(not(feature = "obs-off"))]
    {
        let id = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().map(|&(_, id)| id).unwrap_or(ROOT);
            let key = (parent, name.as_ptr() as usize, name.len());
            let id = LOCAL_IDS.with(|cache| {
                if let Some(&id) = cache.borrow().get(&key) {
                    return id;
                }
                let id = intern(parent, name);
                cache.borrow_mut().insert(key, id);
                id
            });
            s.push((name, id));
            id
        });
        crate::profile::span_begin(name);
        SpanGuard {
            id,
            start: std::time::Instant::now(),
        }
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = name;
        SpanGuard { _priv: () }
    }
}

/// Closes its span when dropped.
#[must_use = "a span closes when its guard drops; an unbound guard closes immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    #[cfg(not(feature = "obs-off"))]
    id: PathId,
    #[cfg(not(feature = "obs-off"))]
    start: std::time::Instant,
    #[cfg(feature = "obs-off")]
    _priv: (),
}

#[cfg(not(feature = "obs-off"))]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = {
            let e = self.start.elapsed().as_nanos();
            if e > u64::MAX as u128 {
                u64::MAX
            } else {
                e as u64
            }
        };
        crate::profile::span_end();
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        let mut guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(interner) = guard.as_mut() {
            if let Some(stat) = interner.stats.get_mut(self.id as usize) {
                stat.count += 1;
                stat.total_ns = stat.total_ns.saturating_add(ns);
                stat.max_ns = stat.max_ns.max(ns);
            }
        }
    }
}

/// A copy of the global span aggregates, keyed by "/"-joined path.
/// Distinct interned ids that render the same path (same text at two
/// call sites) are merged here.
pub fn collect() -> BTreeMap<String, SpanSnapshot> {
    #[cfg(not(feature = "obs-off"))]
    {
        let guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: BTreeMap<String, SpanSnapshot> = BTreeMap::new();
        if let Some(interner) = guard.as_ref() {
            for (path, stat) in interner.paths.iter().zip(&interner.stats) {
                if stat.count == 0 {
                    continue;
                }
                let merged = out.entry(path.clone()).or_default();
                merged.count += stat.count;
                merged.total_ns = merged.total_ns.saturating_add(stat.total_ns);
                merged.max_ns = merged.max_ns.max(stat.max_ns);
            }
        }
        out
    }
    #[cfg(feature = "obs-off")]
    BTreeMap::new()
}

/// The depth of the current thread's span stack (for tests).
pub fn current_depth() -> usize {
    #[cfg(not(feature = "obs-off"))]
    {
        STACK.with(|s| s.borrow().len())
    }
    #[cfg(feature = "obs-off")]
    0
}

/// How many distinct span paths have been interned so far. The overhead
/// guard asserts this stops growing once a workload's paths are warm —
/// i.e. repeated enters allocate nothing.
pub fn interned_paths() -> usize {
    #[cfg(not(feature = "obs-off"))]
    {
        GLOBAL
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map_or(0, |i| i.paths.len())
    }
    #[cfg(feature = "obs-off")]
    0
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn paths_nest_per_thread() {
        {
            let _outer = enter("outer_span_test");
            assert_eq!(current_depth(), 1);
            {
                let _inner = enter("inner");
                assert_eq!(current_depth(), 2);
            }
            assert_eq!(current_depth(), 1);
        }
        assert_eq!(current_depth(), 0);
        let agg = collect();
        assert!(agg["outer_span_test"].count >= 1);
        assert!(agg["outer_span_test/inner"].count >= 1);
    }

    #[test]
    fn repeat_enters_do_not_grow_the_interner() {
        // Warm the path once, then re-enter many times: the interner
        // must not grow (the satellite fix — no per-enter allocation).
        {
            let _g = enter("intern_warm_test");
        }
        let warm = interned_paths();
        for _ in 0..100 {
            let _g = enter("intern_warm_test");
        }
        assert_eq!(interned_paths(), warm);
    }

    #[test]
    fn same_text_different_sites_merge_in_collect() {
        // Two distinct statics with equal text intern separately (keyed
        // by pointer) but must merge under one path in collect().
        static A: &str = "intern_merge_test";
        let b: &'static str = Box::leak("intern_merge_test".to_string().into_boxed_str());
        assert_ne!(A.as_ptr(), b.as_ptr());
        {
            let _g = enter(A);
        }
        {
            let _g = enter(b);
        }
        let agg = collect();
        assert!(agg["intern_merge_test"].count >= 2);
    }
}
