//! Point-in-time copies of the registry, with diffing and text/JSON
//! rendering.

use crate::json::{self, JsonError, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A histogram's state at snapshot time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// Nonzero buckets as `(lower_bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) estimated from the log₂
    /// buckets.
    ///
    /// The interpolation rule: the sample of rank `⌈q·count⌉` (1-based)
    /// is located in its bucket `[lo, 2·lo)` (`[0, 0]` for the zero
    /// bucket) and assumed uniformly spread within it, so the estimate
    /// is `lo + frac·lo` where `frac` is the rank's position among the
    /// bucket's samples. The result is clamped to the recorded `max`,
    /// which caps the error in the top occupied bucket. Because buckets
    /// are powers of two, the estimate is within 2× of the true sample
    /// — plenty for p50/p95/p99 dashboards over latencies.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(lo, n) in &self.buckets {
            if seen + n >= rank {
                if lo == 0 {
                    return 0;
                }
                let frac = (rank - seen) as f64 / n as f64;
                let est = lo as f64 + frac * lo as f64;
                return (est as u64).min(self.max);
            }
            seen += n;
        }
        self.max
    }
}

/// A span path's aggregate at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

/// An immutable copy of every registered instrument (plus the span
/// aggregates), taken by [`crate::registry::Registry::snapshot`].
///
/// Snapshots subtract ([`Snapshot::diff`]) so "what happened during this
/// call" is `after.diff(&before)` even though the underlying registry is
/// process-global and monotonic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    pub spans: BTreeMap<String, SpanSnapshot>,
}

impl Snapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// A counter's value, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value, 0 if absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram's aggregate, if it recorded anything.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// A span path's aggregate, if it was entered.
    pub fn span(&self, path: &str) -> Option<&SpanSnapshot> {
        self.spans.get(path)
    }

    /// What happened between `baseline` and `self`.
    ///
    /// Counters, histogram counts/sums/buckets, and span aggregates
    /// subtract; entries whose delta is zero are dropped. Gauges are
    /// high-water marks, which do not subtract — the diff keeps the
    /// current value and drops gauges that did not move. A histogram's
    /// `max` over the window cannot be recovered from two cumulative
    /// copies, so the diff conservatively reports the overall `max`
    /// (an upper bound on the window's max); likewise for span `max_ns`.
    pub fn diff(&self, baseline: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for (name, &v) in &self.counters {
            let d = v.saturating_sub(baseline.counter(name));
            if d != 0 {
                out.counters.insert(name.clone(), d);
            }
        }
        for (name, &v) in &self.gauges {
            if baseline.gauges.get(name) != Some(&v) {
                out.gauges.insert(name.clone(), v);
            }
        }
        for (name, h) in &self.histograms {
            let base = baseline.histograms.get(name);
            let count = h.count.saturating_sub(base.map_or(0, |b| b.count));
            if count == 0 {
                continue;
            }
            let sum = h.sum.saturating_sub(base.map_or(0, |b| b.sum));
            let mut buckets = Vec::new();
            for &(lo, n) in &h.buckets {
                let base_n = base
                    .and_then(|b| b.buckets.iter().find(|&&(blo, _)| blo == lo))
                    .map_or(0, |&(_, n)| n);
                let d = n.saturating_sub(base_n);
                if d != 0 {
                    buckets.push((lo, d));
                }
            }
            out.histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    count,
                    sum,
                    max: h.max,
                    buckets,
                },
            );
        }
        for (path, s) in &self.spans {
            let base = baseline.spans.get(path);
            let count = s.count.saturating_sub(base.map_or(0, |b| b.count));
            if count == 0 {
                continue;
            }
            out.spans.insert(
                path.clone(),
                SpanSnapshot {
                    count,
                    total_ns: s.total_ns.saturating_sub(base.map_or(0, |b| b.total_ns)),
                    max_ns: s.max_ns,
                },
            );
        }
        out
    }

    /// Renders a human-readable report. Histogram and span values whose
    /// names contain an `_ns` segment — a trailing `_ns` or a labelled
    /// family like `planner.bind_ns.<kind>` — print as durations.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            return "(no metrics recorded)\n".to_string();
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<44} {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges (high-water):\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<44} {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (count / mean / p50 / p95 / p99 / max):\n");
            for (name, h) in &self.histograms {
                let fmt: fn(u64) -> String = if is_duration_name(name) {
                    fmt_ns
                } else {
                    |v| v.to_string()
                };
                let mean = if is_duration_name(name) {
                    fmt_ns(h.mean() as u64)
                } else {
                    format!("{:.1}", h.mean())
                };
                let _ = writeln!(
                    out,
                    "  {name:<44} {} / {mean} / {} / {} / {} / {}",
                    h.count,
                    fmt(h.quantile(0.50)),
                    fmt(h.quantile(0.95)),
                    fmt(h.quantile(0.99)),
                    fmt(h.max)
                );
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans (count / total / max):\n");
            for (path, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {path:<44} {} / {} / {}",
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.max_ns)
                );
            }
        }
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Metric names are sanitized into the Prometheus grammar (every
    /// character outside `[a-zA-Z0-9_:]` becomes `_`, so `serve.queries`
    /// scrapes as `serve_queries`); labeled families rendered by
    /// [`crate::labels`] (`name{tenant=a,kind=b}`) become real
    /// Prometheus labels (`name{tenant="a",kind="b"}`). Histograms
    /// expose cumulative `_bucket{le="…"}` series on the log₂ bucket
    /// upper bounds plus `+Inf`, `_sum`, and `_count`; span aggregates
    /// expose `tmk_span_count`/`tmk_span_total_ns` counters keyed by a
    /// `path` label.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out: String = name
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect();
            if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                out.insert(0, '_');
            }
            out
        }
        fn escape(v: &str) -> String {
            v.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        }
        fn label_str(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
            let mut pairs: Vec<String> = labels
                .iter()
                .map(|&(k, v)| format!("{}=\"{}\"", sanitize(k), escape(v)))
                .collect();
            if let Some((k, v)) = extra {
                pairs.push(format!("{k}=\"{}\"", escape(v)));
            }
            if pairs.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", pairs.join(","))
            }
        }
        let mut out = String::new();
        let mut typed = std::collections::BTreeSet::new();
        for (name, v) in &self.counters {
            let (base, labels) = crate::labels::split_labels(name);
            let base = sanitize(base);
            if typed.insert(base.clone()) {
                let _ = writeln!(out, "# TYPE {base} counter");
            }
            let _ = writeln!(out, "{base}{} {v}", label_str(&labels, None));
        }
        for (name, v) in &self.gauges {
            let (base, labels) = crate::labels::split_labels(name);
            let base = sanitize(base);
            if typed.insert(base.clone()) {
                let _ = writeln!(out, "# TYPE {base} gauge");
            }
            let _ = writeln!(out, "{base}{} {v}", label_str(&labels, None));
        }
        for (name, h) in &self.histograms {
            let (base, labels) = crate::labels::split_labels(name);
            let base = sanitize(base);
            if typed.insert(base.clone()) {
                let _ = writeln!(out, "# TYPE {base} histogram");
            }
            let mut cum = 0u64;
            for &(lo, n) in &h.buckets {
                cum += n;
                // Bucket 0 holds exactly 0; bucket [lo, 2·lo) holds
                // integers up to and including 2·lo − 1.
                let le = if lo == 0 {
                    0
                } else {
                    lo.saturating_mul(2).saturating_sub(1)
                };
                let _ = writeln!(
                    out,
                    "{base}_bucket{} {cum}",
                    label_str(&labels, Some(("le", &le.to_string())))
                );
            }
            let _ = writeln!(
                out,
                "{base}_bucket{} {}",
                label_str(&labels, Some(("le", "+Inf"))),
                h.count
            );
            let _ = writeln!(out, "{base}_sum{} {}", label_str(&labels, None), h.sum);
            let _ = writeln!(out, "{base}_count{} {}", label_str(&labels, None), h.count);
        }
        if !self.spans.is_empty() {
            out.push_str("# TYPE tmk_span_count counter\n");
            for (path, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "tmk_span_count{} {}",
                    label_str(&[], Some(("path", path))),
                    s.count
                );
            }
            out.push_str("# TYPE tmk_span_total_ns counter\n");
            for (path, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "tmk_span_total_ns{} {}",
                    label_str(&[], Some(("path", path))),
                    s.total_ns
                );
            }
        }
        out
    }

    /// Serializes to compact JSON with deterministic key order.
    pub fn to_json(&self) -> String {
        let mut root = BTreeMap::new();
        root.insert(
            "counters".to_string(),
            Value::Object(
                self.counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), Value::Int(v)))
                    .collect(),
            ),
        );
        root.insert(
            "gauges".to_string(),
            Value::Object(
                self.gauges
                    .iter()
                    .map(|(k, &v)| (k.clone(), Value::Int(v)))
                    .collect(),
            ),
        );
        root.insert(
            "histograms".to_string(),
            Value::Object(
                self.histograms
                    .iter()
                    .map(|(k, h)| {
                        let mut o = BTreeMap::new();
                        o.insert("count".to_string(), Value::Int(h.count));
                        o.insert("sum".to_string(), Value::Int(h.sum));
                        o.insert("max".to_string(), Value::Int(h.max));
                        o.insert(
                            "buckets".to_string(),
                            Value::Array(
                                h.buckets
                                    .iter()
                                    .map(|&(lo, n)| {
                                        Value::Array(vec![Value::Int(lo), Value::Int(n)])
                                    })
                                    .collect(),
                            ),
                        );
                        (k.clone(), Value::Object(o))
                    })
                    .collect(),
            ),
        );
        root.insert(
            "spans".to_string(),
            Value::Object(
                self.spans
                    .iter()
                    .map(|(k, s)| {
                        let mut o = BTreeMap::new();
                        o.insert("count".to_string(), Value::Int(s.count));
                        o.insert("total_ns".to_string(), Value::Int(s.total_ns));
                        o.insert("max_ns".to_string(), Value::Int(s.max_ns));
                        (k.clone(), Value::Object(o))
                    })
                    .collect(),
            ),
        );
        Value::Object(root).to_json()
    }

    /// Parses a snapshot previously produced by [`Snapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Snapshot, JsonError> {
        let bad = |message: &str| JsonError {
            offset: 0,
            message: message.to_string(),
        };
        let root = json::parse(text)?;
        let root = root
            .as_object()
            .ok_or_else(|| bad("snapshot root must be an object"))?;
        let mut snap = Snapshot::default();
        if let Some(counters) = root.get("counters") {
            let counters = counters
                .as_object()
                .ok_or_else(|| bad("\"counters\" must be an object"))?;
            for (k, v) in counters {
                let v = v
                    .as_int()
                    .ok_or_else(|| bad("counter values must be integers"))?;
                snap.counters.insert(k.clone(), v);
            }
        }
        if let Some(gauges) = root.get("gauges") {
            let gauges = gauges
                .as_object()
                .ok_or_else(|| bad("\"gauges\" must be an object"))?;
            for (k, v) in gauges {
                let v = v
                    .as_int()
                    .ok_or_else(|| bad("gauge values must be integers"))?;
                snap.gauges.insert(k.clone(), v);
            }
        }
        if let Some(hists) = root.get("histograms") {
            let hists = hists
                .as_object()
                .ok_or_else(|| bad("\"histograms\" must be an object"))?;
            for (k, v) in hists {
                let o = v
                    .as_object()
                    .ok_or_else(|| bad("histogram entries must be objects"))?;
                let field = |name: &str| {
                    o.get(name)
                        .and_then(Value::as_int)
                        .ok_or_else(|| bad("histogram fields must be integers"))
                };
                let mut buckets = Vec::new();
                if let Some(raw) = o.get("buckets") {
                    for pair in raw
                        .as_array()
                        .ok_or_else(|| bad("\"buckets\" must be an array"))?
                    {
                        let pair = pair
                            .as_array()
                            .ok_or_else(|| bad("bucket entries must be [lower, count]"))?;
                        match pair {
                            [lo, n] => buckets.push((
                                lo.as_int()
                                    .ok_or_else(|| bad("bucket bounds must be integers"))?,
                                n.as_int()
                                    .ok_or_else(|| bad("bucket counts must be integers"))?,
                            )),
                            _ => return Err(bad("bucket entries must be [lower, count]")),
                        }
                    }
                }
                snap.histograms.insert(
                    k.clone(),
                    HistogramSnapshot {
                        count: field("count")?,
                        sum: field("sum")?,
                        max: field("max")?,
                        buckets,
                    },
                );
            }
        }
        if let Some(spans) = root.get("spans") {
            let spans = spans
                .as_object()
                .ok_or_else(|| bad("\"spans\" must be an object"))?;
            for (k, v) in spans {
                let o = v
                    .as_object()
                    .ok_or_else(|| bad("span entries must be objects"))?;
                let field = |name: &str| {
                    o.get(name)
                        .and_then(Value::as_int)
                        .ok_or_else(|| bad("span fields must be integers"))
                };
                snap.spans.insert(
                    k.clone(),
                    SpanSnapshot {
                        count: field("count")?,
                        total_ns: field("total_ns")?,
                        max_ns: field("max_ns")?,
                    },
                );
            }
        }
        Ok(snap)
    }
}

/// Whether a metric name denotes nanosecond durations: a trailing
/// `_ns`, a labelled family segment (`planner.bind_ns.<kind>`), or a
/// label suffix (`serve.request_ns{tenant=a}`).
fn is_duration_name(name: &str) -> bool {
    let (base, _) = crate::labels::split_labels(name);
    base.ends_with("_ns") || base.contains("_ns.")
}

/// Formats nanoseconds as a short human duration.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("a.hits".into(), 3);
        s.gauges.insert("workers".into(), 8);
        s.histograms.insert(
            "bind_ns".into(),
            HistogramSnapshot {
                count: 2,
                sum: 3000,
                max: 2000,
                buckets: vec![(1024, 2)],
            },
        );
        s.spans.insert(
            "prepare/bind".into(),
            SpanSnapshot {
                count: 2,
                total_ns: 3000,
                max_ns: 2000,
            },
        );
        s
    }

    #[test]
    fn json_round_trip() {
        let s = sample();
        assert_eq!(Snapshot::from_json(&s.to_json()).unwrap(), s);
        let empty = Snapshot::default();
        assert_eq!(Snapshot::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn diff_subtracts_and_drops_zeros() {
        let before = sample();
        let mut after = sample();
        *after.counters.get_mut("a.hits").unwrap() = 5;
        let h = after.histograms.get_mut("bind_ns").unwrap();
        h.count = 3;
        h.sum = 4500;
        h.buckets = vec![(1024, 3)];
        let d = after.diff(&before);
        assert_eq!(d.counter("a.hits"), 2);
        assert!(d.gauges.is_empty(), "unchanged gauges drop out");
        let hd = d.histogram("bind_ns").unwrap();
        assert_eq!((hd.count, hd.sum), (1, 1500));
        assert_eq!(hd.buckets, vec![(1024, 1)]);
        assert!(d.span("prepare/bind").is_none(), "unchanged spans drop out");
        assert!(after.diff(&after).is_empty());
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = HistogramSnapshot {
            count: 4,
            sum: 4000,
            max: 1500,
            buckets: vec![(0, 1), (1024, 3)],
        };
        // Rank 1 lands in the zero bucket.
        assert_eq!(h.quantile(0.25), 0);
        // Rank 2 is the first of three samples in [1024, 2048):
        // 1024 + (1/3)·1024 ≈ 1365.
        assert_eq!(h.quantile(0.5), 1365);
        // The top of the top bucket clamps to the recorded max.
        assert_eq!(h.quantile(1.0), 1500);
        assert_eq!(HistogramSnapshot::default().quantile(0.99), 0);
    }

    #[test]
    fn prometheus_rendering_sanitizes_and_cumulates() {
        let mut s = sample();
        s.counters
            .insert("serve.requests{tenant=alice,kind=top_k}".into(), 7);
        let prom = s.to_prometheus();
        assert!(prom.contains("# TYPE a_hits counter"));
        assert!(prom.contains("a_hits 3"));
        assert!(
            prom.contains("serve_requests{tenant=\"alice\",kind=\"top_k\"} 7"),
            "labels become Prometheus labels: {prom}"
        );
        assert!(prom.contains("# TYPE bind_ns histogram"));
        assert!(prom.contains("bind_ns_bucket{le=\"2047\"} 2"));
        assert!(prom.contains("bind_ns_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("bind_ns_sum 3000"));
        assert!(prom.contains("bind_ns_count 2"));
        assert!(prom.contains("tmk_span_count{path=\"prepare/bind\"} 2"));
    }

    #[test]
    fn text_renders_durations() {
        let text = sample().to_text();
        assert!(text.contains("a.hits"));
        assert!(
            text.contains("µs"),
            "ns-suffixed histograms use durations: {text}"
        );
    }
}
