//! Query-scoped timeline profiling.
//!
//! The global [`Registry`](crate::Registry) answers "how much, overall";
//! this module answers "where did *this* query's time go". A
//! [`Recorder`] is a query-scoped context: while a thread holds a
//! [`RecorderScope`] (via [`Recorder::install`] or [`Recorder::scope`]),
//! every span begin/end, instant event (cache hit/miss, plan-kind
//! decision), kernel layer-progress batch, and data-plane byte count on
//! that thread is captured as a timestamped [`TimelineEvent`] in a
//! per-thread append-only buffer. Fleet code clones the `Arc<Recorder>`
//! into its workers (see [`current`]) and installs one scope per worker,
//! so each worker becomes its own lane; queue-wait shows up as the gap
//! before a lane's first event. [`Recorder::finish`] merges the buffers
//! into an [`ExecutionProfile`]: per-phase breakdown, per-worker lanes,
//! and derived throughput.
//!
//! Scoping rules:
//! - Scopes nest per thread; the innermost scope receives the events.
//! - A scope must drop on the thread that installed it (`RecorderScope`
//!   is `!Send`); dropping flushes the thread's buffer into the recorder.
//! - Threads without an installed scope record nothing — the fast path
//!   is a single relaxed atomic load, so idle cost is negligible and the
//!   whole module compiles to no-ops under `obs-off`.
//!
//! Nothing here touches query data: like the metrics layer, the recorder
//! observes clocks and counts only, so profiled runs are bit-identical
//! to unprofiled ones (asserted in `crates/core/tests/observability.rs`).

use crate::snapshot::{Snapshot, SpanSnapshot};
use std::collections::BTreeMap;
use std::sync::Arc;

#[cfg(not(feature = "obs-off"))]
use std::cell::RefCell;
#[cfg(not(feature = "obs-off"))]
use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(feature = "obs-off"))]
use std::sync::Mutex;
#[cfg(not(feature = "obs-off"))]
use std::time::Instant;

/// What a [`TimelineEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`name` is the span name; depth comes from pairing).
    Begin,
    /// The innermost open span closed.
    End,
    /// A point event: cache hit/miss, plan-kind decision, rewind, ….
    Instant,
    /// `value` DP layers were advanced since the previous sample.
    Progress,
    /// `value` data-plane bytes were consumed since the previous sample.
    Bytes,
}

/// One timestamped event in a lane. All payloads are `&'static str`s or
/// integers so recording never allocates.
#[derive(Debug, Clone, Copy)]
pub struct TimelineEvent {
    /// Nanoseconds since the recorder's epoch ([`Recorder::new`]).
    pub t_ns: u64,
    pub kind: EventKind,
    /// Event (or span) name; empty for [`EventKind::End`].
    pub name: &'static str,
    /// Secondary label (e.g. the plan-kind label on a decision event).
    pub detail: &'static str,
    /// Payload for [`EventKind::Progress`]/[`EventKind::Bytes`]; 0 otherwise.
    pub value: u64,
}

/// A finished lane: the events one scope captured, in order.
#[derive(Debug, Clone)]
pub struct Lane {
    /// The label passed to [`Recorder::install`] (e.g. `"worker-3"`).
    pub label: String,
    pub events: Vec<TimelineEvent>,
}

/// A query-scoped event recorder. Create one per query (or per batch),
/// wrap the work in [`Recorder::scope`], share the `Arc` with any worker
/// threads, then [`Recorder::finish`] to get the [`ExecutionProfile`].
#[derive(Debug)]
pub struct Recorder {
    #[cfg(not(feature = "obs-off"))]
    epoch: Instant,
    #[cfg(not(feature = "obs-off"))]
    lanes: Mutex<Vec<Lane>>,
    /// Wire-propagated trace id (0 = none); see [`Recorder::set_trace`].
    #[cfg(not(feature = "obs-off"))]
    trace_id: std::sync::atomic::AtomicU64,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

#[cfg(not(feature = "obs-off"))]
struct ActiveLane {
    recorder: Arc<Recorder>,
    label: String,
    buf: Vec<TimelineEvent>,
}

#[cfg(not(feature = "obs-off"))]
thread_local! {
    /// Stack of scopes installed on this thread; the top receives events.
    static ACTIVE: RefCell<Vec<ActiveLane>> = const { RefCell::new(Vec::new()) };
}

/// Count of installed scopes across all threads: the recording fast path
/// checks this single relaxed atomic before touching any thread-local.
#[cfg(not(feature = "obs-off"))]
static ANY_ACTIVE: AtomicUsize = AtomicUsize::new(0);

impl Recorder {
    /// A fresh recorder; its creation instant is the timeline epoch.
    pub fn new() -> Recorder {
        Recorder {
            #[cfg(not(feature = "obs-off"))]
            epoch: Instant::now(),
            #[cfg(not(feature = "obs-off"))]
            lanes: Mutex::new(Vec::new()),
            #[cfg(not(feature = "obs-off"))]
            trace_id: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Tags this recorder (and the profile it will produce) with a
    /// wire-propagated trace id, so a server-side capture can be
    /// stitched to the client-side capture that requested it. `0` means
    /// untraced; a no-op under `obs-off`.
    pub fn set_trace(&self, trace_id: u64) {
        #[cfg(not(feature = "obs-off"))]
        self.trace_id.store(trace_id, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = trace_id;
    }

    /// The trace id set via [`Recorder::set_trace`] (0 when untraced).
    pub fn trace_id(&self) -> u64 {
        #[cfg(not(feature = "obs-off"))]
        {
            self.trace_id.load(Ordering::Relaxed)
        }
        #[cfg(feature = "obs-off")]
        0
    }

    /// Installs this recorder on the current thread under `label` until
    /// the returned scope drops. Scopes nest; the innermost wins.
    pub fn install(self: &Arc<Self>, label: impl Into<String>) -> RecorderScope {
        #[cfg(not(feature = "obs-off"))]
        {
            ACTIVE.with(|a| {
                a.borrow_mut().push(ActiveLane {
                    recorder: Arc::clone(self),
                    label: label.into(),
                    buf: Vec::new(),
                });
            });
            ANY_ACTIVE.fetch_add(1, Ordering::Relaxed);
        }
        #[cfg(feature = "obs-off")]
        let _ = label.into();
        RecorderScope {
            _not_send: std::marker::PhantomData,
        }
    }

    /// Runs `f` with this recorder installed under the `"main"` label.
    pub fn scope<R>(self: &Arc<Self>, f: impl FnOnce() -> R) -> R {
        let _scope = self.install("main");
        f()
    }

    /// Merges every flushed lane into an [`ExecutionProfile`]. Call
    /// after all scopes have dropped; events from still-installed scopes
    /// are not visible yet.
    pub fn finish(&self) -> ExecutionProfile {
        #[cfg(not(feature = "obs-off"))]
        {
            let lanes = self.lanes.lock().unwrap_or_else(|e| e.into_inner());
            let mut profile = ExecutionProfile::build(elapsed_ns(self.epoch), &lanes);
            profile.trace_id = self.trace_id();
            profile
        }
        #[cfg(feature = "obs-off")]
        ExecutionProfile::default()
    }
}

/// Uninstalls its recorder (and flushes the thread's event buffer into
/// it) on drop. `!Send`: a scope must drop on the thread it was
/// installed on, or lane buffers would interleave.
#[must_use = "a recorder scope stops capturing when its guard drops"]
#[derive(Debug)]
pub struct RecorderScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

#[cfg(not(feature = "obs-off"))]
impl Drop for RecorderScope {
    fn drop(&mut self) {
        ANY_ACTIVE.fetch_sub(1, Ordering::Relaxed);
        let lane = ACTIVE.with(|a| a.borrow_mut().pop());
        if let Some(lane) = lane {
            let mut lanes = lane
                .recorder
                .lanes
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            lanes.push(Lane {
                label: lane.label,
                events: lane.buf,
            });
        }
    }
}

#[cfg(feature = "obs-off")]
impl Drop for RecorderScope {
    fn drop(&mut self) {}
}

#[cfg(not(feature = "obs-off"))]
fn elapsed_ns(epoch: Instant) -> u64 {
    let e = epoch.elapsed().as_nanos();
    if e > u64::MAX as u128 {
        u64::MAX
    } else {
        e as u64
    }
}

/// Nanoseconds since the innermost active recorder's epoch on this
/// thread, or `None` when no scope is installed. Lets callers timestamp
/// external milestones (e.g. "request sent") on the same clock the
/// profile's events use.
pub fn now_ns() -> Option<u64> {
    #[cfg(not(feature = "obs-off"))]
    {
        if ANY_ACTIVE.load(Ordering::Relaxed) == 0 {
            return None;
        }
        ACTIVE.with(|a| a.borrow().last().map(|l| elapsed_ns(l.recorder.epoch)))
    }
    #[cfg(feature = "obs-off")]
    None
}

/// The recorder installed innermost on this thread, if any. Fleet code
/// calls this before spawning workers and hands each worker a clone to
/// [`Recorder::install`] under its own lane label.
pub fn current() -> Option<Arc<Recorder>> {
    #[cfg(not(feature = "obs-off"))]
    {
        if ANY_ACTIVE.load(Ordering::Relaxed) == 0 {
            return None;
        }
        ACTIVE.with(|a| a.borrow().last().map(|l| Arc::clone(&l.recorder)))
    }
    #[cfg(feature = "obs-off")]
    None
}

/// Records one event into the innermost scope on this thread, if any.
#[inline]
fn record(kind: EventKind, name: &'static str, detail: &'static str, value: u64) {
    #[cfg(not(feature = "obs-off"))]
    {
        if ANY_ACTIVE.load(Ordering::Relaxed) == 0 {
            return;
        }
        ACTIVE.with(|a| {
            let mut a = a.borrow_mut();
            if let Some(top) = a.last_mut() {
                let t_ns = elapsed_ns(top.recorder.epoch);
                top.buf.push(TimelineEvent {
                    t_ns,
                    kind,
                    name,
                    detail,
                    value,
                });
            }
        });
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = (kind, name, detail, value);
    }
}

/// Marks a span opening (called by [`span::enter`](crate::span::enter)).
#[inline]
pub fn span_begin(name: &'static str) {
    record(EventKind::Begin, name, "", 0);
}

/// Marks the innermost open span closing.
#[inline]
pub fn span_end() {
    record(EventKind::End, "", "", 0);
}

/// Records a point event (cache hit/miss, rewind, …).
#[inline]
pub fn instant(name: &'static str) {
    record(EventKind::Instant, name, "", 0);
}

/// Records a point event with a secondary label (e.g. the plan kind).
#[inline]
pub fn instant_detail(name: &'static str, detail: &'static str) {
    record(EventKind::Instant, name, detail, 0);
}

/// Records that `layers` DP layers were advanced (the kernel calls this
/// once per batched sweep, so timelines sample layer progress for free).
#[inline]
pub fn progress(layers: u64) {
    record(EventKind::Progress, "kernel.layers", "", layers);
}

/// Records that `n` data-plane bytes were consumed.
#[inline]
pub fn bytes(n: u64) {
    record(EventKind::Bytes, "dataplane.bytes", "", n);
}

/// One lane of a finished profile.
#[derive(Debug, Clone, Default)]
pub struct LaneProfile {
    /// The scope label (`"main"`, `"worker-0"`, …).
    pub label: String,
    /// The lane's events, in timestamp order.
    pub events: Vec<TimelineEvent>,
    /// Total wall time inside top-level spans on this lane.
    pub busy_ns: u64,
}

/// A merged, query-scoped execution profile: what [`Recorder::finish`]
/// returns. Render with [`ExecutionProfile::to_snapshot`] (text/JSON),
/// [`trace::chrome_trace`](crate::trace::chrome_trace) (Perfetto), or
/// [`trace::folded`](crate::trace::folded) (flamegraphs).
#[derive(Debug, Clone, Default)]
pub struct ExecutionProfile {
    /// Wire-propagated trace id this capture belongs to (0 = untraced).
    pub trace_id: u64,
    /// Wall-clock span of the recorder, epoch to `finish`.
    pub wall_ns: u64,
    /// One lane per recorder scope, merged by label, label-sorted.
    pub lanes: Vec<LaneProfile>,
    /// Inclusive per-phase aggregates keyed by "/"-joined span path
    /// (same keying as the global span aggregates).
    pub phases: BTreeMap<String, SpanSnapshot>,
    /// Counts of instant events, keyed `name` or `name/detail`.
    pub instants: BTreeMap<String, u64>,
    /// Total DP layers advanced while recorded.
    pub layers: u64,
    /// Total data-plane bytes consumed while recorded.
    pub bytes: u64,
}

impl ExecutionProfile {
    #[cfg(not(feature = "obs-off"))]
    fn build(wall_ns: u64, raw: &[Lane]) -> ExecutionProfile {
        // Merge scopes that share a label (e.g. a worker index reused
        // across fleet calls) into one lane, then sort events by time.
        let mut by_label: BTreeMap<&str, Vec<TimelineEvent>> = BTreeMap::new();
        for lane in raw {
            by_label
                .entry(lane.label.as_str())
                .or_default()
                .extend_from_slice(&lane.events);
        }
        let mut profile = ExecutionProfile {
            wall_ns,
            ..ExecutionProfile::default()
        };
        for (label, mut events) in by_label {
            events.sort_by_key(|e| e.t_ns);
            let mut lane = LaneProfile {
                label: label.to_string(),
                events,
                busy_ns: 0,
            };
            for e in &lane.events {
                match e.kind {
                    EventKind::Progress => profile.layers += e.value,
                    EventKind::Bytes => profile.bytes += e.value,
                    EventKind::Instant => {
                        let key = if e.detail.is_empty() {
                            e.name.to_string()
                        } else {
                            format!("{}/{}", e.name, e.detail)
                        };
                        *profile.instants.entry(key).or_insert(0) += 1;
                    }
                    EventKind::Begin | EventKind::End => {}
                }
            }
            walk_spans(&lane.events, wall_ns, |path, frame| {
                let stat = profile.phases.entry(path.join("/")).or_default();
                stat.count += 1;
                stat.total_ns = stat.total_ns.saturating_add(frame.inclusive_ns);
                stat.max_ns = stat.max_ns.max(frame.inclusive_ns);
                if path.len() == 1 {
                    lane.busy_ns = lane.busy_ns.saturating_add(frame.inclusive_ns);
                }
            });
            profile.lanes.push(lane);
        }
        profile
    }

    /// Layer throughput over the recorded wall-clock window.
    pub fn layers_per_sec(&self) -> f64 {
        per_sec(self.layers, self.wall_ns)
    }

    /// Data-plane byte throughput over the recorded wall-clock window.
    pub fn bytes_per_sec(&self) -> f64 {
        per_sec(self.bytes, self.wall_ns)
    }

    /// Renders the profile through the existing snapshot machinery:
    /// phases become spans, instants and totals become counters. The
    /// result supports [`Snapshot::to_text`] and [`Snapshot::to_json`].
    pub fn to_snapshot(&self) -> Snapshot {
        let mut counters = BTreeMap::new();
        counters.insert("profile.wall_ns".to_string(), self.wall_ns);
        counters.insert("profile.lanes".to_string(), self.lanes.len() as u64);
        counters.insert("profile.layers".to_string(), self.layers);
        counters.insert("profile.bytes".to_string(), self.bytes);
        for (name, n) in &self.instants {
            counters.insert(format!("profile.instant.{name}"), *n);
        }
        counters.retain(|_, v| *v != 0);
        Snapshot {
            counters,
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans: self.phases.clone(),
        }
    }

    /// Serializes the full profile (lanes, events, phases, instants) to
    /// compact JSON so it can cross the wire — `tmk serve` ships traced
    /// captures back to the client this way. Round-trips via
    /// [`ExecutionProfile::from_json`].
    pub fn to_json(&self) -> String {
        use crate::json::Value;
        let kind_code = |k: EventKind| -> u64 {
            match k {
                EventKind::Begin => 0,
                EventKind::End => 1,
                EventKind::Instant => 2,
                EventKind::Progress => 3,
                EventKind::Bytes => 4,
            }
        };
        let mut root = BTreeMap::new();
        root.insert("trace_id".to_string(), Value::Int(self.trace_id));
        root.insert("wall_ns".to_string(), Value::Int(self.wall_ns));
        root.insert("layers".to_string(), Value::Int(self.layers));
        root.insert("bytes".to_string(), Value::Int(self.bytes));
        root.insert(
            "lanes".to_string(),
            Value::Array(
                self.lanes
                    .iter()
                    .map(|lane| {
                        let mut o = BTreeMap::new();
                        o.insert("label".to_string(), Value::Str(lane.label.clone()));
                        o.insert("busy_ns".to_string(), Value::Int(lane.busy_ns));
                        o.insert(
                            "events".to_string(),
                            Value::Array(
                                lane.events
                                    .iter()
                                    .map(|e| {
                                        Value::Array(vec![
                                            Value::Int(e.t_ns),
                                            Value::Int(kind_code(e.kind)),
                                            Value::Str(e.name.to_string()),
                                            Value::Str(e.detail.to_string()),
                                            Value::Int(e.value),
                                        ])
                                    })
                                    .collect(),
                            ),
                        );
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        root.insert(
            "phases".to_string(),
            Value::Object(
                self.phases
                    .iter()
                    .map(|(k, s)| {
                        let mut o = BTreeMap::new();
                        o.insert("count".to_string(), Value::Int(s.count));
                        o.insert("total_ns".to_string(), Value::Int(s.total_ns));
                        o.insert("max_ns".to_string(), Value::Int(s.max_ns));
                        (k.clone(), Value::Object(o))
                    })
                    .collect(),
            ),
        );
        root.insert(
            "instants".to_string(),
            Value::Object(
                self.instants
                    .iter()
                    .map(|(k, &n)| (k.clone(), Value::Int(n)))
                    .collect(),
            ),
        );
        Value::Object(root).to_json()
    }

    /// Parses a profile produced by [`ExecutionProfile::to_json`].
    ///
    /// Event names and details in the timeline are `&'static str` (so
    /// recording never allocates); deserialized names are interned by
    /// leaking, deduplicated within the call. That bounds the leak at
    /// one copy of each distinct name per parsed profile — fine for the
    /// intended consumer (a short-lived `tmk client --profile` stitching
    /// one server capture per request), not for a long-lived loop.
    pub fn from_json(text: &str) -> Result<ExecutionProfile, crate::json::JsonError> {
        use crate::json::Value;
        let bad = |message: &str| crate::json::JsonError {
            offset: 0,
            message: message.to_string(),
        };
        let mut interned: BTreeMap<String, &'static str> = BTreeMap::new();
        let mut intern = |s: &str| -> &'static str {
            if s.is_empty() {
                return "";
            }
            if let Some(&known) = interned.get(s) {
                return known;
            }
            let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
            interned.insert(s.to_string(), leaked);
            leaked
        };
        let root = crate::json::parse(text)?;
        let root = root
            .as_object()
            .ok_or_else(|| bad("profile root must be an object"))?;
        let int = |name: &str| -> u64 { root.get(name).and_then(Value::as_int).unwrap_or(0) };
        let mut profile = ExecutionProfile {
            trace_id: int("trace_id"),
            wall_ns: int("wall_ns"),
            layers: int("layers"),
            bytes: int("bytes"),
            ..ExecutionProfile::default()
        };
        if let Some(lanes) = root.get("lanes") {
            for lane in lanes
                .as_array()
                .ok_or_else(|| bad("\"lanes\" must be an array"))?
            {
                let o = lane
                    .as_object()
                    .ok_or_else(|| bad("lane entries must be objects"))?;
                let mut out = LaneProfile {
                    label: match o.get("label") {
                        Some(Value::Str(s)) => s.clone(),
                        _ => return Err(bad("lane \"label\" must be a string")),
                    },
                    busy_ns: o.get("busy_ns").and_then(Value::as_int).unwrap_or(0),
                    events: Vec::new(),
                };
                if let Some(events) = o.get("events") {
                    for e in events
                        .as_array()
                        .ok_or_else(|| bad("\"events\" must be an array"))?
                    {
                        let parts = e
                            .as_array()
                            .ok_or_else(|| bad("event entries must be arrays"))?;
                        let [t_ns, kind, name, detail, value] = parts else {
                            return Err(bad("events must be [t_ns, kind, name, detail, value]"));
                        };
                        let kind = match kind.as_int() {
                            Some(0) => EventKind::Begin,
                            Some(1) => EventKind::End,
                            Some(2) => EventKind::Instant,
                            Some(3) => EventKind::Progress,
                            Some(4) => EventKind::Bytes,
                            _ => return Err(bad("unknown event kind code")),
                        };
                        let (Value::Str(name), Value::Str(detail)) = (name, detail) else {
                            return Err(bad("event name/detail must be strings"));
                        };
                        out.events.push(TimelineEvent {
                            t_ns: t_ns.as_int().ok_or_else(|| bad("event t_ns"))?,
                            kind,
                            name: intern(name),
                            detail: intern(detail),
                            value: value.as_int().ok_or_else(|| bad("event value"))?,
                        });
                    }
                }
                profile.lanes.push(out);
            }
        }
        if let Some(phases) = root.get("phases") {
            let phases = phases
                .as_object()
                .ok_or_else(|| bad("\"phases\" must be an object"))?;
            for (k, v) in phases {
                let o = v
                    .as_object()
                    .ok_or_else(|| bad("phase entries must be objects"))?;
                let field = |name: &str| o.get(name).and_then(Value::as_int).unwrap_or(0);
                profile.phases.insert(
                    k.clone(),
                    SpanSnapshot {
                        count: field("count"),
                        total_ns: field("total_ns"),
                        max_ns: field("max_ns"),
                    },
                );
            }
        }
        if let Some(instants) = root.get("instants") {
            let instants = instants
                .as_object()
                .ok_or_else(|| bad("\"instants\" must be an object"))?;
            for (k, v) in instants {
                profile
                    .instants
                    .insert(k.clone(), v.as_int().ok_or_else(|| bad("instant counts"))?);
            }
        }
        Ok(profile)
    }

    /// Grafts a remote capture (e.g. a server-side profile shipped back
    /// over `tmkp`) into this one: remote lanes are appended with their
    /// labels prefixed by `prefix`, their event clocks shifted by
    /// `offset_ns` (the local timestamp at which the remote work was
    /// requested), and phases/instants merged under prefixed keys. The
    /// merged wall clock extends to cover the remote window; a zero
    /// local trace id adopts the remote one.
    pub fn merge_remote(&mut self, remote: &ExecutionProfile, offset_ns: u64, prefix: &str) {
        for lane in &remote.lanes {
            let mut events = lane.events.clone();
            for e in &mut events {
                e.t_ns = e.t_ns.saturating_add(offset_ns);
            }
            self.lanes.push(LaneProfile {
                label: format!("{prefix}{}", lane.label),
                events,
                busy_ns: lane.busy_ns,
            });
        }
        for (path, s) in &remote.phases {
            let stat = self.phases.entry(format!("{prefix}{path}")).or_default();
            stat.count += s.count;
            stat.total_ns = stat.total_ns.saturating_add(s.total_ns);
            stat.max_ns = stat.max_ns.max(s.max_ns);
        }
        for (name, n) in &remote.instants {
            *self.instants.entry(format!("{prefix}{name}")).or_insert(0) += n;
        }
        self.layers += remote.layers;
        self.bytes += remote.bytes;
        self.wall_ns = self.wall_ns.max(offset_ns.saturating_add(remote.wall_ns));
        if self.trace_id == 0 {
            self.trace_id = remote.trace_id;
        }
    }

    /// Prepends a synthetic wait lane: one `name` span covering
    /// `[0, wait_ns)` under `label`, with every existing lane shifted
    /// right by `wait_ns`. `tmk serve` uses this to surface the worker
    /// pool's queue wait (which elapses before any recorder exists) as a
    /// first-class span in traced captures.
    pub fn prepend_wait(&mut self, label: &str, name: &'static str, wait_ns: u64) {
        if wait_ns == 0 {
            return;
        }
        for lane in &mut self.lanes {
            for e in &mut lane.events {
                e.t_ns = e.t_ns.saturating_add(wait_ns);
            }
        }
        self.lanes.insert(
            0,
            LaneProfile {
                label: label.to_string(),
                events: vec![
                    TimelineEvent {
                        t_ns: 0,
                        kind: EventKind::Begin,
                        name,
                        detail: "",
                        value: 0,
                    },
                    TimelineEvent {
                        t_ns: wait_ns,
                        kind: EventKind::End,
                        name: "",
                        detail: "",
                        value: 0,
                    },
                ],
                busy_ns: wait_ns,
            },
        );
        self.wall_ns = self.wall_ns.saturating_add(wait_ns);
        let stat = self.phases.entry(name.to_string()).or_default();
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(wait_ns);
        stat.max_ns = stat.max_ns.max(wait_ns);
    }

    /// A compact human-readable summary (used by bare `--profile`).
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "wall {}  lanes {}  layers {} ({:.0}/s)  bytes {} ({:.0}/s)",
            crate::snapshot::fmt_ns(self.wall_ns),
            self.lanes.len(),
            self.layers,
            self.layers_per_sec(),
            self.bytes,
            self.bytes_per_sec(),
        );
        for lane in &self.lanes {
            let _ = writeln!(
                out,
                "lane {:<12} {:>6} events  busy {}",
                lane.label,
                lane.events.len(),
                crate::snapshot::fmt_ns(lane.busy_ns),
            );
        }
        out.push_str(&self.to_snapshot().to_text());
        out
    }
}

fn per_sec(n: u64, wall_ns: u64) -> f64 {
    if wall_ns == 0 {
        0.0
    } else {
        n as f64 / (wall_ns as f64 / 1e9)
    }
}

/// A reconstructed span occurrence inside one lane.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Frame {
    /// Wall time between the span's begin and end events. (Only read by
    /// `ExecutionProfile::build`, which `obs-off` compiles out.)
    #[cfg_attr(feature = "obs-off", allow(dead_code))]
    pub inclusive_ns: u64,
    /// Inclusive time minus the inclusive time of direct children.
    pub self_ns: u64,
}

/// Replays a lane's Begin/End events, invoking `f` once per completed
/// span with its full path (outermost first). Spans still open at the
/// end of the lane are closed at `wall_ns` so partial captures degrade
/// gracefully instead of losing frames.
#[cfg_attr(feature = "obs-off", allow(dead_code))]
pub(crate) fn walk_spans(
    events: &[TimelineEvent],
    wall_ns: u64,
    mut f: impl FnMut(&[&'static str], Frame),
) {
    struct Open {
        name: &'static str,
        begin_ns: u64,
        child_ns: u64,
    }
    let mut stack: Vec<Open> = Vec::new();
    let close = |stack: &mut Vec<Open>, end_ns: u64, f: &mut dyn FnMut(&[&'static str], Frame)| {
        let top = match stack.pop() {
            Some(t) => t,
            None => return,
        };
        let inclusive_ns = end_ns.saturating_sub(top.begin_ns);
        let mut path: Vec<&'static str> = stack.iter().map(|o| o.name).collect();
        path.push(top.name);
        f(
            &path,
            Frame {
                inclusive_ns,
                self_ns: inclusive_ns.saturating_sub(top.child_ns),
            },
        );
        if let Some(parent) = stack.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(inclusive_ns);
        }
    };
    for e in events {
        match e.kind {
            EventKind::Begin => stack.push(Open {
                name: e.name,
                begin_ns: e.t_ns,
                child_ns: 0,
            }),
            EventKind::End => close(&mut stack, e.t_ns, &mut f),
            _ => {}
        }
    }
    while !stack.is_empty() {
        close(&mut stack, wall_ns, &mut f);
    }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn scope_captures_spans_and_instants() {
        let rec = Arc::new(Recorder::new());
        rec.scope(|| {
            let _s = crate::span::enter("profile_test_outer");
            {
                let _i = crate::span::enter("inner");
                instant_detail("cache", "miss");
                progress(42);
                bytes(1024);
            }
        });
        let p = rec.finish();
        assert_eq!(p.lanes.len(), 1);
        assert_eq!(p.lanes[0].label, "main");
        assert_eq!(p.layers, 42);
        assert_eq!(p.bytes, 1024);
        assert_eq!(p.instants["cache/miss"], 1);
        assert_eq!(p.phases["profile_test_outer"].count, 1);
        let inner = &p.phases["profile_test_outer/inner"];
        assert_eq!(inner.count, 1);
        assert!(p.phases["profile_test_outer"].total_ns >= inner.total_ns);
    }

    #[test]
    fn lanes_merge_by_label_and_threads_need_scopes() {
        let rec = Arc::new(Recorder::new());
        {
            let _a = rec.install("w");
            instant("one");
        }
        {
            let _b = rec.install("w");
            instant("two");
        }
        let unscoped = std::thread::spawn(|| {
            // No scope installed on this thread: nothing recorded.
            instant("dropped");
        });
        unscoped.join().unwrap();
        let p = rec.finish();
        assert_eq!(p.lanes.len(), 1, "same label merges into one lane");
        assert_eq!(p.lanes[0].events.len(), 2);
        assert!(!p.instants.contains_key("dropped"));
    }

    #[test]
    fn nested_scopes_innermost_wins() {
        let outer = Arc::new(Recorder::new());
        let inner = Arc::new(Recorder::new());
        outer.scope(|| {
            instant("outer.before");
            inner.scope(|| instant("inner.only"));
            instant("outer.after");
        });
        let po = outer.finish();
        let pi = inner.finish();
        assert_eq!(po.instants.get("inner.only"), None);
        assert_eq!(pi.instants["inner.only"], 1);
        assert_eq!(po.instants["outer.before"], 1);
        assert_eq!(po.instants["outer.after"], 1);
    }

    #[test]
    fn unbalanced_spans_close_at_wall() {
        let events = [TimelineEvent {
            t_ns: 10,
            kind: EventKind::Begin,
            name: "open",
            detail: "",
            value: 0,
        }];
        let mut seen = Vec::new();
        walk_spans(&events, 100, |path, frame| {
            seen.push((path.join("/"), frame.inclusive_ns));
        });
        assert_eq!(seen, vec![("open".to_string(), 90)]);
    }

    #[test]
    fn profile_json_round_trips_and_merges() {
        let rec = Arc::new(Recorder::new());
        rec.set_trace(0xabcd);
        rec.scope(|| {
            let _s = crate::span::enter("remote_phase_test");
            instant_detail("cache", "hit");
            progress(3);
        });
        let remote = rec.finish();
        assert_eq!(remote.trace_id, 0xabcd);
        let back = ExecutionProfile::from_json(&remote.to_json()).unwrap();
        assert_eq!(back.trace_id, 0xabcd);
        assert_eq!(back.lanes.len(), remote.lanes.len());
        assert_eq!(back.lanes[0].events.len(), remote.lanes[0].events.len());
        assert_eq!(back.phases["remote_phase_test"].count, 1);
        assert_eq!((back.layers, back.instants["cache/hit"]), (3, 1));

        let mut local = ExecutionProfile {
            wall_ns: 500,
            ..ExecutionProfile::default()
        };
        local.merge_remote(&back, 100, "server/");
        assert_eq!(local.trace_id, 0xabcd, "zero local id adopts remote");
        assert!(local.phases.contains_key("server/remote_phase_test"));
        assert_eq!(local.lanes[0].label, "server/main");
        assert!(local.lanes[0].events.iter().all(|e| e.t_ns >= 100));
        assert!(local.wall_ns >= 100 + back.wall_ns);
    }

    #[test]
    fn prepend_wait_adds_a_leading_lane() {
        let rec = Arc::new(Recorder::new());
        rec.scope(|| {
            let _s = crate::span::enter("queued_work_test");
        });
        let mut p = rec.finish();
        let wall = p.wall_ns;
        let first_t = p.lanes[0].events[0].t_ns;
        p.prepend_wait("pool-queue", "pool.queue_wait", 250);
        assert_eq!(p.lanes[0].label, "pool-queue");
        assert_eq!(p.lanes[0].events[0].t_ns, 0);
        assert_eq!(p.lanes[0].events[1].t_ns, 250);
        assert_eq!(p.lanes[1].events[0].t_ns, first_t + 250);
        assert_eq!(p.wall_ns, wall + 250);
        assert_eq!(p.phases["pool.queue_wait"].total_ns, 250);
    }

    #[test]
    fn snapshot_rendering_round_trips() {
        let rec = Arc::new(Recorder::new());
        rec.scope(|| {
            let _s = crate::span::enter("profile_snap_phase");
            progress(7);
        });
        let snap = rec.finish().to_snapshot();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.counter("profile.layers"), 7);
        assert!(back.span("profile_snap_phase").is_some());
    }
}
