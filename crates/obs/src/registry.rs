//! The process-global instrument registry.
//!
//! Instruments live in `static`s at their call sites (planted by the
//! `counter!`/`gauge!`/`histogram!` macros) and register themselves here
//! on first touch; dynamically named instruments (`counter_dyn` etc.,
//! used for per-`PlanKind` phase timings whose names are composed at
//! runtime) live in the registry itself behind `Arc`s. Registration is
//! a one-time mutex hit per call site — recording never touches the
//! registry.
//!
//! If two call sites register the same name, both handles are kept and
//! their values are summed at snapshot time, so a metric name means "the
//! total across everywhere it is recorded".

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{HistogramSnapshot, Snapshot};
use crate::span;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A handle that is either a `static` at a call site or registry-owned.
enum Slot<T: 'static> {
    Static(&'static T),
    Owned(Arc<T>),
}

impl<T> Slot<T> {
    fn get(&self) -> &T {
        match self {
            Slot::Static(t) => t,
            Slot::Owned(t) => t,
        }
    }
}

struct Table<T: 'static> {
    slots: Mutex<BTreeMap<String, Vec<Slot<T>>>>,
}

impl<T: Default> Table<T> {
    fn new() -> Table<T> {
        Table {
            slots: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Vec<Slot<T>>>> {
        self.slots.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn register(&self, name: &str, handle: &'static T) {
        self.lock()
            .entry(name.to_string())
            .or_default()
            .push(Slot::Static(handle));
    }

    fn owned(&self, name: &str) -> Arc<T> {
        let mut slots = self.lock();
        let entry = slots.entry(name.to_string()).or_default();
        for slot in entry.iter() {
            if let Slot::Owned(arc) = slot {
                return Arc::clone(arc);
            }
        }
        let arc = Arc::new(T::default());
        entry.push(Slot::Owned(Arc::clone(&arc)));
        arc
    }

    fn fold<A>(
        &self,
        mut f: impl FnMut(&str, &T) -> A,
        mut merge: impl FnMut(A, A) -> A,
    ) -> BTreeMap<String, A> {
        let slots = self.lock();
        let mut out = BTreeMap::new();
        for (name, handles) in slots.iter() {
            let mut acc: Option<A> = None;
            for h in handles {
                let v = f(name, h.get());
                acc = Some(match acc {
                    None => v,
                    Some(a) => merge(a, v),
                });
            }
            if let Some(a) = acc {
                out.insert(name.clone(), a);
            }
        }
        out
    }
}

/// The registry: every instrument the process has touched.
pub struct Registry {
    counters: Table<Counter>,
    gauges: Table<Gauge>,
    histograms: Table<Histogram>,
}

impl Registry {
    fn new() -> Registry {
        Registry {
            counters: Table::new(),
            gauges: Table::new(),
            histograms: Table::new(),
        }
    }

    /// Registers a call-site `static` counter (used by `counter!`).
    pub fn register_counter(&self, name: &str, c: &'static Counter) {
        self.counters.register(name, c);
    }

    /// Registers a call-site `static` gauge (used by `gauge!`).
    pub fn register_gauge(&self, name: &str, g: &'static Gauge) {
        self.gauges.register(name, g);
    }

    /// Registers a call-site `static` histogram (used by `histogram!`).
    pub fn register_histogram(&self, name: &str, h: &'static Histogram) {
        self.histograms.register(name, h);
    }

    /// A registry-owned counter under a runtime-composed name. Resolve
    /// once and keep the `Arc` — each call takes the registry lock.
    pub fn counter_dyn(&self, name: &str) -> Arc<Counter> {
        self.counters.owned(name)
    }

    /// A registry-owned gauge under a runtime-composed name.
    pub fn gauge_dyn(&self, name: &str) -> Arc<Gauge> {
        self.gauges.owned(name)
    }

    /// A registry-owned histogram under a runtime-composed name.
    pub fn histogram_dyn(&self, name: &str) -> Arc<Histogram> {
        self.histograms.owned(name)
    }

    /// Copies every instrument (and the span aggregates) into an
    /// immutable [`Snapshot`]. Zero-valued instruments are omitted so a
    /// snapshot reflects what actually happened.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot {
            counters: self.counters.fold(|_, c| c.get(), u64::saturating_add),
            gauges: self.gauges.fold(|_, g| g.get(), u64::max),
            histograms: self.histograms.fold(
                |_, h| HistogramSnapshot {
                    count: h.count(),
                    sum: h.sum(),
                    max: h.max(),
                    buckets: h.buckets(),
                },
                merge_hist,
            ),
            spans: span::collect(),
        };
        snap.counters.retain(|_, v| *v != 0);
        snap.gauges.retain(|_, v| *v != 0);
        snap.histograms.retain(|_, h| h.count != 0);
        snap
    }
}

fn merge_hist(a: HistogramSnapshot, b: HistogramSnapshot) -> HistogramSnapshot {
    let mut buckets: BTreeMap<u64, u64> = a.buckets.into_iter().collect();
    for (lo, n) in b.buckets {
        *buckets.entry(lo).or_insert(0) += n;
    }
    HistogramSnapshot {
        count: a.count + b.count,
        sum: a.sum.saturating_add(b.sum),
        max: a.max.max(b.max),
        buckets: buckets.into_iter().collect(),
    }
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn dyn_handles_are_shared_and_snapshot() {
        let c = registry().counter_dyn("test.registry.dyn_counter");
        let c2 = registry().counter_dyn("test.registry.dyn_counter");
        c.add(2);
        c2.inc();
        let snap = registry().snapshot();
        assert_eq!(snap.counter("test.registry.dyn_counter"), 3);
    }

    #[test]
    fn same_name_statics_sum() {
        static A: Counter = Counter::new();
        static B: Counter = Counter::new();
        registry().register_counter("test.registry.twice", &A);
        registry().register_counter("test.registry.twice", &B);
        A.add(1);
        B.add(2);
        assert_eq!(registry().snapshot().counter("test.registry.twice"), 3);
    }
}
