//! Bounded-cardinality labeled instrument families.
//!
//! A *family* is a call-site `static` (planted by the labeled arms of
//! [`counter!`](crate::counter!) / [`gauge!`](crate::gauge!) /
//! [`histogram!`](crate::histogram!)) that fans one metric name out over
//! a fixed set of label **keys** with runtime label **values**:
//!
//! ```
//! use transmark_obs::counter;
//!
//! let tenant = "alice";
//! counter!("serve.requests", tenant = tenant, kind = "confidence").inc();
//! ```
//!
//! Each distinct value combination resolves to a registry-owned
//! instrument under the rendered name `serve.requests{tenant=alice,kind=confidence}`
//! (keys in declaration order), so labeled series are ordinary snapshot
//! entries — `diff`, `to_text`, `to_json`, and the Prometheus renderer
//! all work on them unchanged, and readers recover the dimensions with
//! [`split_labels`].
//!
//! ## Cardinality bounding
//!
//! Labels are attacker-influenced (tenant names arrive over the wire),
//! so every family caps its distinct label sets at
//! [`DEFAULT_LABEL_CAP`]. Once the cap is reached, *new* combinations
//! coalesce into a single overflow series whose every label value is
//! [`OVERFLOW`] (`serve.requests{tenant=other,kind=other}`): the
//! registry stays bounded no matter how many distinct tenants hit the
//! service, and the overflow series makes the coalescing visible rather
//! than silently dropping traffic.
//!
//! Resolution takes a per-family mutex and allocates the rendered name;
//! that is a per-request cost, not a per-layer one — labeled families
//! belong on service edges (requests, sessions), never in kernel loops.
//! Under `obs-off`, [`Family::with`] hands back one shared inert
//! instrument and touches neither the registry nor the family state.

use crate::metrics::{Counter, Gauge, Histogram};
#[cfg(not(feature = "obs-off"))]
use std::collections::HashMap;
#[cfg(not(feature = "obs-off"))]
use std::sync::Mutex;
use std::sync::{Arc, OnceLock};

/// Default bound on distinct label-value combinations per family.
pub const DEFAULT_LABEL_CAP: usize = 64;

/// The label value every dimension takes on the coalesced overflow
/// series once a family's cardinality cap is reached.
pub const OVERFLOW: &str = "other";

/// An instrument type a [`Family`] can fan out (counters, gauges,
/// histograms); `resolve` obtains the shared registry-owned handle for
/// one rendered series name.
pub trait FamilyInstrument: Default + Send + Sync + 'static {
    fn resolve(name: &str) -> Arc<Self>;
}

impl FamilyInstrument for Counter {
    fn resolve(name: &str) -> Arc<Self> {
        crate::registry().counter_dyn(name)
    }
}

impl FamilyInstrument for Gauge {
    fn resolve(name: &str) -> Arc<Self> {
        crate::registry().gauge_dyn(name)
    }
}

impl FamilyInstrument for Histogram {
    fn resolve(name: &str) -> Arc<Self> {
        crate::registry().histogram_dyn(name)
    }
}

#[cfg(not(feature = "obs-off"))]
struct FamilyState<T> {
    /// Rendered full name → shared handle, one entry per distinct
    /// label-value combination (the overflow series lives outside).
    handles: HashMap<String, Arc<T>>,
    overflow: Option<Arc<T>>,
}

/// One labeled metric: a base name, fixed label keys, and a bounded set
/// of per-label-value instruments. Const-constructible so the macros can
/// park one in a `static` at the call site.
pub struct Family<T: FamilyInstrument> {
    // The metadata fields only feed `with` on instrumented builds; the
    // obs-off variant keeps them so `const fn` constructors are
    // feature-independent.
    #[cfg_attr(feature = "obs-off", allow(dead_code))]
    name: &'static str,
    #[cfg_attr(feature = "obs-off", allow(dead_code))]
    keys: &'static [&'static str],
    #[cfg_attr(feature = "obs-off", allow(dead_code))]
    cap: usize,
    #[cfg(not(feature = "obs-off"))]
    state: OnceLock<Mutex<FamilyState<T>>>,
    #[cfg(feature = "obs-off")]
    noop: OnceLock<Arc<T>>,
}

/// A labeled counter family (see the [module docs](self)).
pub type CounterFamily = Family<Counter>;
/// A labeled gauge family.
pub type GaugeFamily = Family<Gauge>;
/// A labeled histogram family.
pub type HistogramFamily = Family<Histogram>;

impl<T: FamilyInstrument> Family<T> {
    /// A family capped at [`DEFAULT_LABEL_CAP`] distinct label sets.
    pub const fn new(name: &'static str, keys: &'static [&'static str]) -> Family<T> {
        Family::with_cap(name, keys, DEFAULT_LABEL_CAP)
    }

    /// A family with an explicit cardinality cap (minimum 1).
    pub const fn with_cap(
        name: &'static str,
        keys: &'static [&'static str],
        cap: usize,
    ) -> Family<T> {
        Family {
            name,
            keys,
            cap: if cap == 0 { 1 } else { cap },
            #[cfg(not(feature = "obs-off"))]
            state: OnceLock::new(),
            #[cfg(feature = "obs-off")]
            noop: OnceLock::new(),
        }
    }

    /// The instrument for one label-value combination (`values` pairs up
    /// positionally with the family's keys). Past the cardinality cap,
    /// unseen combinations share the [`OVERFLOW`] series. Under
    /// `obs-off` this returns a shared inert instrument without touching
    /// the registry.
    pub fn with(&self, values: &[&str]) -> Arc<T> {
        #[cfg(not(feature = "obs-off"))]
        {
            assert_eq!(
                values.len(),
                self.keys.len(),
                "label values must match the family's keys"
            );
            let state = self.state.get_or_init(|| {
                Mutex::new(FamilyState {
                    handles: HashMap::new(),
                    overflow: None,
                })
            });
            let full = render_name(self.name, self.keys, values);
            let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(arc) = st.handles.get(&full) {
                return Arc::clone(arc);
            }
            if st.handles.len() >= self.cap {
                let (name, keys) = (self.name, self.keys);
                let overflow = st.overflow.get_or_insert_with(|| {
                    let vals: Vec<&str> = keys.iter().map(|_| OVERFLOW).collect();
                    T::resolve(&render_name(name, keys, &vals))
                });
                return Arc::clone(overflow);
            }
            let arc = T::resolve(&full);
            st.handles.insert(full, Arc::clone(&arc));
            arc
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = values;
            Arc::clone(self.noop.get_or_init(|| Arc::new(T::default())))
        }
    }

    /// Distinct label-value combinations resolved so far (excluding the
    /// overflow series); always 0 under `obs-off`.
    pub fn cardinality(&self) -> usize {
        #[cfg(not(feature = "obs-off"))]
        {
            self.state.get().map_or(0, |s| {
                s.lock().unwrap_or_else(|e| e.into_inner()).handles.len()
            })
        }
        #[cfg(feature = "obs-off")]
        0
    }
}

/// Renders `name{k1=v1,k2=v2}`. Label values are sanitized so the
/// rendered name stays parseable by [`split_labels`]: the grammar
/// characters `{ } , = "` and whitespace become `_`.
#[cfg(any(test, not(feature = "obs-off")))]
fn render_name(name: &str, keys: &[&str], values: &[&str]) -> String {
    let mut out = String::with_capacity(name.len() + 2 + 16 * keys.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in keys.iter().zip(values).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        for ch in v.chars() {
            out.push(match ch {
                '{' | '}' | ',' | '=' | '"' => '_',
                c if c.is_whitespace() => '_',
                c => c,
            });
        }
    }
    out.push('}');
    out
}

/// Splits a snapshot entry name into its base metric name and label
/// pairs: `"serve.requests{tenant=alice,kind=top_k}"` →
/// `("serve.requests", [("tenant","alice"),("kind","top_k")])`. Names
/// without a label suffix come back with an empty label list.
pub fn split_labels(full: &str) -> (&str, Vec<(&str, &str)>) {
    if let Some(open) = full.find('{') {
        if let Some(inner) = full[open + 1..].strip_suffix('}') {
            let base = &full[..open];
            let mut labels = Vec::new();
            for pair in inner.split(',') {
                if let Some((k, v)) = pair.split_once('=') {
                    labels.push((k, v));
                }
            }
            return (base, labels);
        }
    }
    (full, Vec::new())
}

/// The value of `key` among parsed label pairs, if present.
pub fn label_value<'a>(labels: &[(&'a str, &'a str)], key: &str) -> Option<&'a str> {
    labels.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_labels_round_trips() {
        let full = render_name("serve.requests", &["tenant", "kind"], &["alice", "top_k"]);
        assert_eq!(full, "serve.requests{tenant=alice,kind=top_k}");
        let (base, labels) = split_labels(&full);
        assert_eq!(base, "serve.requests");
        assert_eq!(labels, vec![("tenant", "alice"), ("kind", "top_k")]);
        assert_eq!(label_value(&labels, "tenant"), Some("alice"));
        assert_eq!(label_value(&labels, "nope"), None);
        assert_eq!(split_labels("plain.name"), ("plain.name", vec![]));
    }

    #[test]
    fn values_are_sanitized_into_the_grammar() {
        let full = render_name("m", &["t"], &["a{b}=c,d \"e"]);
        assert_eq!(full, "m{t=a_b__c_d__e}");
        let (base, labels) = split_labels(&full);
        assert_eq!((base, labels.len()), ("m", 1));
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn cardinality_cap_coalesces_into_other() {
        static FAM: CounterFamily = CounterFamily::with_cap("test.labels.capped", &["tenant"], 3);
        for t in ["a", "b", "c"] {
            FAM.with(&[t]).inc();
        }
        assert_eq!(FAM.cardinality(), 3);
        // Past the cap: new combinations share the overflow series...
        FAM.with(&["d"]).add(2);
        FAM.with(&["e"]).inc();
        assert_eq!(FAM.cardinality(), 3, "cap holds");
        // ...while already-admitted combinations keep their own series.
        FAM.with(&["a"]).inc();
        let snap = crate::registry().snapshot();
        assert_eq!(snap.counter("test.labels.capped{tenant=a}"), 2);
        assert_eq!(snap.counter("test.labels.capped{tenant=b}"), 1);
        assert_eq!(snap.counter("test.labels.capped{tenant=other}"), 3);
        assert_eq!(snap.counter("test.labels.capped{tenant=d}"), 0);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn histogram_families_snapshot_like_plain_histograms() {
        static FAM: HistogramFamily = HistogramFamily::new("test.labels.hist_ns", &["kind"]);
        FAM.with(&["confidence"]).record(1000);
        FAM.with(&["confidence"]).record(3000);
        let snap = crate::registry().snapshot();
        let h = snap
            .histogram("test.labels.hist_ns{kind=confidence}")
            .expect("labeled histogram snapshots");
        assert_eq!((h.count, h.sum), (2, 4000));
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn obs_off_families_are_inert() {
        static FAM: CounterFamily = CounterFamily::new("test.labels.off", &["tenant"]);
        FAM.with(&["a"]).inc();
        FAM.with(&["b"]).add(9);
        assert_eq!(FAM.cardinality(), 0);
        assert_eq!(FAM.with(&["a"]).get(), 0);
    }
}
