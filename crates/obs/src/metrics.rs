//! The three primitive instruments: counters, monotonic gauges, and
//! log-bucketed histograms.
//!
//! All three are const-constructible so the `counter!`/`gauge!`/
//! `histogram!` macros can park one in a `static` at the call site, and
//! all updates are relaxed atomics — a recording is one `fetch_add` (or
//! `fetch_max`), never a lock. Relaxed ordering is deliberate: metrics
//! are diagnostics, not synchronization, and a snapshot taken while
//! recorders run is allowed to be a torn-across-instruments view (each
//! individual value is still atomically read).
//!
//! With the `obs-off` feature every mutating method compiles to an empty
//! body, so the instrumented call sites cost nothing beyond the (dead)
//! argument computation the optimizer removes.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: one per power of two of `u64`, plus the
/// zero bucket. Bucket `0` holds exactly the value `0`; bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`.
pub const N_BUCKETS: usize = 64;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "obs-off"))]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = n;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A monotonic high-water mark: `set` only ever raises the stored value.
///
/// Used for quantities where the interesting number is the peak (worker
/// count, largest alphabet seen), so concurrent setters need no
/// read-modify-write loop beyond `fetch_max`.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicU64::new(0),
        }
    }

    /// Raises the gauge to `v` if `v` is larger than the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        #[cfg(not(feature = "obs-off"))]
        self.value.fetch_max(v, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Current high-water mark.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram of `u64` samples (durations in ns, sizes in
/// bytes or entries).
///
/// Power-of-two buckets trade resolution for a fixed footprint: 64
/// atomics cover the entire `u64` range with ≤ 2× relative error, which
/// is plenty for "where did the time go" questions, and recording is two
/// `fetch_add`s plus a `fetch_max` with no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub const fn new() -> Histogram {
        // Inline-const so the non-Copy atomic can seed the array.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; N_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index a value lands in: `0` for `0`, else
    /// `floor(log2(v)) + 1`, clamped into range.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(N_BUCKETS - 1)
        }
    }

    /// The smallest value that lands in bucket `i`.
    #[inline]
    pub fn bucket_lower_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(not(feature = "obs-off"))]
        {
            self.buckets[Histogram::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wraps on overflow; ~584 years of ns).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample.
    #[inline]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The nonzero buckets as `(lower_bound, count)`, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n != 0 {
                out.push((Histogram::bucket_lower_bound(i), n));
            }
        }
        out
    }
}

/// A wall-clock stopwatch whose reads collapse to `0` under `obs-off`,
/// so `histogram.record(timer.elapsed_ns())` is free when compiled out.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    #[cfg(not(feature = "obs-off"))]
    start: std::time::Instant,
}

impl Timer {
    /// Starts the clock (a no-op under `obs-off`).
    #[inline]
    pub fn start() -> Timer {
        Timer {
            #[cfg(not(feature = "obs-off"))]
            start: std::time::Instant::now(),
        }
    }

    /// Nanoseconds since `start`, saturated into `u64`.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        #[cfg(not(feature = "obs-off"))]
        {
            let ns = self.start.elapsed().as_nanos();
            if ns > u64::MAX as u128 {
                u64::MAX
            } else {
                ns as u64
            }
        }
        #[cfg(feature = "obs-off")]
        0
    }

    /// Records the elapsed time into `h` and returns it.
    #[inline]
    pub fn observe(&self, h: &Histogram) -> u64 {
        let ns = self.elapsed_ns();
        h.record(ns);
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), N_BUCKETS - 1);
        for i in 0..N_BUCKETS {
            let lo = Histogram::bucket_lower_bound(i);
            assert_eq!(Histogram::bucket_index(lo), i, "lower bound of bucket {i}");
        }
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn histogram_records() {
        let h = Histogram::new();
        for v in [0, 1, 1, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1007);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.buckets(), vec![(0, 1), (1, 2), (4, 1), (512, 1)]);
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn obs_off_is_inert() {
        let c = Counter::new();
        c.inc();
        let g = Gauge::new();
        g.set(9);
        let h = Histogram::new();
        h.record(7);
        assert_eq!((c.get(), g.get(), h.count()), (0, 0, 0));
        assert_eq!(Timer::start().elapsed_ns(), 0);
    }
}
