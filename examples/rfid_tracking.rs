//! A full sensing pipeline: HMM → observations → posterior Markov
//! sequence → transducer queries (the Lahar-style scenario the paper's
//! introduction motivates).
//!
//! A crash cart random-walks through a corridor of rooms; noisy RFID
//! sensors report positions; we condition the movement HMM on the reads
//! (footnote 1's translation) and ask for the sequence of rooms the cart
//! visited — ranked by best evidence, with exact confidences.
//!
//! Run with: `cargo run --example rfid_tracking`

use rand::{rngs::StdRng, SeedableRng};
use transmark::prelude::*;
use transmark::workloads::rfid::{deployment, RfidSpec};

fn main() -> Result<(), EngineError> {
    let spec = RfidSpec {
        rooms: 3,
        locations_per_room: 2,
        stay_prob: 0.55,
        noise: 0.25,
    };
    let dep = deployment(&spec);
    let mut rng = StdRng::seed_from_u64(2010);

    // Simulate a trajectory and its sensor reads; build the posterior.
    let n = 12;
    let (posterior, truth) = dep.sample_posterior(n, &mut rng);
    println!(
        "simulated {n} steps over {} rooms x {} sub-locations (sensor noise {}%)",
        spec.rooms,
        spec.locations_per_room,
        spec.noise * 100.0
    );
    println!("true trajectory: {}", dep.locations.render(&truth, " "));
    let (map_traj, p) = posterior.most_likely_string();
    println!(
        "MAP trajectory:  {} (posterior p = {p:.4})\n",
        dep.locations.render(&map_traj, " ")
    );

    // Query 1: room-entry sequence (non-selective Mealy-style tracker).
    let tracker = dep.room_tracker(None);
    println!("room-visit sequences, ranked by E_max (top 5):");
    for a in top_k_by_emax(&tracker, &posterior, 5)? {
        let conf = confidence(&tracker, &posterior, &a.output)?;
        println!(
            "  rooms {:<12} E_max = {:.4}  confidence = {:.4}",
            tracker.render_output(&a.output, "→"),
            a.score(),
            conf
        );
    }

    // Query 2: like Figure 2 — only track after the first visit to room 2
    // (say, the lab). Selective: trajectories that never reach room 2 are
    // rejected, so the total answer mass can be < 1.
    let after_lab = dep.room_tracker(Some(2));
    let reach = acceptance_probability(&after_lab.underlying_nfa(), &posterior)?;
    println!("\nPr(cart ever enters room 2) = {reach:.4}");
    println!("post-room-2 visit sequences (top 3):");
    for a in top_k_by_emax(&after_lab, &posterior, 3)? {
        let conf = confidence(&after_lab, &posterior, &a.output)?;
        let rendered = if a.output.is_empty() {
            "ε".to_string()
        } else {
            after_lab.render_output(&a.output, "→")
        };
        println!("  rooms {rendered:<12} confidence = {conf:.4}");
    }
    Ok(())
}
