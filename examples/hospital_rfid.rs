//! The paper's running example, end to end: the Figure 1 Markov sequence,
//! the Figure 2 transducer, Table 1, and the Example 3.4 / 4.2 numbers.
//!
//! Run with: `cargo run --example hospital_rfid`

use transmark::engine::brute;
use transmark::prelude::*;
use transmark::workloads::hospital::{
    hospital_sequence, places, room_tracker, table1_rows, CONF_12,
};

fn main() -> Result<(), EngineError> {
    let mu = hospital_sequence();
    let t = room_tracker();
    let alphabet = mu.alphabet().clone();

    println!(
        "Figure 1: Markov sequence μ[{}] over {} locations",
        mu.len(),
        mu.n_symbols()
    );
    println!(
        "Figure 2: transducer with {} states (deterministic={}, selective={}, uniform={:?})\n",
        t.n_states(),
        t.is_deterministic(),
        t.is_selective(),
        t.uniform_emission()
    );

    // ---- Table 1 ---------------------------------------------------------
    println!("Table 1: random strings and their output");
    println!(
        "{:<8}{:<28}{:>12}   output",
        "string", "value", "probability"
    );
    for row in table1_rows() {
        let s: Vec<SymbolId> = row.string.iter().map(|n| alphabet.sym(n)).collect();
        let p = mu.string_probability(&s).expect("length 5");
        let out = match t.transduce_deterministic(&s) {
            Some(o) if o.is_empty() => "ε".to_string(),
            Some(o) => t.render_output(&o, ""),
            None => "N/A".to_string(),
        };
        println!(
            "{:<8}{:<28}{:>12.4}   {}",
            row.label,
            row.string.join(" "),
            p,
            out
        );
        assert!(
            (p - row.probability).abs() < 1e-9,
            "probability drifted from the paper"
        );
    }

    // ---- Example 3.4: conf(12) -------------------------------------------
    let twelve = places(&["1", "2"]);
    let conf = confidence(&t, &mu, &twelve)?;
    println!("\nExample 3.4: conf(12) = {conf:.4} (paper: {CONF_12})");
    assert!((conf - CONF_12).abs() < 1e-9);

    // ---- Example 4.2: E_max(12) -------------------------------------------
    let emax = emax_of_output(&t, &mu, &twelve)?.exp();
    println!("Example 4.2: E_max(12) = {emax:.4} (paper: 0.3969)");

    // ---- Full evaluation, both orders --------------------------------------
    println!("\nAll answers, ranked by E_max (Theorem 4.3):");
    for a in enumerate_by_emax(&t, &mu)? {
        let c = confidence(&t, &mu, &a.output)?;
        let rendered = if a.output.is_empty() {
            "ε".into()
        } else {
            t.render_output(&a.output, "")
        };
        println!(
            "  {rendered:<6} E_max = {:.4}  confidence = {:.4}",
            a.score(),
            c
        );
    }

    println!("\nGold standard (brute force), ranked by true confidence:");
    for (o, c) in brute::ranked_by_confidence(&t, &mu)? {
        let rendered = if o.is_empty() {
            "ε".into()
        } else {
            t.render_output(&o, "")
        };
        println!("  {rendered:<6} confidence = {c:.4}");
    }
    Ok(())
}
