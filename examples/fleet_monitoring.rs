//! Fleet monitoring with the Lahar-style store: many tracked objects,
//! each a Markov sequence, queried together.
//!
//! The paper's motivating scenario (§1): transmitters on carts and
//! personnel; "one Markov sequence may represent the locations of a
//! particular crash cart … and another the location of a particular
//! doctor". Here a store holds posteriors for a small fleet, and we run
//! the infection-tracing workflow: detect which objects probably visited
//! the contaminated lab, stream the per-time-period probabilities, and
//! pull ranked room-visit traces for the suspicious ones.
//!
//! Run with: `cargo run --example fleet_monitoring`

use rand::{rngs::StdRng, SeedableRng};
use transmark::prelude::*;
use transmark::store::SequenceStore;
use transmark::workloads::rfid::{deployment, RfidSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = RfidSpec {
        rooms: 3,
        locations_per_room: 2,
        stay_prob: 0.55,
        noise: 0.2,
    };
    let dep = deployment(&spec);
    let mut rng = StdRng::seed_from_u64(4);

    // Ingest posteriors for five tracked objects.
    let mut store = SequenceStore::new(dep.locations.as_ref().clone());
    for name in ["cart-A", "cart-B", "doctor-1", "doctor-2", "iv-pump"] {
        let (posterior, _) = dep.sample_posterior(10, &mut rng);
        store.insert(name, posterior)?;
    }
    println!(
        "store: {} streams over {} locations\n",
        store.len(),
        store.alphabet().len()
    );

    // Boolean event query: "ever in room 2" (the lab).
    let lab_query = {
        let k = store.alphabet().len();
        let mut nfa = Nfa::new(k);
        let roam = nfa.add_state(false);
        let seen = nfa.add_state(true);
        for (id, name) in store.alphabet().iter() {
            let in_lab = name.starts_with("r2");
            nfa.add_transition(roam, id, if in_lab { seen } else { roam });
            nfa.add_transition(seen, id, seen);
        }
        nfa
    };

    println!("Pr(visited the lab) per object:");
    for (name, p) in store.event_probability(&lab_query)? {
        println!("  {name:<10} {p:.4}");
    }

    // Detection with a threshold, most probable first.
    let suspicious = store.detect(&lab_query, 0.9)?;
    println!(
        "\nobjects with Pr ≥ 0.9: {:?}",
        suspicious.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );

    // Streaming view for the top hit.
    if let Some((name, _)) = suspicious.first() {
        let series = &store.event_series(&lab_query)?[name];
        println!("\n{name}: Pr(visited lab by time i):");
        let rendered: Vec<String> = series.iter().map(|p| format!("{p:.3}")).collect();
        println!("  [{}]", rendered.join(", "));

        // Ranked room-visit trace for that object.
        let tracker = dep.room_tracker(None);
        println!("\n{name}: room-visit traces (top 3, E_max-ranked, exact confidence):");
        for a in &store.top_k(&tracker, 3)?[name] {
            println!(
                "  {:<14} E_max = {:.4}  conf = {:.4}",
                tracker.render_output(&a.output, "→"),
                a.emax,
                a.confidence
            );
        }
    }

    // Cross-stream conjunction: both carts in the lab at some point
    // (independent objects ⇒ product rule).
    let joint = store.joint_event_probability(&[("cart-A", &lab_query), ("cart-B", &lab_query)])?;
    println!("\nPr(cart-A AND cart-B both visited the lab) = {joint:.4}");

    // Fleet-scale evaluation is embarrassingly parallel.
    let parallel = store.event_probability_parallel(&lab_query, 4)?;
    assert_eq!(parallel.len(), store.len());
    println!(
        "(parallel evaluation over 4 threads agrees on all {} streams)",
        parallel.len()
    );

    // Which objects does the sensor network track worst?
    println!("\nstreams by tracking uncertainty (perplexity, 1 = certain):");
    for (name, px) in store.rank_by_uncertainty() {
        println!("  {name:<10} {px:.3}");
    }
    Ok(())
}
