//! Quickstart: build a Markov sequence, query it with a transducer, and
//! rank the answers.
//!
//! Run with: `cargo run --example quickstart`

use transmark::prelude::*;

fn main() -> Result<(), EngineError> {
    // ---- Data: a 4-step weather forecast as a Markov sequence ----------
    // (In production this would come from an HMM posterior or a CRF —
    // see the other examples.)
    let weather = Alphabet::from_names(["sunny", "rainy"]);
    let (s, r) = (weather.sym("sunny"), weather.sym("rainy"));
    let mut chain = MarkovSequenceBuilder::new(weather.clone(), 4)
        .initial(s, 0.8)
        .initial(r, 0.2);
    for step in 0..3 {
        chain = chain
            .transition(step, s, s, 0.7)
            .transition(step, s, r, 0.3)
            .transition(step, r, s, 0.4)
            .transition(step, r, r, 0.6);
    }
    let chain = chain.build().expect("valid chain");

    // ---- Query: a transducer marking the days the weather flips --------
    let marks = Alphabet::from_names(["=", "!"]);
    let (same, flip) = (marks.sym("="), marks.sym("!"));
    let mut b = Transducer::builder(weather, marks);
    let q0 = b.add_state(true);
    let qs = b.add_state(true);
    let qr = b.add_state(true);
    b.set_initial(q0);
    b.add_transition(q0, s, qs, &[same])?;
    b.add_transition(q0, r, qr, &[same])?;
    b.add_transition(qs, s, qs, &[same])?;
    b.add_transition(qs, r, qr, &[flip])?;
    b.add_transition(qr, r, qr, &[same])?;
    b.add_transition(qr, s, qs, &[flip])?;
    let t = b.build()?;
    println!(
        "query: deterministic={}, mealy={}, uniform={:?}",
        t.is_deterministic(),
        t.is_mealy(),
        t.uniform_emission()
    );

    // ---- Evaluate: all answers, ranked by best evidence, with exact
    //      confidences (polynomial: the machine is deterministic) --------
    println!("\nanswers in decreasing E_max (with exact confidence):");
    for answer in enumerate_by_emax(&t, &chain)? {
        let conf = confidence(&t, &chain, &answer.output)?;
        println!(
            "  {:<6}  E_max = {:.4}   confidence = {:.4}",
            t.render_output(&answer.output, ""),
            answer.score(),
            conf
        );
    }

    // ---- Top-k is just early stopping -----------------------------------
    let top2 = top_k_by_emax(&t, &chain, 2)?;
    println!(
        "\ntop-2 by E_max: {:?}",
        top2.iter()
            .map(|a| t.render_output(&a.output, ""))
            .collect::<Vec<_>>()
    );

    // ---- The most likely world behind the top answer --------------------
    let best = top_by_emax(&t, &chain)?.expect("answers exist");
    println!(
        "\nbest evidence: {}  (p = {:.4}) producing output {:?}",
        chain.alphabet().render(&best.evidence, " "),
        best.prob(),
        t.render_output(&best.output, "")
    );
    Ok(())
}
