//! Speech decoding: phoneme posteriors → ranked word-sequence hypotheses.
//!
//! The paper's first-named application (§1): acoustic observations,
//! hidden phoneme/word sequences. Here a noisy recognizer produces a
//! phoneme posterior Markov sequence, and the lexicon transducer (a
//! vocabulary-trie walker that emits a word each time one completes)
//! turns the engine's ranked evaluation into an n-best word decoder with
//! exact confidences.
//!
//! Run with: `cargo run --example speech_decoding`

use rand::{rngs::StdRng, SeedableRng};
use transmark::prelude::*;
use transmark::workloads::speech::demo_lexicon;

fn main() -> Result<(), EngineError> {
    let lex = demo_lexicon();
    let decoder = lex.transducer()?;
    println!(
        "lexicon: {} words over {} phonemes; decoder has {} states (deterministic = {})",
        lex.words().len(),
        lex.phonemes().len(),
        decoder.n_states(),
        decoder.is_deterministic()
    );

    let mut rng = StdRng::seed_from_u64(2026);
    let (spoken, posterior) = lex.sample_utterance(3, 0.12, &mut rng);
    println!(
        "\nspoken: {:?}   (posterior over {} phoneme positions)",
        lex.words().render(&spoken, " "),
        posterior.len()
    );

    // Probability that the audio decodes to ANY word sequence at all.
    let p_parse = acceptance_probability(&decoder.underlying_nfa(), &posterior)?;
    println!("Pr(phonemes segment into vocabulary words) = {p_parse:.4}\n");

    println!("n-best word hypotheses (E_max-ranked, exact confidences):");
    let ev = Evaluation::new(&decoder, &posterior)?;
    for (rank, h) in ev.top_k_scored(5)?.iter().enumerate() {
        println!(
            "  #{:<2} {:<16} E_max = {:.4}  confidence = {:.4}",
            rank + 1,
            lex.words().render(&h.output, " "),
            h.emax,
            h.confidence
        );
    }

    // Provenance: the most likely phoneme strings behind the top hypothesis.
    if let Some(top) = ev.top()? {
        println!(
            "\nwhy: most likely phoneme evidence for {:?}:",
            lex.words().render(&top.output, " ")
        );
        for e in transmark::engine::evidence::top_k_evidences(&decoder, &posterior, &top.output, 3)?
        {
            println!(
                "  {}  (p = {:.4})",
                posterior.alphabet().render(&e.world, ""),
                e.prob()
            );
        }
    }
    Ok(())
}
