//! Why ranked evaluation is hard — the paper's negative results, made
//! tangible.
//!
//! Theorem 4.4 says no polynomial algorithm approximates the
//! top-confidence answer within any sub-exponential factor, even for
//! one-state Mealy machines; Theorem 5.3 gives a `√n` lower bound for
//! simple s-projectors, and Theorem 5.2 an `n` upper bound. This example
//! runs the gadget families that realize those gaps and prints the
//! measured ratios.
//!
//! Run with: `cargo run --example ranking_pitfalls`

use transmark::engine::brute;
use transmark::prelude::*;
use transmark::sproj::enumerate::imax_of_output;
use transmark::workloads::gadgets::{emax_gap, emax_gap_expected_ratio, imax_gap};

fn main() -> Result<(), EngineError> {
    println!("== Theorem 4.4 regime: one-state Mealy machine ==");
    println!("(confidence of the true top answer / confidence of the E_max-top answer)");
    for n in [2usize, 4, 6, 8, 10] {
        let (t, m) = emax_gap(n);
        let emax_top = top_by_emax(&t, &m)?.expect("answers exist");
        let (conf_top, conf_best) = brute::top_by_confidence(&t, &m)?.expect("answers exist");
        let conf_of_emax_top = confidence(&t, &m, &emax_top.output)?;
        let ratio = conf_best / conf_of_emax_top;
        println!(
            "  n = {n:>2}: E_max picks {:?} (conf {:.5}), truth is {:?} (conf {:.5}) — ratio {:>9.2} (analytic {:.2})",
            t.render_output(&emax_top.output, ""),
            conf_of_emax_top,
            t.render_output(&conf_top, ""),
            conf_best,
            ratio,
            emax_gap_expected_ratio(n),
        );
    }
    println!("  → the gap grows as 1.5^n: exponential, exactly the Thm 4.4 regime.\n");

    println!("== Theorem 5.2/5.3 regime: simple s-projector [*]a[*] ==");
    println!("(true confidence / I_max for the answer \"a\")");
    for n in [2usize, 4, 8, 16, 32] {
        let (p, m) = imax_gap(n);
        let a = [m.alphabet().sym("a")];
        let conf = sproj_confidence(&p, &m, &a)?;
        let imax = imax_of_output(&p, &m, &a)?;
        println!(
            "  n = {n:>2}: conf = {conf:.4}, I_max = {imax:.4} — ratio {:>6.2} (≤ n = {n})",
            conf / imax
        );
    }
    println!("  → the gap grows only linearly: s-projectors are exponentially more");
    println!("    approximable than general transducers (Theorem 5.2), but the ratio");
    println!("    is unbounded, matching the √n-to-n inapproximability window (Thm 5.3).");
    Ok(())
}
