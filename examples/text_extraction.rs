//! Information extraction from noisy (OCR-like) text with s-projectors —
//! the §5 / Example 5.1 scenario.
//!
//! A recognizer's uncertain reading of `"id:42 Name:Carol "` is modeled
//! as a Markov sequence over characters; the query extracts the name
//! following the literal `Name:`, terminated by whitespace. We run all
//! three §5 evaluation modes: exact ranked enumeration of *occurrences*
//! (Theorem 5.7), n-approximate ranked enumeration of *strings*
//! (Theorem 5.2 via `I_max`), and exact confidence per answer
//! (Theorem 5.5).
//!
//! Run with: `cargo run --example text_extraction`

use transmark::prelude::*;
use transmark::workloads::text::{noisy_document, TextSpec};

fn main() -> Result<(), EngineError> {
    let template = "id:42 Name:Carol ";
    let doc = noisy_document(
        template,
        &TextSpec {
            noise: 0.15,
            stickiness: 2.5,
        },
    );
    println!("template: {template:?}");
    println!(
        "model: {} positions, {} character hypotheses, noise 15% (sticky)",
        doc.sequence.len(),
        doc.sequence.n_symbols()
    );
    let (ml, p) = doc.sequence.most_likely_string();
    println!("most likely reading: {:?} (p = {p:.4})\n", doc.render(&ml));

    let extractor = doc.name_extractor()?;

    // ---- Theorem 5.7: indexed occurrences in exact confidence order ----
    println!("top 5 occurrences (Theorem 5.7, exact confidence order):");
    for ia in enumerate_indexed(&extractor, &doc.sequence)?.take(5) {
        println!(
            "  {:?} at position {:<3} confidence = {:.5}",
            doc.render(&ia.output),
            ia.index,
            ia.confidence()
        );
    }

    // ---- Theorem 5.2: distinct strings in decreasing I_max --------------
    println!("\ndistinct extracted strings (decreasing I_max), with exact Thm 5.5 confidence:");
    for r in enumerate_by_imax(&extractor, &doc.sequence)?.take(5) {
        let exact = sproj_confidence(&extractor, &doc.sequence, &r.output)?;
        println!(
            "  {:?}  I_max = {:.5}  exact confidence = {:.5}",
            doc.render(&r.output),
            r.score(),
            exact
        );
    }

    // ---- A second extractor: grab the id digits -------------------------
    let ids = doc.extractor(".*id:", r"\d+", "\\s.*")?;
    println!("\nid extraction (pattern \\d+ after \"id:\"):");
    for r in enumerate_by_imax(&ids, &doc.sequence)?.take(3) {
        println!("  {:?}  I_max = {:.5}", doc.render(&r.output), r.score());
    }
    Ok(())
}
