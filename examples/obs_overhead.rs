//! Metrics-overhead micro-benchmark, driven by `scripts/check.sh`.
//!
//! Prints two lines: `ns_per_iter <N>` — the minimum over several
//! repetitions of the per-call cost of a fixed confidence workload —
//! and `ns_per_iter_recorded <M>` — the same workload timed inside an
//! active query-scoped [`Recorder`](transmark_obs::Recorder), so the
//! timeline-event path (span begin/end, layer progress) is also priced.
//! The check script builds this example twice — default features and
//! `--features obs-off` — and fails if either instrumented figure is
//! more than ~5% above the `obs-off` baseline, which keeps every
//! counter/histogram/span/timeline event on the hot paths honest about
//! its cost.
//!
//! Min-of-N is the standard trick for a noisy shared machine: the
//! minimum is the run least disturbed by scheduling, so it estimates the
//! true cost floor of each configuration.
//!
//! The example doubles as a regression guard for span-path interning:
//! after warm-up, repeated traversals of the same span paths must not
//! grow the interner (each `enter` resolves through a thread-local
//! cache — no allocation, no global lock).

use std::hint::black_box;
use std::time::Instant;

use transmark_automata::Alphabet;
use transmark_core::transducer::Transducer;
use transmark_markov::MarkovSequenceBuilder;

const REPS: usize = 7;
const ITERS: usize = 300;

fn main() {
    // A workload where the DP dominates and the per-layer
    // instrumentation is amortized: identity transducer over a 256-step
    // uniform chain on an 8-symbol alphabet (so each layer moves |Σ|² =
    // 64 transitions — a degenerate 2-symbol layer would mis-measure the
    // fixed per-layer counter cost as a large relative overhead no real
    // query sees), scoring the most likely world.
    let alphabet = Alphabet::of_chars("abcdefgh");
    let m = MarkovSequenceBuilder::new(alphabet.clone(), 256)
        .uniform_all()
        .build()
        .expect("uniform chain builds");
    let mut b = Transducer::builder(alphabet.clone(), alphabet);
    let q = b.add_state(true);
    for s in 0..8u32 {
        let s = transmark_automata::SymbolId(s);
        b.add_transition(q, s, q, &[s])
            .expect("identity transition");
    }
    let t = b.build().expect("identity transducer builds");
    let (o, _) = m.most_likely_string();

    let plan = transmark_core::prepare(&t);
    // Pin the sparse CSR walk: this guard prices the *instrumentation*,
    // so the underlying workload must stay fixed even when the planner
    // learns a faster strategy for it (a faster denominator would turn
    // the same absolute counter cost into a budget-busting ratio).
    let bound = plan
        .bind_with_strategy(&m, Some(transmark_core::plan::Strategy::Sparse))
        .expect("alphabets match");
    // Warm-up: fault in caches and pages before timing.
    for _ in 0..10 {
        black_box(bound.confidence(black_box(&o)).expect("valid output"));
    }

    // The warm-up above interned every span path this workload touches;
    // the timed runs below must not mint new ones (satellite of the
    // interning fix: repeat `enter`s hit the thread-local cache).
    let interned_after_warmup = transmark_obs::span::interned_paths();

    let mut best = u128::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(bound.confidence(black_box(&o)).expect("valid output"));
        }
        best = best.min(start.elapsed().as_nanos() / ITERS as u128);
    }
    println!("ns_per_iter {best}");

    // Same workload, but with a query-scoped recorder active, so every
    // span also appends timeline events. This is the figure the 5%
    // guard compares against the obs-off baseline to price profiling.
    let recorder = std::sync::Arc::new(transmark_obs::Recorder::new());
    let mut best_recorded = u128::MAX;
    for _ in 0..REPS {
        let scope = recorder.install("main".to_string());
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(bound.confidence(black_box(&o)).expect("valid output"));
        }
        best_recorded = best_recorded.min(start.elapsed().as_nanos() / ITERS as u128);
        drop(scope);
    }
    println!("ns_per_iter_recorded {best_recorded}");

    if transmark_obs::enabled() {
        let profile = recorder.finish();
        assert!(
            profile.phases.contains_key("execute"),
            "recorded runs must capture the execute phase"
        );
        assert_eq!(
            transmark_obs::span::interned_paths(),
            interned_after_warmup,
            "timed runs re-interned span paths: the thread-local id cache regressed"
        );
    }
}
