//! Metrics-overhead micro-benchmark, driven by `scripts/check.sh`.
//!
//! Prints one line, `ns_per_iter <N>`: the minimum over several
//! repetitions of the per-call cost of a fixed confidence workload. The
//! check script builds this example twice — default features and
//! `--features obs-off` — and fails if the instrumented build is more
//! than ~5% slower, which keeps every counter/histogram/span on the hot
//! paths honest about its cost.
//!
//! Min-of-N is the standard trick for a noisy shared machine: the
//! minimum is the run least disturbed by scheduling, so it estimates the
//! true cost floor of each configuration.

use std::hint::black_box;
use std::time::Instant;

use transmark_automata::Alphabet;
use transmark_core::transducer::Transducer;
use transmark_markov::MarkovSequenceBuilder;

const REPS: usize = 7;
const ITERS: usize = 300;

fn main() {
    // A workload where the DP dominates and the per-layer
    // instrumentation is amortized: identity transducer over a 256-step
    // uniform chain on an 8-symbol alphabet (so each layer moves |Σ|² =
    // 64 transitions — a degenerate 2-symbol layer would mis-measure the
    // fixed per-layer counter cost as a large relative overhead no real
    // query sees), scoring the most likely world.
    let alphabet = Alphabet::of_chars("abcdefgh");
    let m = MarkovSequenceBuilder::new(alphabet.clone(), 256)
        .uniform_all()
        .build()
        .expect("uniform chain builds");
    let mut b = Transducer::builder(alphabet.clone(), alphabet);
    let q = b.add_state(true);
    for s in 0..8u32 {
        let s = transmark_automata::SymbolId(s);
        b.add_transition(q, s, q, &[s])
            .expect("identity transition");
    }
    let t = b.build().expect("identity transducer builds");
    let (o, _) = m.most_likely_string();

    let plan = transmark_core::prepare(&t);
    let bound = plan.bind(&m).expect("alphabets match");
    // Warm-up: fault in caches and pages before timing.
    for _ in 0..10 {
        black_box(bound.confidence(black_box(&o)).expect("valid output"));
    }

    let mut best = u128::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(bound.confidence(black_box(&o)).expect("valid output"));
        }
        best = best.min(start.elapsed().as_nanos() / ITERS as u128);
    }
    println!("ns_per_iter {best}");
}
