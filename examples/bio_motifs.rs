//! Motif scanning over uncertain DNA reads — the paper's computational-
//! biology application (§1, citing HMMER-style sequence matching).
//!
//! A sequencer's base calls are uncertain; we model a read as a Markov
//! sequence over {A,C,G,T} with bursty miscalls, then (1) extract motif
//! occurrences with an indexed s-projector — ranked by exact confidence —
//! and (2) run a Boolean composition query ("contains a G/C run of
//! length ≥ 4") whose per-position probability stream localizes the
//! signal.
//!
//! Run with: `cargo run --example bio_motifs`

use transmark::prelude::*;
use transmark::workloads::bio::{gc_run_query, uncertain_read, ReadSpec};

fn main() -> Result<(), EngineError> {
    let reference = "TACGATGGGCGATTA";
    let read = uncertain_read(
        reference,
        &ReadSpec {
            error_rate: 0.08,
            burstiness: 3.0,
        },
    );
    println!("reference: {reference}");
    let (ml, p) = read.sequence.most_likely_string();
    println!("most likely call: {} (p = {p:.4})\n", read.render(&ml));

    // Motif extraction: occurrences of GAT, ranked by confidence (Thm 5.7).
    let motif = "GAT";
    let extractor = read.motif_extractor(motif)?;
    println!("occurrences of {motif} (exact confidence order):");
    for hit in enumerate_indexed(&extractor, &read.sequence)?.take(5) {
        println!(
            "  position {:<3} {}  confidence = {:.4}",
            hit.index,
            read.render(&hit.output),
            hit.confidence()
        );
    }

    // Plain (non-indexed) confidence: Pr(the read contains GAT at all).
    let motif_syms: Vec<SymbolId> = motif
        .chars()
        .map(|c| read.sequence.alphabet().sym(&c.to_string()))
        .collect();
    let anywhere = sproj_confidence(&extractor, &read.sequence, &motif_syms)?;
    println!("\nPr(read contains {motif}) = {anywhere:.4}  (Theorem 5.5, union over occurrences)");

    // Composition signal: G/C run of length ≥ 4, streamed per position.
    let q = gc_run_query(4);
    let total = acceptance_probability(&q, &read.sequence)?;
    let series = prefix_acceptance_probabilities(&q, &read.sequence)?;
    println!("\nPr(G/C run ≥ 4 anywhere) = {total:.4}");
    println!("cumulative by position:");
    let rendered: Vec<String> = series.iter().map(|v| format!("{v:.3}")).collect();
    println!("  [{}]", rendered.join(", "));
    Ok(())
}
