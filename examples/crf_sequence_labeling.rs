//! Sequence labeling with a linear-chain CRF front-end — the second
//! statistical model the paper names as a Markov-sequence producer
//! (§1: "other statistical models, notably Chain CRFs [37]").
//!
//! A toy part-of-speech-style tagger: a chain CRF over labels
//! {Det, Noun, Verb} whose factors encode transition preferences and
//! per-token evidence. The normalized CRF distribution *is* a Markov
//! sequence, so the entire query engine applies: here we ask for the
//! label patterns ranked by best evidence, and for the probability that
//! the sentence contains a verb phrase (Det Noun Verb in order).
//!
//! Run with: `cargo run --example crf_sequence_labeling`

use transmark::markov::factors::chain_from_factors;
use transmark::prelude::*;

fn main() -> Result<(), EngineError> {
    let labels = Alphabet::from_names(["Det", "Noun", "Verb"]);
    let (det, noun, verb) = (labels.sym("Det"), labels.sym("Noun"), labels.sym("Verb"));

    // Tokens of the sentence: "the dog barks loudly" (4 positions).
    // Per-token emission scores (how well each label fits each token):
    let emissions: [[f64; 3]; 4] = [
        [5.0, 0.2, 0.1], // "the"   — almost surely Det
        [0.1, 3.0, 1.0], // "dog"   — Noun, maybe Verb
        [0.1, 1.0, 3.0], // "barks" — Verb, maybe Noun
        [0.2, 0.7, 0.7], // "loudly"— ambiguous
    ];
    // Transition compatibility (label bigram potential).
    let trans: [[f64; 3]; 3] = [
        [0.1, 4.0, 0.3], // Det → mostly Noun
        [0.3, 1.0, 3.0], // Noun → often Verb
        [1.0, 1.5, 0.5], // Verb → Det/Noun
    ];

    // Chain factors: φ₀(ℓ) = emission₀(ℓ); ψᵢ(ℓ, ℓ') = trans(ℓ,ℓ')·emissionᵢ₊₁(ℓ').
    let phi0 = emissions[0].to_vec();
    let factors: Vec<Vec<f64>> = (1..4)
        .map(|i| {
            let mut f = vec![0.0; 9];
            for a in 0..3 {
                for b in 0..3 {
                    f[a * 3 + b] = trans[a][b] * emissions[i][b];
                }
            }
            f
        })
        .collect();
    let posterior =
        chain_from_factors(labels.clone(), &phi0, &factors).expect("the CRF has positive mass");
    println!("CRF posterior over label sequences (4 tokens, 3 labels)");
    let (map, p) = posterior.most_likely_string();
    println!("MAP labeling: {} (p = {p:.4})\n", labels.render(&map, " "));

    // Query 1: the label sequence itself, ranked (identity Mealy machine).
    let mut b = Transducer::builder(labels.clone(), labels.clone());
    let q = b.add_state(true);
    for (id, _) in labels.iter() {
        b.add_transition(q, id, q, &[id])?;
    }
    let identity = b.build()?;
    println!("top 5 labelings with exact confidence:");
    for a in top_k_by_emax(&identity, &posterior, 5)? {
        let conf = confidence(&identity, &posterior, &a.output)?;
        println!("  {}  conf = {conf:.4}", labels.render(&a.output, " "));
    }

    // Query 2: Pr(the sentence contains Det Noun Verb consecutively) —
    // a Boolean Lahar-style query via acceptance probability.
    let mut nfa = Nfa::new(3);
    let q0 = nfa.add_state(false);
    let q1 = nfa.add_state(false);
    let q2 = nfa.add_state(false);
    let acc = nfa.add_state(true);
    for s in [det, noun, verb] {
        nfa.add_transition(q0, s, q0);
        nfa.add_transition(acc, s, acc);
        // Nondeterministically start matching.
    }
    nfa.add_transition(q0, det, q1);
    nfa.add_transition(q1, noun, q2);
    nfa.add_transition(q2, verb, acc);
    let p_dnv = acceptance_probability(&nfa, &posterior)?;
    println!("\nPr(labels contain \"Det Noun Verb\") = {p_dnv:.4}");

    // Streaming version: the probability the pattern has appeared by each
    // prefix (Lahar's per-time-period Boolean query).
    let series = transmark::engine::confidence::prefix_acceptance_probabilities(&nfa, &posterior)?;
    println!("by position: {series:.4?}");
    Ok(())
}
