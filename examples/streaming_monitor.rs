//! Streaming event monitoring: Boolean queries over a Markov stream that
//! is never stored (the CLARO-style high-volume regime of §6).
//!
//! The sensor fusion layer pushes one transition matrix per tick; the
//! [`EventMonitor`] folds it in and reports the up-to-date probability
//! that the query has become true, in memory independent of stream
//! length.
//!
//! Run with: `cargo run --example streaming_monitor`

use transmark::prelude::*;

fn main() -> Result<(), EngineError> {
    // Query over {ok, warn, fail}: "two consecutive warns, or any fail".
    let alphabet = Alphabet::from_names(["ok", "warn", "fail"]);
    let (ok, warn, fail) = (
        alphabet.sym("ok"),
        alphabet.sym("warn"),
        alphabet.sym("fail"),
    );
    let mut query = Nfa::new(3);
    let calm = query.add_state(false);
    let warned = query.add_state(false);
    let tripped = query.add_state(true);
    query.add_transition(calm, ok, calm);
    query.add_transition(calm, warn, warned);
    query.add_transition(calm, fail, tripped);
    query.add_transition(warned, ok, calm);
    query.add_transition(warned, warn, tripped);
    query.add_transition(warned, fail, tripped);
    for s in [ok, warn, fail] {
        query.add_transition(tripped, s, tripped);
    }

    // Tick 1: the system starts healthy (but not certainly).
    let mut monitor = EventMonitor::start(query, &[0.95, 0.05, 0.0])?;
    println!("t = 1: Pr(alert condition) = {:.5}", monitor.probability());

    // The stream: mostly-healthy dynamics, degrading mid-stream.
    let healthy = [
        0.97, 0.02, 0.01, //
        0.80, 0.15, 0.05, //
        0.10, 0.30, 0.60,
    ];
    let degraded = [
        0.60, 0.30, 0.10, //
        0.30, 0.50, 0.20, //
        0.05, 0.25, 0.70,
    ];
    for t in 2..=12 {
        let matrix: &[f64] = if t <= 6 { &healthy } else { &degraded };
        let p = monitor.advance(matrix)?;
        let phase = if t <= 6 { "healthy " } else { "degraded" };
        let bar = "#".repeat((p * 40.0).round() as usize);
        println!("t = {t:<2} ({phase}): Pr(alert) = {p:.5}  {bar}");
        if p > 0.5 {
            println!("      → alert threshold crossed; paging the on-call.");
            break;
        }
    }
    println!(
        "\nmonitor consumed {} ticks with O(1) memory per tick",
        monitor.len()
    );
    Ok(())
}
