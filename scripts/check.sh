#!/usr/bin/env bash
# The full pre-submit gate: formatting, lints, release build, tests
# (default and obs-off features), and the metrics-overhead guard.
# Run from anywhere inside the repository.
#
# Also: `scripts/check.sh --bench-diff BASE.json NEW.json` compares two
# `tmk bench --json` snapshots and exits non-zero if any case regressed
# by more than 15% — the perf-trajectory harness for stacked PRs.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--bench-diff" ]; then
  if [ $# -ne 3 ]; then
    echo "usage: scripts/check.sh --bench-diff BASE.json NEW.json" >&2
    exit 2
  fi
  cargo build -q --release --bin tmk
  exec target/release/tmk bench --diff "$2" "$3"
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# The obs-off feature only exists on the crates that carry
# instrumentation, so it cannot be toggled workspace-wide; the root
# package forwards it through every instrumented crate.
echo "==> cargo test -q --features obs-off (root + core observability)"
cargo test -q --features obs-off
cargo test -q -p transmark-core --features obs-off

echo "==> metrics overhead guard (examples/obs_overhead)"
# Build both configurations first (the second build overwrites the
# example path, so the instrumented binary is copied aside), then run
# them interleaved and compare minima: back-to-back build-then-run
# measurements are contaminated by the build's own machine load, which
# dwarfs the ~2% effect this guard polices.
#
# The example prints two figures — `ns_per_iter` (counters + spans) and
# `ns_per_iter_recorded` (the same workload inside an active profiler
# Recorder) — and both must stay within the 5% budget relative to the
# obs-off baseline.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
cargo build -q --release --example obs_overhead
cp target/release/examples/obs_overhead "$tmpdir/obs_on"
cargo build -q --release --example obs_overhead --features obs-off
cp target/release/examples/obs_overhead "$tmpdir/obs_off"
on=""
rec=""
off=""
for _ in 1 2 3; do
  out=$("$tmpdir/obs_on")
  r=$(echo "$out" | awk '/^ns_per_iter /{print $2}')
  if [ -z "$on" ] || [ "$r" -lt "$on" ]; then on=$r; fi
  r=$(echo "$out" | awk '/^ns_per_iter_recorded /{print $2}')
  if [ -z "$rec" ] || [ "$r" -lt "$rec" ]; then rec=$r; fi
  r=$("$tmpdir/obs_off" | awk '/^ns_per_iter /{print $2}')
  if [ -z "$off" ] || [ "$r" -lt "$off" ]; then off=$r; fi
done
echo "    instrumented ${on} ns/iter, recorded ${rec} ns/iter vs obs-off ${off} ns/iter (min of 3 interleaved)"
awk -v on="$on" -v rec="$rec" -v off="$off" 'BEGIN {
  ratio = on / off
  rratio = rec / off
  printf "    ratio %.3f, recorded ratio %.3f (budget 1.05)\n", ratio, rratio
  if (ratio > 1.05) { print "metrics overhead exceeds the ~5% budget"; exit 1 }
  if (rratio > 1.05) { print "profiler recording overhead exceeds the ~5% budget"; exit 1 }
}'

echo "All checks passed."
