#!/usr/bin/env bash
# The full pre-submit gate: formatting, lints, release build, tests.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "All checks passed."
