#!/usr/bin/env bash
# The full pre-submit gate: formatting, lints, release build, tests
# (default and obs-off features), and the metrics-overhead guard.
# Run from anywhere inside the repository.
#
# Also: `scripts/check.sh --bench-diff BASE.json NEW.json` compares two
# `tmk bench --json` snapshots and exits non-zero if any case regressed
# by more than 15% — the perf-trajectory harness for stacked PRs.
#
# Also: `scripts/check.sh --serve-smoke` runs only the `tmk serve`
# end-to-end smoke test (daemon on an ephemeral port, client query,
# streamed .tmsb session, HTTP + Prometheus metrics scrapes, slow-query
# event log, `tmk top` dashboard frame, graceful shutdown).
#
# Also: `scripts/check.sh --monitor-smoke` runs only the incremental
# smoke test (8-stream `tmk monitor` bit-compared to solo runs,
# mid-stream checkpoint/resume, window-slide ≥5x speedup floor).
set -euo pipefail
cd "$(dirname "$0")/.."

# End-to-end smoke of the service layer against a release binary.
serve_smoke() {
  echo "==> tmk serve smoke test (ephemeral port, client + stream + metrics + log + top + shutdown)"
  local dir tmk addr pid got want
  tmk=target/release/tmk
  dir=$(mktemp -d)
  pid=""
  # Clean up the scratch dir and any still-running daemon on every exit
  # path, including mid-test assertion failures.
  trap 'kill "$pid" 2>/dev/null || true; rm -rf "$dir"' RETURN
  "$tmk" export-example "$dir" >/dev/null
  "$tmk" convert "$dir/hospital.tms" "$dir/hospital.tmsb" >/dev/null

  # --slow-ms 0 flags every request slow, so the event log must end up
  # with slow_query records carrying the plan explain and phase timings.
  "$tmk" serve 127.0.0.1:0 --slow-ms 0 --log "$dir/events.jsonl" \
    >"$dir/serve.log" 2>&1 &
  pid=$!
  addr=""
  for _ in $(seq 1 100); do
    addr=$(awk '/^tmk serve listening on /{print $5; exit}' "$dir/serve.log" 2>/dev/null || true)
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "serve smoke: server never printed its address" >&2
    cat "$dir/serve.log" >&2 || true
    return 1
  fi
  echo "    serving on $addr"

  # A self-contained query: the paper's top answer with its confidence.
  got=$("$tmk" client "$addr" top "$dir/room_tracker.tmt" "$dir/hospital.tms" --k 1)
  case "$got" in
    *"confidence = 0.403800"*) ;;
    *) echo "serve smoke: top query failed: $got" >&2; return 1 ;;
  esac
  # The same confidence over a chunked stream session, bit-identical to
  # the in-process answer.
  got=$("$tmk" client "$addr" stream "$dir/room_tracker.tmt" "$dir/hospital.tmsb" 1 2 --chunk 16)
  want=$("$tmk" confidence "$dir/hospital.tms" "$dir/room_tracker.tmt" 1 2)
  if [ "$got" != "$want" ]; then
    echo "serve smoke: streamed confidence $got != local $want" >&2
    return 1
  fi
  # Metrics over tmkp and over plain HTTP on the same port.
  got=$("$tmk" client "$addr" metrics)
  case "$got" in
    *"serve.queries"*) ;;
    *) echo "serve smoke: tmkp metrics scrape failed" >&2; return 1 ;;
  esac
  exec 3<>"/dev/tcp/${addr%:*}/${addr##*:}"
  printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
  got=$(cat <&3)
  exec 3>&-
  case "$got" in
    *"serve.connections"*) ;;
    *) echo "serve smoke: HTTP metrics scrape failed" >&2; return 1 ;;
  esac
  # The Prometheus exposition endpoint on the same port.
  exec 3<>"/dev/tcp/${addr%:*}/${addr##*:}"
  printf 'GET /metrics.prom HTTP/1.0\r\n\r\n' >&3
  got=$(cat <&3)
  exec 3>&-
  case "$got" in
    *"# TYPE serve_connections counter"*) ;;
    *) echo "serve smoke: /metrics.prom scrape failed" >&2; return 1 ;;
  esac
  # One tmk top frame over /metrics.json: headers and footer render.
  got=$("$tmk" top "$addr" --interval 50 --count 1)
  case "$got" in
    *"tmk top — $addr"*"plan cache hit"*) ;;
    *) echo "serve smoke: tmk top frame failed: $got" >&2; return 1 ;;
  esac

  # Graceful shutdown: the client gets an ack and the daemon exits.
  got=$("$tmk" client "$addr" shutdown)
  case "$got" in
    *acknowledged*) ;;
    *) echo "serve smoke: shutdown not acknowledged" >&2; return 1 ;;
  esac
  for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "$pid" 2>/dev/null; then
    echo "serve smoke: server did not exit after shutdown" >&2
    kill "$pid" 2>/dev/null || true
    return 1
  fi
  # The structured event log: with --slow-ms 0 every query produces a
  # slow_query record with its plan explain and phase breakdown.
  if ! grep -q '"kind":"request_start"' "$dir/events.jsonl"; then
    echo "serve smoke: event log has no request_start records" >&2
    cat "$dir/events.jsonl" >&2 || true
    return 1
  fi
  if ! grep -q '"kind":"slow_query".*plan:' "$dir/events.jsonl"; then
    echo "serve smoke: event log has no slow_query record with a plan explain" >&2
    cat "$dir/events.jsonl" >&2 || true
    return 1
  fi
  echo "    serve smoke passed"
}

# End-to-end smoke of the incremental layer: a multiplexed monitor over
# many streams bit-compared to solo runs, a mid-stream checkpoint
# resumed bit-identically, and the window-slide vs recompute speedup
# floor from the bench suite.
monitor_smoke() {
  echo "==> tmk monitor smoke (8 streams, checkpoint mid-stream, resume, bit-compare)"
  local dir tmk solo want got full resumed i
  tmk=target/release/tmk
  dir=$(mktemp -d)
  trap 'rm -rf "$dir"' RETURN
  "$tmk" export-example "$dir" >/dev/null
  # 8 streams of the example sequence, mixed on-disk formats.
  local streams=()
  for i in 1 2 3 4; do
    cp "$dir/hospital.tms" "$dir/s$i.tms"
    streams+=("$dir/s$i.tms")
  done
  for i in 5 6 7 8; do
    "$tmk" convert "$dir/hospital.tms" "$dir/s$i.tmsb" >/dev/null
    streams+=("$dir/s$i.tmsb")
  done

  # The multiplexed per-stream series (3 workers) must be byte-identical
  # to running each stream alone.
  solo=$("$tmk" stream "$dir/room_tracker.tmt" "$dir/hospital.tms")
  want=""
  for i in "${streams[@]}"; do
    want+="== $i"$'\n'"$solo"$'\n'
  done
  got=$("$tmk" monitor "$dir/room_tracker.tmt" "${streams[@]}" --series --threads 3)
  if [ "$got" != "${want%$'\n'}" ]; then
    echo "monitor smoke: multiplexed series differs from solo streams" >&2
    diff <(printf '%s' "${want%$'\n'}") <(printf '%s' "$got") >&2 || true
    return 1
  fi

  # Checkpoint one stream mid-flight, resume, and bit-compare the tail
  # against the uninterrupted run.
  full=$solo
  "$tmk" stream "$dir/room_tracker.tmt" "$dir/s1.tms" \
    --checkpoint-at 2 --checkpoint-out "$dir/mid.ckpt" >/dev/null
  resumed=$("$tmk" stream "$dir/room_tracker.tmt" "$dir/s1.tms" --resume "$dir/mid.ckpt")
  if [ "$(echo "$resumed" | tail -n 2)" != "$(echo "$full" | tail -n 2)" ]; then
    echo "monitor smoke: resumed stream tail differs from uninterrupted run" >&2
    printf 'full:\n%s\nresumed:\n%s\n' "$full" "$resumed" >&2
    return 1
  fi

  # The O(k²) window slide must hold its ≥5× per-tick floor over the
  # from-scratch recompute (window_recompute samples 1 tick in 128, so
  # per-tick costs are min_ns/256 vs min_ns/32768).
  "$tmk" bench --runs 2 --iters 3 --json "$dir/bench.json" >/dev/null
  jq -e '
    (.cases["window_recompute/2e15"].min_ns / 256) as $rec
    | (.cases["window_slide/2e15"].min_ns / 32768) as $slide
    | ($rec / $slide) as $speedup
    | if $speedup >= 5 then
        "    window slide \($speedup | floor)x faster per tick than recompute"
      else
        error("window slide only \($speedup)x faster than recompute (floor: 5x)")
      end' -r "$dir/bench.json"

  echo "    monitor smoke passed"
}

if [ "${1:-}" = "--bench-diff" ]; then
  if [ $# -ne 3 ]; then
    echo "usage: scripts/check.sh --bench-diff BASE.json NEW.json" >&2
    exit 2
  fi
  cargo build -q --release --bin tmk
  exec target/release/tmk bench --diff "$2" "$3"
fi

if [ "${1:-}" = "--serve-smoke" ]; then
  cargo build -q --release --bin tmk
  serve_smoke
  exit $?
fi

if [ "${1:-}" = "--monitor-smoke" ]; then
  cargo build -q --release --bin tmk
  monitor_smoke
  exit $?
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

serve_smoke
monitor_smoke

# The obs-off feature only exists on the crates that carry
# instrumentation, so it cannot be toggled workspace-wide; the root
# package forwards it through every instrumented crate.
echo "==> cargo test -q --features obs-off (root + core observability)"
cargo test -q --features obs-off
cargo test -q -p transmark-core --features obs-off

echo "==> metrics overhead guard (examples/obs_overhead)"
# Build both configurations first (the second build overwrites the
# example path, so the instrumented binary is copied aside), then run
# them interleaved and compare minima: back-to-back build-then-run
# measurements are contaminated by the build's own machine load, which
# dwarfs the ~2% effect this guard polices.
#
# The example prints two figures — `ns_per_iter` (counters + spans) and
# `ns_per_iter_recorded` (the same workload inside an active profiler
# Recorder) — and both must stay within the 5% budget relative to the
# obs-off baseline.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
cargo build -q --release --example obs_overhead
cp target/release/examples/obs_overhead "$tmpdir/obs_on"
cargo build -q --release --example obs_overhead --features obs-off
cp target/release/examples/obs_overhead "$tmpdir/obs_off"
on=""
rec=""
off=""
for _ in 1 2 3; do
  out=$("$tmpdir/obs_on")
  r=$(echo "$out" | awk '/^ns_per_iter /{print $2}')
  if [ -z "$on" ] || [ "$r" -lt "$on" ]; then on=$r; fi
  r=$(echo "$out" | awk '/^ns_per_iter_recorded /{print $2}')
  if [ -z "$rec" ] || [ "$r" -lt "$rec" ]; then rec=$r; fi
  r=$("$tmpdir/obs_off" | awk '/^ns_per_iter /{print $2}')
  if [ -z "$off" ] || [ "$r" -lt "$off" ]; then off=$r; fi
done
echo "    instrumented ${on} ns/iter, recorded ${rec} ns/iter vs obs-off ${off} ns/iter (min of 3 interleaved)"
awk -v on="$on" -v rec="$rec" -v off="$off" 'BEGIN {
  ratio = on / off
  rratio = rec / off
  printf "    ratio %.3f, recorded ratio %.3f (budget 1.05)\n", ratio, rratio
  if (ratio > 1.05) { print "metrics overhead exceeds the ~5% budget"; exit 1 }
  if (rratio > 1.05) { print "profiler recording overhead exceeds the ~5% budget"; exit 1 }
}'

echo "All checks passed."
