//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! subset of proptest it uses: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map` / `prop_recursive` / `boxed`, [`Just`], [`any`], ranges and
//! tuples as strategies, [`prop_oneof!`], [`collection::vec`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, deliberate for a hermetic test gate:
//!
//! * **No shrinking.** A failing case panics with its case index; cases are
//!   derived deterministically from the test name, so every failure is
//!   reproducible by rerunning the test.
//! * **Deterministic by construction.** There is no `PROPTEST_` env
//!   handling and no persistence file; case `i` of test `t` is always the
//!   same inputs.

use std::sync::Arc;

pub use rand::SeedableRng;

/// RNG used to generate test cases.
pub type TestRng = rand::rngs::StdRng;

/// Error produced by a failing `prop_assert!` — carries the message only.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn new(msg: String) -> Self {
        Self(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-case RNG: seed = FNV-1a(test name) combined with the
/// case index, so runs are reproducible and cases independent.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9E37_79B9))
}

/// A generator of values for property tests.
///
/// Unlike upstream there is no value tree: `generate` produces a value
/// directly and nothing shrinks.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a depth-bounded recursive strategy by folding `recurse` over
    /// the base strategy `depth` times. `_desired_size` and
    /// `_expected_branch_size` are accepted for signature compatibility but
    /// unused — depth alone bounds expansion here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut s = self.boxed();
        for _ in 0..depth {
            s = recurse(s).boxed();
        }
        s
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe, clonable, shareable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "whole domain" strategy, for [`any`].
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::Rng;
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::Rng;
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

arbitrary_tuple!(A, B);
arbitrary_tuple!(A, B, C);
arbitrary_tuple!(A, B, C, D);

/// Strategy for the whole domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole domain of `T` as a strategy: `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        use rand::RngExt;
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident/$idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Uniform choice between boxed alternatives — target of [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::RngExt;
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec`]: an exact `usize` or a `Range<usize>`.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            use rand::RngExt;
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            use rand::RngExt;
            rng.random_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `cases` deterministic iterations and panics on the first failing
/// case with its index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    (@funcs $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the process) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), left, right
                );
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(*left == *right, $($fmt)*);
            }
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Everything a property-test file needs, mirroring upstream's prelude.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, Any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn cases_are_deterministic_per_name() {
        let s = (1usize..=3, any::<u32>()).prop_map(|(a, b)| (a, b));
        let a: Vec<_> = (0..10)
            .map(|i| s.generate(&mut crate::case_rng("t", i)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|i| s.generate(&mut crate::case_rng("t", i)))
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 1usize..5, x in 0u8..8, f in 0.0f64..2.0) {
            prop_assert!((1..5).contains(&n));
            prop_assert!(x < 8);
            prop_assert!((0.0..2.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn vec_sizes_and_oneof(v in collection::vec(any::<(u8, u8, u8)>(), 0..20),
                               w in collection::vec(0.0f64..2.0, 2),
                               pick in prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|x| x)]) {
            prop_assert!(v.len() < 20);
            prop_assert_eq!(w.len(), 2);
            prop_assert!(pick == 1 || pick == 2 || pick == 5 || pick == 6);
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Expr {
        Leaf,
        Pair(Box<Expr>, Box<Expr>),
    }

    fn depth(e: &Expr) -> usize {
        match e {
            Expr::Leaf => 0,
            Expr::Pair(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursion_is_depth_bounded(
            e in Just(Expr::Leaf).prop_recursive(3, 12, 2, |inner| {
                prop_oneof![
                    Just(Expr::Leaf),
                    (inner.clone(), inner)
                        .prop_map(|(a, b)| Expr::Pair(Box::new(a), Box::new(b))),
                ]
            }),
        ) {
            prop_assert!(depth(&e) <= 3, "depth {} for {:?}", depth(&e), e);
        }
    }
}
