//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! subset of the criterion 0.5 API its benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion`] with the builder knobs the benches set
//! (`warm_up_time`, `measurement_time`, `sample_size`), benchmark groups,
//! [`BenchmarkId`], and `Bencher::iter`.
//!
//! Measurement model: after a warm-up phase sizes the per-iteration cost,
//! each sample times a fixed batch of iterations; the report prints the
//! minimum / median / maximum of the per-iteration sample means in the
//! same `time: [low mid high]` shape criterion uses, so existing
//! eyeball-and-diff workflows keep working. There is no statistical
//! outlier analysis, HTML report, or baseline persistence.

use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` if they prefer it
/// over `std::hint::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.clone();
        run_benchmark(&name.into(), &cfg, &mut f);
        self
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(&full, &cfg, &mut |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&full, &cfg, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] for `bench_function` arguments.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
    mode: BencherMode,
}

enum BencherMode {
    /// Run `f` repeatedly until the warm-up budget is spent, recording the
    /// per-iteration cost so the measurement phase can size its batches.
    WarmUp {
        budget: Duration,
        per_iter_ns: f64,
    },
    Measure,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via `black_box` so
    /// the benchmarked work is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match &mut self.mode {
            BencherMode::WarmUp {
                budget,
                per_iter_ns,
            } => {
                let start = Instant::now();
                let mut iters = 0u64;
                while start.elapsed() < *budget {
                    black_box(routine());
                    iters += 1;
                }
                let elapsed = start.elapsed().as_nanos() as f64;
                *per_iter_ns = elapsed / iters.max(1) as f64;
            }
            BencherMode::Measure => {
                let n = self.iters_per_sample.max(1);
                let start = Instant::now();
                for _ in 0..n {
                    black_box(routine());
                }
                let elapsed = start.elapsed().as_nanos() as f64;
                self.samples.push(elapsed / n as f64);
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, cfg: &Criterion, f: &mut F) {
    // Warm-up: one call to the closure, whose `iter` spins for the budget
    // and estimates per-iteration cost.
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        mode: BencherMode::WarmUp {
            budget: cfg.warm_up,
            per_iter_ns: 0.0,
        },
    };
    f(&mut bencher);
    let per_iter_ns = match bencher.mode {
        BencherMode::WarmUp { per_iter_ns, .. } => per_iter_ns.max(1.0),
        BencherMode::Measure => unreachable!("warm-up mode is set above"),
    };

    // Size batches so the whole measurement phase fits the time budget.
    let budget_ns = cfg.measurement.as_nanos() as f64;
    let iters_per_sample =
        ((budget_ns / cfg.sample_size as f64 / per_iter_ns).floor() as u64).max(1);

    let mut bencher = Bencher {
        iters_per_sample,
        samples: Vec::with_capacity(cfg.sample_size),
        mode: BencherMode::Measure,
    };
    for _ in 0..cfg.sample_size {
        f(&mut bencher);
    }

    let mut samples = bencher.samples;
    if samples.is_empty() {
        // The closure never called `iter`; nothing to report.
        println!("{id:<40} time:   [no samples]");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let low = samples[0];
    let mid = samples[samples.len() / 2];
    let high = samples[samples.len() - 1];
    println!(
        "{id:<40} time:   [{} {} {}]",
        format_ns(low),
        format_ns(mid),
        format_ns(high)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, in both the plain and the
/// `name = / config = / targets =` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filter args) to bench
            // binaries; this harness runs everything regardless.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(10))
            .measurement_time(Duration::from_millis(50))
            .sample_size(5)
    }

    #[test]
    fn groups_and_functions_run_and_sample() {
        let mut c = quick();
        c.bench_function("smoke/direct", |b| b.iter(|| black_box(2u64 + 2)));
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
