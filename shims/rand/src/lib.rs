//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no vendored registry, so
//! the workspace ships the subset of the `rand` 0.10 API it actually uses
//! as a path dependency. The surface is intentionally minimal:
//!
//! * [`Rng`] — base trait (`next_u64`), used in generic bounds;
//! * [`RngExt`] — the convenience methods (`random`, `random_range`,
//!   `random_bool`), blanket-implemented for every [`Rng`];
//! * [`SeedableRng`] with `seed_from_u64`;
//! * [`rngs::StdRng`] — xoshiro256++ behind a SplitMix64 seeder.
//!
//! Streams are deterministic per seed (the workloads and property tests
//! rely on that) but are **not** bit-compatible with upstream `rand`; no
//! test in this workspace asserts concrete draws, only distributional
//! properties and per-seed reproducibility.

/// A source of random 64-bit words.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform value of type `T` (see [`Random`] for supported types).
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }

    /// A uniform value in `range` (half-open or inclusive; integer or
    /// float element types).
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types that can be drawn uniformly from an [`Rng`].
pub trait Random {
    /// Draws one uniform value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for u8 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Random for bool {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range. Panics on empty ranges.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform integer in `[0, span)` by rejection, avoiding modulo
/// bias (the workloads draw from tiny spans where bias would be visible
/// to the statistical tests at 20k samples only in aggregate — rejection
/// is cheap enough to just be correct).
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` via SplitMix64 expansion (the only
    /// constructor this workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded by SplitMix64. Fast, 256-bit state, passes BigCrush —
    /// plenty for seeded workload generation and Monte-Carlo tests.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point; nudge it.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for v in &mut s {
                *v = splitmix64(&mut state);
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn ranges_hit_all_values_without_bias() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.random_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 / 50_000.0 - 0.2).abs() < 0.02,
                "counts {counts:?}"
            );
        }
        for _ in 0..1000 {
            let v = rng.random_range(3..=5u32);
            assert!((3..=5).contains(&v));
            let f = rng.random_range(0.05..1.0);
            assert!((0.05..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..50_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((hits as f64 / 50_000.0 - 0.3).abs() < 0.02);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
