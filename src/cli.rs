//! The `tmk` command-line interface.
//!
//! All command logic lives here and returns the rendered output as a
//! `String`, so the integration tests can drive it without spawning
//! processes; `src/bin/tmk.rs` is a thin wrapper.
//!
//! ```text
//! tmk show <sequence.tms>
//! tmk map <sequence.tms>
//! tmk sample <sequence.tms> [--count N] [--seed S]
//! tmk top <sequence.tms> <query.tmt> [--k N]
//! tmk enumerate <sequence.tms> <query.tmt> [--limit N]
//! tmk confidence <sequence.tms> <query.tmt> <output-symbol>...
//! tmk evidences <sequence.tms> <query.tmt> [--k N] <output-symbol>...
//! tmk batch <query.tmt> <sequence>... [--k N] [--confidence SYMS]
//! tmk stream <query.tmt> [steps.tms|steps.tmsb|-] [--window W] [--resume F]
//! tmk monitor <query.tmt> <stream>... [--window W] [--batch N] [--series]
//! tmk convert <in.tms|in.tmsb> <out.tms|out.tmsb>
//! tmk extract <sequence.tms> <query.tmp> [--k N]
//! tmk occurrences <sequence.tms> <query.tmp> [--k N]
//! tmk posterior <model.tmh> --out <file.tms> <observation>...
//! tmk export-example <directory>
//! tmk bench [--json FILE] [--runs N] [--iters N]
//! tmk bench --diff <base.json> <new.json>
//! ```
//!
//! Every subcommand additionally accepts the shared options parsed once
//! into [`CommonOpts`]: `--explain` (print the compiled plan — its
//! Table 2 route, machine shape, and precompile cost — before the
//! results), `--threads N` (fleet parallelism for `batch`),
//! `--metrics[=json]` (append an observability report covering exactly
//! this invocation: plan kind, cache hit rates, per-phase timings,
//! kernel and data-plane counters, and fleet statistics — see
//! [`transmark_obs`]), and the query-scoped profiler flags
//! `--profile[=FILE.json]` (timeline summary, or a Chrome `trace_event`
//! file for `chrome://tracing`/Perfetto) and `--flame[=FILE.folded]`
//! (folded stacks for `flamegraph.pl`/inferno) — see
//! [`transmark_obs::profile`].
//!
//! Transducer and s-projector commands compile the query into a
//! prepared plan first. `batch` compiles the query once and binds the
//! one shared plan to every sequence file in turn.
//!
//! Sequences are accepted in either on-disk format, chosen by extension:
//! `.tms` text ([`transmark_markov::textio`]) or `.tmsb` zero-copy binary
//! ([`transmark_markov::binio`]); `tmk convert` maps between them.
//! Forward-only commands (`stream`, `batch --confidence`) fold the file
//! as a [`transmark_markov::StepSource`], one `|Σ|²` layer at a time, so
//! they never materialize the sequence — `tmk stream` also reads step
//! records from stdin (`-`), printing the running acceptance probability
//! after each folded layer. Queries use `transducer v1`
//! ([`transmark_core::textio`]).

use std::fmt::Write as _;
use std::path::Path;

use transmark_core::evaluate::Evaluation;
use transmark_core::evidence::top_k_evidences;
use transmark_core::transducer::Transducer;
use transmark_core::Strategy;
use transmark_markov::MarkovSequence;
use transmark_obs::{fmt_ns, Snapshot};
use transmark_sproj::SprojEvaluation;

/// A CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Suggested process exit code (2 = usage, 1 = runtime).
    pub exit_code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

// Engine-layer failures carry their own context (the unified
// `TmkError` Display), so they convert straight into runtime CLI errors
// and `?` works throughout the command arms; file operations keep
// explicit `map_err` wrappers to attach the offending path.
impl From<transmark_core::error::EngineError> for CliError {
    fn from(e: transmark_core::error::EngineError) -> Self {
        run_err(e)
    }
}

impl From<transmark_store::StoreError> for CliError {
    fn from(e: transmark_store::StoreError) -> Self {
        run_err(e)
    }
}

impl From<transmark_markov::SourceError> for CliError {
    fn from(e: transmark_markov::SourceError) -> Self {
        run_err(e)
    }
}

impl From<transmark_markov::MarkovError> for CliError {
    fn from(e: transmark_markov::MarkovError) -> Self {
        run_err(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        run_err(e)
    }
}

pub(crate) fn usage_err(message: impl Into<String>) -> CliError {
    CliError {
        message: format!("{}\n\n{}", message.into(), USAGE),
        exit_code: 2,
    }
}

pub(crate) fn run_err(message: impl std::fmt::Display) -> CliError {
    CliError {
        message: message.to_string(),
        exit_code: 1,
    }
}

/// The usage text.
pub const USAGE: &str = "tmk — query Markov sequences with finite-state transducers

USAGE:
  tmk show <sequence.tms>                               model summary + marginals
  tmk map <sequence.tms>                                most likely world
  tmk sample <sequence.tms> [--count N] [--seed S]      draw random worlds
  tmk top <sequence.tms> <query.tmt> [--k N]            ranked answers + confidence
  tmk top <host:port> [--interval MS] [--count N]       live service dashboard: per-tenant /
                                                        per-kind q/s and p50/p95/p99 from
                                                        /metrics.json snapshot diffs; --count N
                                                        renders N frames and exits
  tmk enumerate <sequence.tms> <query.tmt> [--limit N]  all answers, lexicographic
  tmk confidence <sequence.tms> <query.tmt> <sym>...    confidence of one output
  tmk evidences <sequence.tms> <query.tmt> [--k N] <sym>...
                                                        most likely worlds behind an output
  tmk batch <query.tmt> <seq>... [--k N]                one query, many sequences, one shared plan
  tmk stream <query.tmt> [steps|-]                      fold steps from file or stdin, printing the
                                                        running acceptance probability
        [--window W]                                    sliding window of width W: Pr over the last
                                                        W symbols only (O(k^2) per slide)
        [--checkpoint-at N --checkpoint-out F]          suspend after folding N steps, session
                                                        state to F
        [--resume F]                                    continue a suspended session from F
                                                        (bit-identical to an uninterrupted run)
  tmk monitor <query.tmt> <stream>... [--window W] [--batch N] [--series]
                                                        multiplex many streams over one query on a
                                                        --threads worker pool; per-stream final
                                                        probability (or full series with --series)
  tmk convert <in> <out>                                convert .tms <-> .tmsb (validated round trip)
  tmk extract <sequence.tms> <query.tmp> [--k N]        s-projector: distinct strings by I_max
  tmk occurrences <sequence.tms> <query.tmp> [--k N]    s-projector: (string, position) by confidence
  tmk posterior <model.tmh> --out <f.tms> <obs>...      condition an HMM, write the posterior
  tmk export-example <dir>                              write the paper's running example
  tmk bench [--json FILE] [--runs N] [--iters N]        built-in perf micro-suite (fixed seeds,
                                                        min-of-N); --json writes the machine-
                                                        readable snapshot
  tmk bench --diff <base.json> <new.json>               compare two bench snapshots; exits
                                                        non-zero on a >15% regression
  tmk serve [ADDR] [--workers N] [--queue N] [--tenant-quota N] [--plan-cache N]
                                                        run the persistent query service: tmkp
                                                        protocol plus HTTP GET /metrics[.json|.prom]
                                                        on the same port; ADDR defaults to
                                                        127.0.0.1:0 (the resolved address is
                                                        printed on start)
        [--slow-ms MS]                                  log any query slower than MS (plan explain
                                                        + phase timings) to the structured event log
        [--log FILE|-]                                  drain the structured event log (request,
                                                        rejection, checkpoint, eviction, and slow-
                                                        query records) as JSON lines to FILE or
                                                        stderr (-)
  tmk client <addr> confidence <query.tmt> <seq> <sym>...
                                                        remote confidence of one output
  tmk client <addr> top <query.tmt> <seq> [--k N]       remote ranked answers + confidence
  tmk client <addr> series <query.tmt> <seq>            remote prefix acceptance series
  tmk client <addr> stream <query.tmt> <seq> [<sym>...] [--chunk BYTES] [--window W]
                                                        stream the sequence to the server in
                                                        chunked frames (stop-and-wait); with
                                                        symbols = confidence, without = series,
                                                        --window W = sliding-window series
        [--resume FILE [--checkpoint-every N]]          persist server checkpoints to FILE every N
                                                        chunks (default 8) and, if FILE holds one,
                                                        continue the suspended session from it —
                                                        rerun the same command after a disconnect
  tmk client <addr> metrics [--json|--prom]             scrape the server's live metrics snapshot
  tmk client <addr> shutdown                            ask the server to shut down gracefully

COMMON OPTIONS (accepted by every command):
  --explain            print the compiled query plan — its Table 2 route, machine
                       shape, and precompile cost — before the results
  --threads N          (batch) evaluate the fleet on N OS threads; 0 = one per
                       available core (default 1); also the worker count of
                       the scan strategy (stream)
  --strategy S         force the execution strategy: sparse (CSR layer walk),
                       dense (blocked matrix rows, SIMD when available), or
                       scan (parallel-prefix over the series; stream only).
                       Default: planner choice from layer density and length
  --metrics[=json]     append a metrics report for this invocation: plan kind,
                       cache hit rates, per-phase timings, kernel/data-plane
                       counters, and fleet statistics; =json emits the raw
                       snapshot diff instead
  --profile[=FILE]     record a query-scoped timeline; bare flag appends the
                       profile summary (phases, lanes, throughput), =FILE writes
                       a Chrome trace_event JSON for chrome://tracing / Perfetto
  --flame[=FILE]       folded stacks (lane;phase;... self_ns) for flamegraph.pl
                       or inferno; bare flag appends them, =FILE writes the file

OPTIONS:
  --confidence SYMS    (batch) instead of top-k, stream the confidence of the
                       comma-separated output SYMS over each file without
                       materializing it

FILES:
  .tms  — markov-sequence v1, text   (see transmark_markov::textio)
  .tmsb — markov-sequence v1, binary (zero-copy; see transmark_markov::binio)
  .tmt  — transducer v1              (see transmark_core::textio)
  .tmp  — sprojector v1              (see transmark_sproj::textio)
  .tmh  — hmm v1                     (see transmark_markov::hmm_textio)

Sequence arguments accept either format, dispatched on the extension.";

/// Parses `--flag value` style options out of an argument list, returning
/// the remaining positional arguments.
fn take_opt(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, CliError> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(usage_err(format!("{flag} requires a value")));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

/// Removes a boolean `--flag` from the argument list, reporting whether
/// it was present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

/// How `--metrics` renders its report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Human-readable summary plus the full snapshot.
    Text,
    /// The raw snapshot diff as compact JSON.
    Json,
}

/// Options shared by every `tmk` subcommand, parsed once up front.
#[derive(Debug, Clone)]
pub struct CommonOpts {
    /// `--threads N` — fleet parallelism (`batch`); 0 = one per core.
    pub threads: usize,
    /// `--strategy sparse|dense|scan` — force the execution strategy
    /// instead of the planner's density/length heuristic.
    pub strategy: Option<Strategy>,
    /// `--explain` — print the compiled plan before the results.
    pub explain: bool,
    /// `--metrics[=json]` — append an observability report.
    pub metrics: Option<MetricsFormat>,
    /// `--profile[=FILE]` — record a query-scoped timeline; bare flag
    /// appends the profile summary, `=FILE` writes a Chrome trace.
    pub profile: Option<Option<String>>,
    /// `--flame[=FILE]` — folded stacks for flamegraph.pl/inferno; bare
    /// flag appends them, `=FILE` writes them to a file.
    pub flame: Option<Option<String>>,
}

/// Strips `--flag` (→ `Some(None)`) or `--flag=VALUE` (→
/// `Some(Some(VALUE))`) out of `args`.
fn take_flag_opt(args: &mut Vec<String>, flag: &str) -> Result<Option<Option<String>>, CliError> {
    if take_flag(args, flag) {
        return Ok(Some(None));
    }
    let prefix = format!("{flag}=");
    if let Some(pos) = args.iter().position(|a| a.starts_with(&prefix)) {
        let value = args.remove(pos)[prefix.len()..].to_string();
        if value.is_empty() {
            return Err(usage_err(format!("{flag}= needs a file path")));
        }
        return Ok(Some(Some(value)));
    }
    Ok(None)
}

impl CommonOpts {
    /// Strips the shared options out of `args`, leaving the
    /// command-specific arguments behind.
    fn take(args: &mut Vec<String>) -> Result<CommonOpts, CliError> {
        let threads = take_opt(args, "--threads")?
            .map(|v| parse_usize(&v, "--threads"))
            .transpose()?
            .unwrap_or(1);
        let strategy = take_opt(args, "--strategy")?
            .map(|v| v.parse::<Strategy>().map_err(usage_err))
            .transpose()?;
        let explain = take_flag(args, "--explain");
        let metrics = if take_flag(args, "--metrics=json") {
            Some(MetricsFormat::Json)
        } else if take_flag(args, "--metrics=text") || take_flag(args, "--metrics") {
            Some(MetricsFormat::Text)
        } else if let Some(pos) = args.iter().position(|a| a.starts_with("--metrics=")) {
            return Err(usage_err(format!(
                "bad --metrics format {:?} (expected text or json)",
                &args[pos]["--metrics=".len()..]
            )));
        } else {
            None
        };
        let profile = take_flag_opt(args, "--profile")?;
        let flame = take_flag_opt(args, "--flame")?;
        Ok(CommonOpts {
            threads,
            strategy,
            explain,
            metrics,
            profile,
            flame,
        })
    }
}

fn parse_usize(s: &str, what: &str) -> Result<usize, CliError> {
    s.parse()
        .map_err(|e| usage_err(format!("bad {what} {s:?}: {e}")))
}

fn load_sequence(path: &str) -> Result<MarkovSequence, CliError> {
    transmark_markov::fsio::read_sequence_path(Path::new(path)).map_err(|e| match e {
        transmark_markov::SourceError::Io(e) => run_err(format!("cannot read {path}: {e}")),
        e => run_err(format!("{path}: {e}")),
    })
}

fn load_sprojector(path: &str) -> Result<transmark_sproj::SProjector, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| run_err(format!("cannot read {path}: {e}")))?;
    transmark_sproj::textio::from_text(&text).map_err(|e| run_err(format!("{path}: {e}")))
}

fn load_transducer(path: &str) -> Result<Transducer, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| run_err(format!("cannot read {path}: {e}")))?;
    transmark_core::textio::from_text(&text).map_err(|e| run_err(format!("{path}: {e}")))
}

fn parse_output(
    t: &Transducer,
    names: &[String],
) -> Result<Vec<transmark_automata::SymbolId>, CliError> {
    names
        .iter()
        .map(|n| {
            t.output_alphabet()
                .get(n)
                .ok_or_else(|| run_err(format!("unknown output symbol {n:?}")))
        })
        .collect()
}

fn render(t: &Transducer, o: &[transmark_automata::SymbolId]) -> String {
    if o.is_empty() {
        "ε".to_string()
    } else {
        t.render_output(o, " ")
    }
}

fn read_file_text(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| run_err(format!("cannot read {path}: {e}")))
}

/// Reads a sequence argument for `tmk client`: `.tmsb` bytes travel
/// verbatim (the server sees exactly what a local reader would), `.tms`
/// travels as text.
fn read_sequence_payload(path: &str) -> Result<(Vec<u8>, bool), CliError> {
    let bytes = std::fs::read(path).map_err(|e| run_err(format!("cannot read {path}: {e}")))?;
    Ok((bytes, path.ends_with(".tmsb")))
}

fn sequence_payload(
    bytes: &[u8],
    binary: bool,
) -> Result<crate::serve::client::Sequence<'_>, CliError> {
    if binary {
        Ok(crate::serve::client::Sequence::Binary(bytes))
    } else {
        std::str::from_utf8(bytes)
            .map(crate::serve::client::Sequence::Text)
            .map_err(|e| run_err(format!("sequence is not valid UTF-8 text: {e}")))
    }
}

/// Loads a sequence argument as `.tmsb` bytes for a streamed session:
/// `.tmsb` files verbatim, `.tms` files converted.
fn read_tmsb_bytes(path: &str) -> Result<Vec<u8>, CliError> {
    if path.ends_with(".tmsb") {
        std::fs::read(path).map_err(|e| run_err(format!("cannot read {path}: {e}")))
    } else {
        Ok(transmark_markov::binio::to_tmsb_bytes(&load_sequence(
            path,
        )?))
    }
}

/// The incremental `tmk stream` path: a checkpointable session folding
/// one layer at a time — plain acceptance ([`EventSession`]) or a
/// sliding window ([`WindowSession`]) — with suspend (`--checkpoint-at`/
/// `--checkpoint-out`) and resume (`--resume`) at any step boundary.
/// The checkpoint file holds the core session's versioned blob verbatim.
fn run_incremental_stream<S: transmark_markov::StepSource>(
    out: &mut String,
    nfa: transmark_automata::Nfa,
    src: &mut S,
    window: Option<usize>,
    checkpoint_at: Option<u64>,
    checkpoint_out: Option<&str>,
    resume_blob: Option<&[u8]>,
) -> Result<(), CliError> {
    use transmark_core::incremental::{EventSession, SlidingWindowQuery, WindowSession};

    enum Sess<'q> {
        Event(EventSession),
        Window(WindowSession<'q>),
    }
    impl Sess<'_> {
        fn probability(&self) -> f64 {
            match self {
                Sess::Event(s) => s.probability(),
                Sess::Window(s) => s.probability(),
            }
        }
        fn position(&self) -> u64 {
            match self {
                Sess::Event(s) => s.position(),
                Sess::Window(s) => s.position(),
            }
        }
        fn advance(&mut self, m: &[f64]) -> Result<f64, transmark_core::error::EngineError> {
            match self {
                Sess::Event(s) => s.advance(m),
                Sess::Window(s) => s.advance(m),
            }
        }
        fn checkpoint(&self) -> Vec<u8> {
            match self {
                Sess::Event(s) => s.checkpoint(),
                Sess::Window(s) => s.checkpoint(),
            }
        }
    }

    let wq_storage;
    let mut sess = match window {
        Some(w) => {
            wq_storage = SlidingWindowQuery::new(nfa, w)?;
            match resume_blob {
                Some(b) => Sess::Window(wq_storage.resume(b)?),
                None => Sess::Window(wq_storage.start(src.initial())?),
            }
        }
        None => match resume_blob {
            Some(b) => Sess::Event(EventSession::resume(nfa, b)?),
            None => Sess::Event(EventSession::start(nfa, src.initial())?),
        },
    };

    match resume_blob {
        Some(_) => {
            // Skip the source forward to the suspension point; the state
            // itself comes from the checkpoint, not from replaying.
            let _ = writeln!(out, "resumed at t={}", sess.position() + 1);
            for _ in 0..sess.position() {
                if src.next_step()?.is_none() {
                    return Err(run_err(format!(
                        "checkpoint is at position {} but the stream is shorter",
                        sess.position()
                    )));
                }
            }
        }
        None => {
            let _ = writeln!(out, "t={:<6} {}", 1, sess.probability());
        }
    }

    loop {
        if let (Some(at), Some(path)) = (checkpoint_at, checkpoint_out) {
            if sess.position() >= at {
                std::fs::write(path, sess.checkpoint())
                    .map_err(|e| run_err(format!("write {path}: {e}")))?;
                let _ = writeln!(
                    out,
                    "checkpoint written to {path} at t={}",
                    sess.position() + 1
                );
                return Ok(());
            }
        }
        match src.next_step()? {
            Some(m) => {
                let p = sess.advance(m)?;
                let _ = writeln!(out, "t={:<6} {p}", sess.position() + 1);
            }
            None => return Ok(()),
        }
    }
}

fn append_remote_profile(out: &mut String, profile: Option<String>) {
    if let Some(p) = profile {
        out.push_str("== server profile ==\n");
        out.push_str(&p);
        if !p.ends_with('\n') {
            out.push('\n');
        }
    }
}

/// Handles the profile attached to a `tmk client` response. When the
/// request carried a trace id, the server serializes its timeline as
/// JSON — parse it and queue it (with the request's send offset) for
/// merging into the local recorder's profile, so `--profile=FILE`
/// writes ONE Chrome trace spanning client and server. Anything else
/// (a v1 peer's text profile) appends verbatim.
fn absorb_remote_profile(
    out: &mut String,
    remotes: &mut Vec<(transmark_obs::ExecutionProfile, u64)>,
    traced: bool,
    profile: Option<String>,
    sent_at_ns: Option<u64>,
) {
    let Some(p) = profile else { return };
    if traced {
        if let Ok(remote) = transmark_obs::ExecutionProfile::from_json(&p) {
            remotes.push((remote, sent_at_ns.unwrap_or(0)));
            return;
        }
    }
    append_remote_profile(out, Some(p));
}

/// A fresh wire trace id: wall-clock nanoseconds mixed with the pid,
/// forced nonzero (zero means "no trace" on the wire).
fn new_trace_id() -> u64 {
    let ns = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed);
    (ns ^ ((std::process::id() as u64) << 32)).max(1)
}

/// Renders the `--metrics` text report from a snapshot diff: a structured
/// summary (plan kinds and phase timings, cache hit rates, kernel and
/// data-plane traffic, fleet statistics) followed by the full snapshot.
fn metrics_report(s: &Snapshot) -> String {
    if !transmark_obs::enabled() {
        return "== metrics ==\n(metrics disabled: built with feature obs-off)\n".to_string();
    }
    let mut out = String::from("== metrics ==\n");

    // Plan kinds are recovered from the per-kind phase histograms the
    // planner records (`planner.<phase>_ns.<kind>`).
    const PHASES: [(&str, &str); 3] = [
        ("prepare", "planner.prepare_ns."),
        ("bind", "planner.bind_ns."),
        ("execute", "planner.execute_ns."),
    ];
    let mut kinds: Vec<&str> = Vec::new();
    for name in s.histograms.keys() {
        for (_, prefix) in PHASES {
            if let Some(kind) = name.strip_prefix(prefix) {
                if !kinds.contains(&kind) {
                    kinds.push(kind);
                }
            }
        }
    }
    if !kinds.is_empty() {
        let _ = writeln!(out, "plan kind(s): {}", kinds.join(", "));
        out.push_str("phases (count / total / mean / p50 / p99):\n");
        for kind in &kinds {
            for (phase, prefix) in PHASES {
                if let Some(h) = s.histogram(&format!("{prefix}{kind}")) {
                    let _ = writeln!(
                        out,
                        "  {:<34} {} / {} / {} / {} / {}",
                        format!("{kind} {phase}"),
                        h.count,
                        fmt_ns(h.sum),
                        fmt_ns(h.mean() as u64),
                        fmt_ns(h.quantile(0.50)),
                        fmt_ns(h.quantile(0.99))
                    );
                }
            }
        }
    }

    // Execution strategies the planner picked (or was forced into) in
    // this window.
    let strategies: Vec<String> = ["sparse", "dense", "scan"]
        .iter()
        .filter_map(|name| {
            let n = s.counter(&format!("planner.strategy.{name}"));
            (n > 0).then(|| format!("{name} x{n}"))
        })
        .collect();
    if !strategies.is_empty() {
        let _ = writeln!(out, "strategies: {}", strategies.join(", "));
    }

    for (label, hits_name, misses_name, evictions_name) in [
        (
            "planner cache",
            "planner.cache.hits",
            "planner.cache.misses",
            Some("planner.cache.evictions"),
        ),
        (
            "store plan cache",
            "store.plan_cache.hits",
            "store.plan_cache.misses",
            None,
        ),
    ] {
        let (hits, misses) = (s.counter(hits_name), s.counter(misses_name));
        if hits + misses > 0 {
            let rate = 100.0 * hits as f64 / (hits + misses) as f64;
            let evictions = evictions_name
                .map(|n| format!(", {} evictions", s.counter(n)))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "{label}: {hits} hits / {misses} misses ({rate:.1}% hit rate{evictions})"
            );
        }
    }

    let layers = s.counter("kernel.advance.layers");
    let csr = s.counter("kernel.csr.builds");
    let dense = s.counter("kernel.dense.binds");
    if layers + csr + dense > 0 {
        let csr_ns = s.histogram("kernel.csr.build_ns").map_or(0, |h| h.sum);
        let _ = writeln!(
            out,
            "kernel: {layers} layers advanced, {csr} CSR builds ({}), {dense} dense binds, workspace {} reuse / {} realloc",
            fmt_ns(csr_ns),
            s.counter("kernel.workspace.reuse"),
            s.counter("kernel.workspace.realloc"),
        );
    }

    let steps = s.counter("dataplane.steps");
    if steps > 0 {
        let mut decode = String::new();
        for format in ["tms", "tmsb"] {
            if let Some(h) = s.histogram(&format!("dataplane.{format}.decode_ns")) {
                let _ = write!(decode, ", decode {format} {}x {}", h.count, fmt_ns(h.sum));
            }
        }
        let _ = writeln!(
            out,
            "data plane: {steps} steps, {} bytes, {} rewinds ({} avoided){decode}",
            s.counter("dataplane.bytes"),
            s.counter("dataplane.rewinds"),
            s.counter("dataplane.rewinds_avoided"),
        );
    }

    let (saves, resumes) = (
        s.counter("checkpoint.saves"),
        s.counter("checkpoint.resumes"),
    );
    if saves + resumes > 0 {
        let _ = writeln!(out, "checkpoints: {saves} saved, {resumes} resumed");
    }

    if s.counter("store.monitor.runs") > 0 {
        let wall = s.histogram("store.monitor.wall_ns").map_or(0, |h| h.sum);
        let _ = writeln!(
            out,
            "monitor: {} runs, {} workers, {} streams, {} ticks, wall {}",
            s.counter("store.monitor.runs"),
            s.gauge("store.monitor.workers"),
            s.counter("store.monitor.streams"),
            s.counter("store.monitor.ticks"),
            fmt_ns(wall),
        );
    }

    if s.counter("store.fleet.runs") > 0 {
        let tasks = s.counter("store.fleet.tasks");
        let per_worker = s
            .histogram("store.fleet.tasks_per_worker")
            .map_or(0.0, |h| h.mean());
        let task_mean = s
            .histogram("store.fleet.task_ns")
            .map_or(0, |h| h.mean() as u64);
        let wait = s
            .histogram("store.fleet.queue_wait_ns")
            .map_or(0, |h| h.mean() as u64);
        let wall = s.histogram("store.fleet.wall_ns").map_or(0, |h| h.sum);
        let cpu = s.histogram("store.fleet.cpu_ns").map_or(0, |h| h.sum);
        let _ = writeln!(
            out,
            "fleet: {} runs, {} workers, {tasks} tasks ({per_worker:.1}/worker), task mean {}, queue wait mean {}",
            s.counter("store.fleet.runs"),
            s.gauge("store.fleet.workers"),
            fmt_ns(task_mean),
            fmt_ns(wait),
        );
        if wall > 0 {
            let _ = writeln!(
                out,
                "fleet time: wall {}, cpu {}, speedup {:.2}x",
                fmt_ns(wall),
                fmt_ns(cpu),
                cpu as f64 / wall as f64
            );
        }
    }

    out.push_str("-- full snapshot --\n");
    out.push_str(&s.to_text());
    out
}

/// Runs a CLI invocation (excluding the program name) and returns its
/// stdout text.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut args: Vec<String> = args.to_vec();
    if args.is_empty() {
        return Err(usage_err("missing command"));
    }
    let command = args.remove(0);
    let opts = CommonOpts::take(&mut args)?;
    // The metrics window covers exactly this invocation: diff against the
    // process-global registry state captured before dispatch.
    let baseline = transmark_obs::registry().snapshot();
    // --profile / --flame: record a query-scoped timeline around the
    // whole dispatch; fleet commands propagate the recorder into their
    // workers, so each worker shows up as its own lane.
    let recorder = if opts.profile.is_some() || opts.flame.is_some() {
        Some(std::sync::Arc::new(transmark_obs::Recorder::new()))
    } else {
        None
    };
    let scope = recorder.as_ref().map(|r| r.install("main"));
    let mut out = String::new();
    // Server-side timelines returned by `tmk client` requests that
    // carried a trace id, with the send offset of each request; merged
    // into the local profile after the recorder finishes.
    let mut remote_profiles: Vec<(transmark_obs::ExecutionProfile, u64)> = Vec::new();
    match command.as_str() {
        "show" => {
            let [seq_path] = positional::<1>(args)?;
            let m = load_sequence(&seq_path)?;
            let _ = writeln!(
                out,
                "markov sequence: length {}, {} symbols",
                m.len(),
                m.n_symbols()
            );
            let names: Vec<&str> = m.alphabet().iter().map(|(_, n)| n).collect();
            let _ = writeln!(out, "alphabet: {}", names.join(" "));
            let _ = writeln!(out, "marginals:");
            for (i, dist) in m.marginals().iter().enumerate() {
                let cells: Vec<String> = dist.iter().map(|p| format!("{p:.4}")).collect();
                let _ = writeln!(out, "  t={:<3} {}", i + 1, cells.join(" "));
            }
        }
        "map" => {
            let [seq_path] = positional::<1>(args)?;
            let m = load_sequence(&seq_path)?;
            let (s, p) = m.most_likely_string();
            let _ = writeln!(out, "{}  (p = {p:.6})", m.alphabet().render(&s, " "));
        }
        "sample" => {
            use rand::{rngs::StdRng, SeedableRng};
            let count = take_opt(&mut args, "--count")?
                .map(|v| parse_usize(&v, "--count"))
                .transpose()?
                .unwrap_or(1);
            let seed = take_opt(&mut args, "--seed")?
                .map(|v| parse_usize(&v, "--seed"))
                .transpose()?
                .unwrap_or(0) as u64;
            let [seq_path] = positional::<1>(args)?;
            let m = load_sequence(&seq_path)?;
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..count {
                let s = m.sample(&mut rng);
                let _ = writeln!(out, "{}", m.alphabet().render(&s, " "));
            }
        }
        "top" => {
            let k = take_opt(&mut args, "--k")?
                .map(|v| parse_usize(&v, "--k"))
                .transpose()?
                .unwrap_or(10);
            let interval = take_opt(&mut args, "--interval")?
                .map(|v| parse_usize(&v, "--interval"))
                .transpose()?
                .unwrap_or(1000) as u64;
            let count = take_opt(&mut args, "--count")?
                .map(|v| parse_usize(&v, "--count"))
                .transpose()?;
            // One positional = a server address: the live service
            // dashboard. Two = the classic ranked-answers query.
            if args.len() == 1 {
                let addr = args.remove(0);
                crate::top::run_dashboard(&mut out, &addr, interval, count)?;
            } else {
                let [seq_path, query_path] = positional::<2>(args)?;
                let m = load_sequence(&seq_path)?;
                let t = load_transducer(&query_path)?;
                let ev = Evaluation::with_strategy(&t, &m, opts.strategy)?;
                if opts.explain {
                    let _ = writeln!(out, "{}", ev.explain());
                }
                let answers = ev.top_k_scored(k)?;
                if answers.is_empty() {
                    let _ = writeln!(out, "(no answers)");
                }
                for a in answers {
                    let _ = writeln!(
                        out,
                        "{:<30} E_max = {:.6}  confidence = {:.6}",
                        render(&t, &a.output),
                        a.emax,
                        a.confidence
                    );
                }
            }
        }
        "enumerate" => {
            let limit = take_opt(&mut args, "--limit")?
                .map(|v| parse_usize(&v, "--limit"))
                .transpose()?
                .unwrap_or(usize::MAX);
            let [seq_path, query_path] = positional::<2>(args)?;
            let m = load_sequence(&seq_path)?;
            let t = load_transducer(&query_path)?;
            let ev = Evaluation::with_strategy(&t, &m, opts.strategy)?;
            if opts.explain {
                let _ = writeln!(out, "{}", ev.explain());
            }
            for o in ev.unranked()?.take(limit) {
                let _ = writeln!(out, "{}", render(&t, &o));
            }
        }
        "confidence" => {
            if args.len() < 2 {
                return Err(usage_err("confidence needs <sequence> <query> <symbols…>"));
            }
            let seq_path = args.remove(0);
            let query_path = args.remove(0);
            let m = load_sequence(&seq_path)?;
            let t = load_transducer(&query_path)?;
            let o = parse_output(&t, &args)?;
            let ev = Evaluation::with_strategy(&t, &m, opts.strategy)?;
            if opts.explain {
                let _ = writeln!(out, "{}", ev.explain());
            }
            let c = ev.confidence(&o)?;
            let _ = writeln!(out, "{c}");
        }
        "batch" => {
            let k = take_opt(&mut args, "--k")?
                .map(|v| parse_usize(&v, "--k"))
                .transpose()?
                .unwrap_or(10);
            let conf_syms = take_opt(&mut args, "--confidence")?;
            if args.len() < 2 {
                return Err(usage_err("batch needs <query.tmt> <sequence>…"));
            }
            let query_path = args.remove(0);
            let t = load_transducer(&query_path)?;
            // Compile once; every sequence file binds the same plan.
            let plan = transmark_core::prepare(&t);
            if opts.explain {
                let _ = writeln!(out, "{}", plan.explain());
            }
            let paths: Vec<std::path::PathBuf> =
                args.iter().map(std::path::PathBuf::from).collect();
            match conf_syms {
                // Forward-only fleet: stream each file through the shared
                // plan, one layer at a time — nothing is materialized.
                Some(syms) => {
                    if let Some(s) = opts.strategy {
                        if s != Strategy::Sparse {
                            return Err(run_err(format!(
                                "--strategy {s} cannot run batch --confidence: streamed \
                                 evaluation compacts each pulled layer (sparse only)"
                            )));
                        }
                    }
                    let names: Vec<String> = syms
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(String::from)
                        .collect();
                    let o = parse_output(&t, &names)?;
                    let results = transmark_store::par_map_paths(&paths, opts.threads, |path| {
                        let src = transmark_markov::fsio::open_step_source(path).map_err(|e| {
                            transmark_store::StoreError::Io(format!("{}: {e}", path.display()))
                        })?;
                        Ok(plan.bind_source(src)?.confidence(&o)?)
                    })?;
                    for seq_path in &args {
                        let c = results.get(seq_path.as_str()).ok_or_else(|| {
                            run_err(format!("no result for {seq_path} (duplicate argument?)"))
                        })?;
                        let _ = writeln!(out, "{seq_path}  {c}");
                    }
                }
                // Ranked answers need random access (backward sweeps), so
                // each worker materializes its own file.
                None => {
                    let results = transmark_store::par_map_paths(&paths, opts.threads, |path| {
                        let m = transmark_markov::fsio::read_sequence_path(path).map_err(|e| {
                            transmark_store::StoreError::Io(format!("{}: {e}", path.display()))
                        })?;
                        let ev = Evaluation::with_plan_strategy(&plan, &m, opts.strategy)?;
                        Ok(ev.top_k_scored(k)?)
                    })?;
                    for seq_path in &args {
                        let _ = writeln!(out, "== {seq_path}");
                        let answers = results.get(seq_path.as_str()).ok_or_else(|| {
                            run_err(format!("no result for {seq_path} (duplicate argument?)"))
                        })?;
                        if answers.is_empty() {
                            let _ = writeln!(out, "(no answers)");
                        }
                        for a in answers {
                            let _ = writeln!(
                                out,
                                "{:<30} E_max = {:.6}  confidence = {:.6}",
                                render(&t, &a.output),
                                a.emax,
                                a.confidence
                            );
                        }
                    }
                }
            }
        }
        "stream" => {
            let window = take_opt(&mut args, "--window")?
                .map(|v| parse_usize(&v, "--window"))
                .transpose()?;
            let checkpoint_at = take_opt(&mut args, "--checkpoint-at")?
                .map(|v| parse_usize(&v, "--checkpoint-at"))
                .transpose()?
                .map(|v| v as u64);
            let checkpoint_out = take_opt(&mut args, "--checkpoint-out")?;
            let resume_path = take_opt(&mut args, "--resume")?;
            if checkpoint_at.is_some() != checkpoint_out.is_some() {
                return Err(usage_err(
                    "--checkpoint-at and --checkpoint-out go together",
                ));
            }
            if args.is_empty() || args.len() > 2 {
                return Err(usage_err(
                    "stream needs <query.tmt> [steps.tms|steps.tmsb|-]",
                ));
            }
            let query_path = args.remove(0);
            let t = load_transducer(&query_path)?;
            // The running Boolean event query: Pr(S[1..t] ∈ L(A)) for the
            // query's underlying input automaton. Default is the one-pass
            // fold, one layer at a time (memory independent of stream
            // length); `--strategy scan` materializes a file input and
            // runs the parallel-prefix scan on `--threads` workers.
            let nfa = t.underlying_nfa();
            if window.is_some() || checkpoint_at.is_some() || resume_path.is_some() {
                // Incremental session path: checkpointable, resumable,
                // optionally windowed. Strictly one layer at a time, so
                // only the sparse fold applies.
                if let Some(s) = opts.strategy {
                    if s != Strategy::Sparse {
                        return Err(run_err(format!(
                            "--strategy {s} cannot run the incremental stream path \
                             (checkpoints and windows fold one layer at a time)"
                        )));
                    }
                }
                let resume_blob = resume_path
                    .as_deref()
                    .map(std::fs::read)
                    .transpose()
                    .map_err(|e| run_err(format!("read checkpoint: {e}")))?;
                match args.first().map(String::as_str) {
                    Some(path) if path != "-" => {
                        let mut src = transmark_markov::fsio::open_step_source(Path::new(path))
                            .map_err(|e| run_err(format!("{path}: {e}")))?;
                        run_incremental_stream(
                            &mut out,
                            nfa,
                            &mut src,
                            window,
                            checkpoint_at,
                            checkpoint_out.as_deref(),
                            resume_blob.as_deref(),
                        )?;
                    }
                    _ => {
                        let stdin = std::io::stdin();
                        let mut src = transmark_markov::textio::TmsTextSource::new(stdin.lock())
                            .map_err(|e| run_err(format!("stdin: {e}")))?;
                        run_incremental_stream(
                            &mut out,
                            nfa,
                            &mut src,
                            window,
                            checkpoint_at,
                            checkpoint_out.as_deref(),
                            resume_blob.as_deref(),
                        )?;
                    }
                }
            } else {
                let series = match (args.first().map(String::as_str), opts.strategy) {
                    (Some(path), Some(Strategy::Scan)) if path != "-" => {
                        let m = load_sequence(path)?;
                        let q = transmark_core::PreparedEventQuery::new(nfa);
                        q.series_with(&m, opts.threads, Some(Strategy::Scan))?
                    }
                    (_, Some(s)) if s != Strategy::Sparse => {
                        return Err(run_err(format!(
                            "--strategy {s} cannot run stream from stdin: the scan needs a \
                         materialized file input (and dense applies to transducer queries)"
                        )));
                    }
                    (Some(path), _) if path != "-" => {
                        let mut src = transmark_markov::fsio::open_step_source(Path::new(path))
                            .map_err(|e| run_err(format!("{path}: {e}")))?;
                        transmark_core::prefix_acceptance_probabilities_source(&nfa, &mut src)?
                    }
                    _ => {
                        let stdin = std::io::stdin();
                        let mut src = transmark_markov::textio::TmsTextSource::new(stdin.lock())
                            .map_err(|e| run_err(format!("stdin: {e}")))?;
                        transmark_core::prefix_acceptance_probabilities_source(&nfa, &mut src)?
                    }
                };
                for (i, p) in series.iter().enumerate() {
                    let _ = writeln!(out, "t={:<6} {p}", i + 1);
                }
            }
        }
        "monitor" => {
            use transmark_store::{Monitor, MonitorConfig, DEFAULT_TICK_BATCH};
            let window = take_opt(&mut args, "--window")?
                .map(|v| parse_usize(&v, "--window"))
                .transpose()?;
            let batch = take_opt(&mut args, "--batch")?
                .map(|v| parse_usize(&v, "--batch"))
                .transpose()?
                .unwrap_or(DEFAULT_TICK_BATCH);
            let series = take_flag(&mut args, "--series");
            if args.len() < 2 {
                return Err(usage_err(
                    "monitor needs <query.tmt> <stream>… [--window W] [--batch N] [--series]",
                ));
            }
            let query_path = args.remove(0);
            let t = load_transducer(&query_path)?;
            // One query, many independent streams, one worker pool: each
            // stream is an incremental session advanced in tick batches,
            // so memory stays O(streams · k) regardless of stream length.
            let monitor = Monitor::new(
                t.underlying_nfa(),
                MonitorConfig {
                    window,
                    threads: opts.threads,
                    batch,
                },
            );
            let paths: Vec<std::path::PathBuf> =
                args.iter().map(std::path::PathBuf::from).collect();
            let reports = monitor.run_paths(&paths)?;
            for r in &reports {
                let _ = writeln!(out, "== {}", r.name);
                if series {
                    for (i, p) in r.series.iter().enumerate() {
                        let _ = writeln!(out, "t={:<6} {p}", i + 1);
                    }
                } else {
                    let _ = writeln!(
                        out,
                        "p = {}  ({} positions)",
                        r.final_probability(),
                        r.positions
                    );
                }
            }
        }
        "convert" => {
            use transmark_markov::fsio::{is_binary_path, open_step_source};
            use transmark_markov::StepSource as _;
            let [in_path, out_path] = positional::<2>(args)?;
            let (src_bin, dst_bin) = (
                is_binary_path(Path::new(&in_path)),
                is_binary_path(Path::new(&out_path)),
            );
            if src_bin == dst_bin {
                return Err(usage_err(
                    "convert maps between formats: one path must end in .tms, the other in .tmsb",
                ));
            }
            if dst_bin {
                // tms → tmsb streams layer-at-a-time; nothing materializes.
                let mut src = open_step_source(Path::new(&in_path))
                    .map_err(|e| run_err(format!("{in_path}: {e}")))?;
                let file = std::fs::File::create(&out_path)
                    .map_err(|e| run_err(format!("create {out_path}: {e}")))?;
                let mut w = std::io::BufWriter::new(file);
                transmark_markov::binio::write_tmsb(&mut w, &mut src)
                    .map_err(|e| run_err(format!("{out_path}: {e}")))?;
                std::io::Write::flush(&mut w).map_err(|e| run_err(format!("{out_path}: {e}")))?;
            } else {
                // tmsb → tms: the text writer needs the whole model.
                let m = load_sequence(&in_path)?;
                std::fs::write(&out_path, transmark_markov::textio::to_text(&m))
                    .map_err(|e| run_err(format!("write {out_path}: {e}")))?;
            }
            // Round-trip validation: both files must stream identical
            // alphabets, initials, and layers (two O(|Σ|²) cursors).
            let mut a = open_step_source(Path::new(&in_path))
                .map_err(|e| run_err(format!("{in_path}: {e}")))?;
            let mut b = open_step_source(Path::new(&out_path))
                .map_err(|e| run_err(format!("{out_path}: {e}")))?;
            let names_match = a.alphabet().len() == b.alphabet().len()
                && a.alphabet()
                    .iter()
                    .zip(b.alphabet().iter())
                    .all(|((_, x), (_, y))| x == y);
            if !names_match || a.len() != b.len() || a.initial() != b.initial() {
                return Err(run_err(format!(
                    "round-trip mismatch between {in_path} and {out_path}"
                )));
            }
            loop {
                let step = a.position();
                let la = a
                    .next_step()
                    .map_err(|e| run_err(format!("{in_path}: {e}")))?;
                let lb = b
                    .next_step()
                    .map_err(|e| run_err(format!("{out_path}: {e}")))?;
                match (la, lb) {
                    (None, None) => break,
                    (Some(x), Some(y)) if x == y => continue,
                    _ => {
                        return Err(run_err(format!(
                            "round-trip mismatch at step {step} between {in_path} and {out_path}"
                        )))
                    }
                }
            }
            let _ = writeln!(
                out,
                "wrote {out_path} ({} positions, {} symbols, round trip verified)",
                b.len(),
                b.alphabet().len()
            );
        }
        "evidences" => {
            let k = take_opt(&mut args, "--k")?
                .map(|v| parse_usize(&v, "--k"))
                .transpose()?
                .unwrap_or(5);
            if args.len() < 2 {
                return Err(usage_err("evidences needs <sequence> <query> <symbols…>"));
            }
            let seq_path = args.remove(0);
            let query_path = args.remove(0);
            let m = load_sequence(&seq_path)?;
            let t = load_transducer(&query_path)?;
            let o = parse_output(&t, &args)?;
            for e in top_k_evidences(&t, &m, &o, k)? {
                let _ = writeln!(
                    out,
                    "{}  (p = {:.6})",
                    m.alphabet().render(&e.world, " "),
                    e.prob()
                );
            }
        }
        "extract" => {
            let k = take_opt(&mut args, "--k")?
                .map(|v| parse_usize(&v, "--k"))
                .transpose()?
                .unwrap_or(10);
            let [seq_path, query_path] = positional::<2>(args)?;
            let m = load_sequence(&seq_path)?;
            let p = load_sprojector(&query_path)?;
            let ev = SprojEvaluation::new(&p, &m)?;
            if opts.explain {
                let _ = writeln!(out, "{}", ev.explain());
            }
            for r in ev.strings()?.take(k) {
                let text = m.alphabet().render(&r.output, "");
                let rendered = if text.is_empty() {
                    "ε".to_string()
                } else {
                    text
                };
                let exact = ev.confidence(&r.output)?;
                let _ = writeln!(
                    out,
                    "{rendered:<24} I_max = {:.6}  confidence = {exact:.6}",
                    r.score()
                );
            }
        }
        "occurrences" => {
            let k = take_opt(&mut args, "--k")?
                .map(|v| parse_usize(&v, "--k"))
                .transpose()?
                .unwrap_or(10);
            let [seq_path, query_path] = positional::<2>(args)?;
            let m = load_sequence(&seq_path)?;
            let p = load_sprojector(&query_path)?;
            let ev = SprojEvaluation::new(&p, &m)?;
            if opts.explain {
                let _ = writeln!(out, "{}", ev.explain());
            }
            for ia in ev.occurrences()?.take(k) {
                let text = m.alphabet().render(&ia.output, "");
                let rendered = if text.is_empty() {
                    "ε".to_string()
                } else {
                    text
                };
                let _ = writeln!(
                    out,
                    "{rendered:<24} at {:<4} confidence = {:.6}",
                    ia.index,
                    ia.confidence()
                );
            }
        }
        "posterior" => {
            let out_path = take_opt(&mut args, "--out")?;
            if args.len() < 2 {
                return Err(usage_err("posterior needs <model.tmh> <observations…>"));
            }
            let model_path = args.remove(0);
            let text = std::fs::read_to_string(&model_path)
                .map_err(|e| run_err(format!("cannot read {model_path}: {e}")))?;
            let hmm = transmark_markov::hmm_textio::from_text(&text)
                .map_err(|e| run_err(format!("{model_path}: {e}")))?;
            let obs: Vec<transmark_automata::SymbolId> = args
                .iter()
                .map(|n| {
                    hmm.observation_alphabet()
                        .get(n)
                        .ok_or_else(|| run_err(format!("unknown observation {n:?}")))
                })
                .collect::<Result<_, _>>()?;
            let posterior = hmm.posterior(&obs)?;
            let rendered = transmark_markov::textio::to_text(&posterior);
            match out_path {
                Some(path) => {
                    std::fs::write(&path, rendered)
                        .map_err(|e| run_err(format!("write {path}: {e}")))?;
                    let _ = writeln!(out, "wrote {path}");
                }
                None => out.push_str(&rendered),
            }
        }
        "export-example" => {
            let [dir] = positional::<1>(args)?;
            let dir = Path::new(&dir);
            std::fs::create_dir_all(dir)
                .map_err(|e| run_err(format!("cannot create {}: {e}", dir.display())))?;
            let m = transmark_workloads::hospital::hospital_sequence();
            let t = transmark_workloads::hospital::room_tracker();
            let seq_path = dir.join("hospital.tms");
            let query_path = dir.join("room_tracker.tmt");
            std::fs::write(&seq_path, transmark_markov::textio::to_text(&m))
                .map_err(|e| run_err(format!("write {}: {e}", seq_path.display())))?;
            std::fs::write(&query_path, transmark_core::textio::to_text(&t))
                .map_err(|e| run_err(format!("write {}: {e}", query_path.display())))?;
            let _ = writeln!(out, "wrote {}", seq_path.display());
            let _ = writeln!(out, "wrote {}", query_path.display());
            let _ = writeln!(
                out,
                "try: tmk top {} {}",
                seq_path.display(),
                query_path.display()
            );
        }
        "serve" => {
            let workers = take_opt(&mut args, "--workers")?
                .map(|v| parse_usize(&v, "--workers"))
                .transpose()?
                .unwrap_or(0);
            let queue_cap = take_opt(&mut args, "--queue")?
                .map(|v| parse_usize(&v, "--queue"))
                .transpose()?
                .unwrap_or(64);
            let tenant_quota = take_opt(&mut args, "--tenant-quota")?
                .map(|v| parse_usize(&v, "--tenant-quota"))
                .transpose()?
                .unwrap_or(4);
            let plan_capacity = take_opt(&mut args, "--plan-cache")?
                .map(|v| parse_usize(&v, "--plan-cache"))
                .transpose()?
                .unwrap_or(transmark_store::DEFAULT_PLAN_CACHE_CAP);
            let slow_ms = take_opt(&mut args, "--slow-ms")?
                .map(|v| parse_usize(&v, "--slow-ms"))
                .transpose()?
                .map(|v| v as u64);
            let log = take_opt(&mut args, "--log")?;
            let addr = match args.len() {
                0 => "127.0.0.1:0".to_string(),
                1 => args.remove(0),
                _ => return Err(usage_err("serve takes at most one address")),
            };
            let server = crate::serve::Server::start(crate::serve::ServeConfig {
                addr,
                threads: workers,
                queue_cap,
                tenant_quota,
                plan_capacity,
                slow_ms,
                log,
            })
            .map_err(|e| run_err(format!("cannot start server: {e}")))?;
            // Printed (and flushed) before blocking: supervisors and the
            // CI smoke test discover the resolved ephemeral port here.
            println!("tmk serve listening on {}", server.local_addr());
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            server.wait();
            let _ = writeln!(out, "tmk serve stopped");
        }
        "client" => {
            use crate::serve::client::Client;
            let tenant = take_opt(&mut args, "--tenant")?.unwrap_or_else(|| "cli".to_string());
            if args.len() < 2 {
                return Err(usage_err(
                    "client needs <addr> <confidence|top|series|stream|metrics|shutdown> …",
                ));
            }
            let addr = args.remove(0);
            let sub = args.remove(0);
            // Any profiling output (--profile, --profile=FILE, --flame)
            // requests the server-side profile too; with a v2 peer the
            // request also carries a fresh trace id, so the server's
            // timeline comes back as JSON and is stitched into the local
            // recorder's — one trace spanning both processes.
            let profile = opts.profile.is_some() || opts.flame.is_some();
            let traced = recorder.is_some();
            let wire = |e: crate::serve::protocol::WireError| run_err(e);
            let mut client = Client::connect(&addr, &tenant).map_err(wire)?;
            if let Some(rec) = &recorder {
                let trace_id = new_trace_id();
                rec.set_trace(trace_id);
                client.set_trace(trace_id);
            }
            match sub.as_str() {
                "confidence" => {
                    if args.len() < 2 {
                        return Err(usage_err(
                            "client confidence needs <query.tmt> <seq> <sym>…",
                        ));
                    }
                    let query_text = read_file_text(&args.remove(0))?;
                    let (seq_bytes, binary) = read_sequence_payload(&args.remove(0))?;
                    let seq = sequence_payload(&seq_bytes, binary)?;
                    let resp = client
                        .confidence(&query_text, &seq, &args.join(" "), profile)
                        .map_err(wire)?;
                    let _ = writeln!(out, "{}", resp.value);
                    absorb_remote_profile(
                        &mut out,
                        &mut remote_profiles,
                        traced,
                        resp.profile,
                        resp.sent_at_ns,
                    );
                }
                "top" => {
                    let k = take_opt(&mut args, "--k")?
                        .map(|v| parse_usize(&v, "--k"))
                        .transpose()?
                        .unwrap_or(10);
                    let [query_path, seq_path] = positional::<2>(args)?;
                    let query_text = read_file_text(&query_path)?;
                    // Parse the query locally too, to render symbol names.
                    let t = transmark_core::textio::from_text(&query_text)
                        .map_err(|e| run_err(format!("{query_path}: {e}")))?;
                    let (seq_bytes, binary) = read_sequence_payload(&seq_path)?;
                    let seq = sequence_payload(&seq_bytes, binary)?;
                    let resp = client
                        .top_k(&query_text, &seq, k as u32, profile)
                        .map_err(wire)?;
                    if resp.value.is_empty() {
                        let _ = writeln!(out, "(no answers)");
                    }
                    for a in &resp.value {
                        let o: Vec<transmark_automata::SymbolId> = a
                            .output
                            .iter()
                            .map(|&s| transmark_automata::SymbolId(s))
                            .collect();
                        let _ = writeln!(
                            out,
                            "{:<30} E_max = {:.6}  confidence = {:.6}",
                            render(&t, &o),
                            a.emax,
                            a.confidence
                        );
                    }
                    absorb_remote_profile(
                        &mut out,
                        &mut remote_profiles,
                        traced,
                        resp.profile,
                        resp.sent_at_ns,
                    );
                }
                "series" => {
                    let [query_path, seq_path] = positional::<2>(args)?;
                    let query_text = read_file_text(&query_path)?;
                    let (seq_bytes, binary) = read_sequence_payload(&seq_path)?;
                    let seq = sequence_payload(&seq_bytes, binary)?;
                    let resp = client.series(&query_text, &seq, profile).map_err(wire)?;
                    for (i, p) in resp.value.iter().enumerate() {
                        let _ = writeln!(out, "t={:<4} {p}", i + 1);
                    }
                    absorb_remote_profile(
                        &mut out,
                        &mut remote_profiles,
                        traced,
                        resp.profile,
                        resp.sent_at_ns,
                    );
                }
                "stream" => {
                    use crate::serve::client::{StreamCheckpoint, StreamOptions};
                    let chunk = take_opt(&mut args, "--chunk")?
                        .map(|v| parse_usize(&v, "--chunk"))
                        .transpose()?
                        .unwrap_or(4096);
                    let window = take_opt(&mut args, "--window")?
                        .map(|v| parse_usize(&v, "--window"))
                        .transpose()?;
                    let every = take_opt(&mut args, "--checkpoint-every")?
                        .map(|v| parse_usize(&v, "--checkpoint-every"))
                        .transpose()?;
                    let state_path = take_opt(&mut args, "--resume")?;
                    if every.is_some() && state_path.is_none() {
                        return Err(usage_err(
                            "--checkpoint-every needs --resume FILE to persist the checkpoints",
                        ));
                    }
                    if args.len() < 2 {
                        return Err(usage_err(
                            "client stream needs <query.tmt> <seq> [<sym>…] [--chunk BYTES] \
                             [--window W] [--resume FILE [--checkpoint-every N]]",
                        ));
                    }
                    let query_text = read_file_text(&args.remove(0))?;
                    let tmsb = read_tmsb_bytes(&args.remove(0))?;
                    if window.is_some() && !args.is_empty() {
                        return Err(usage_err(
                            "--window streams the window series; it takes no output symbols",
                        ));
                    }
                    // `--resume FILE` makes the session durable: checkpoints
                    // taken every `--checkpoint-every` chunks (default 8) are
                    // persisted to FILE as the stream runs, and if FILE
                    // already holds one (a previous run died mid-stream) the
                    // session continues from it instead of starting over.
                    let resume_ck = match state_path.as_deref() {
                        Some(p) if Path::new(p).exists() => {
                            let bytes =
                                std::fs::read(p).map_err(|e| run_err(format!("read {p}: {e}")))?;
                            let ck = StreamCheckpoint::from_bytes(&bytes).map_err(wire)?;
                            let _ = writeln!(out, "resuming from position {}", ck.position);
                            Some(ck)
                        }
                        _ => None,
                    };
                    let mut save_err: Option<String> = None;
                    let save_path = state_path.clone();
                    let mut on_ck = |ck: &StreamCheckpoint| {
                        if let Some(p) = &save_path {
                            if let Err(e) = std::fs::write(p, ck.to_bytes()) {
                                save_err = Some(format!("write {p}: {e}"));
                            }
                        }
                    };
                    let stream_opts = StreamOptions {
                        checkpoint_every: state_path.as_ref().map(|_| every.unwrap_or(8)),
                        on_checkpoint: state_path
                            .as_ref()
                            .map(|_| &mut on_ck as &mut dyn FnMut(&StreamCheckpoint)),
                        resume: resume_ck.as_ref(),
                    };
                    let (profile_text, sent_at) = if let Some(w) = window {
                        let resp = client
                            .stream_window(&query_text, &tmsb, w as u32, chunk, stream_opts)
                            .map_err(wire)?;
                        for (i, p) in resp.value.iter().enumerate() {
                            let _ = writeln!(out, "t={:<4} {p}", i + 1);
                        }
                        (resp.profile, resp.sent_at_ns)
                    } else if args.is_empty() {
                        let resp = client
                            .stream_series_with(&query_text, &tmsb, chunk, stream_opts)
                            .map_err(wire)?;
                        for (i, p) in resp.value.iter().enumerate() {
                            let _ = writeln!(out, "t={:<4} {p}", i + 1);
                        }
                        (resp.profile, resp.sent_at_ns)
                    } else {
                        let resp = client
                            .stream_confidence_with(
                                &query_text,
                                &args.join(" "),
                                &tmsb,
                                chunk,
                                stream_opts,
                            )
                            .map_err(wire)?;
                        let _ = writeln!(out, "{}", resp.value);
                        (resp.profile, resp.sent_at_ns)
                    };
                    absorb_remote_profile(
                        &mut out,
                        &mut remote_profiles,
                        traced,
                        profile_text,
                        sent_at,
                    );
                    if let Some(e) = save_err {
                        return Err(run_err(e));
                    }
                    // The stream completed: a leftover checkpoint would make
                    // the next run resume past the end, so clear it.
                    if let Some(p) = &state_path {
                        let _ = std::fs::remove_file(p);
                    }
                }
                "metrics" => {
                    let json = take_flag(&mut args, "--json");
                    let prom = take_flag(&mut args, "--prom");
                    if !args.is_empty() || (json && prom) {
                        return Err(usage_err("client metrics takes --json or --prom"));
                    }
                    let format = if json {
                        1
                    } else if prom {
                        2
                    } else {
                        0
                    };
                    out.push_str(&client.metrics_format(format).map_err(wire)?);
                }
                "shutdown" => {
                    if !args.is_empty() {
                        return Err(usage_err("client shutdown takes no arguments"));
                    }
                    client.shutdown().map_err(wire)?;
                    let _ = writeln!(out, "server acknowledged shutdown");
                }
                other => return Err(usage_err(format!("unknown client subcommand {other:?}"))),
            }
        }
        "bench" => {
            out.push_str(&crate::bench::run_command(args)?);
        }
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{USAGE}");
        }
        other => return Err(usage_err(format!("unknown command {other:?}"))),
    }
    drop(scope);
    if let Some(rec) = recorder {
        let mut profile = rec.finish();
        // Stitch in server timelines returned by traced client
        // requests: each remote profile merges at the offset its
        // request frame was written, under a `server/` lane prefix,
        // sharing the one client-generated trace id.
        for (remote, offset_ns) in &remote_profiles {
            profile.merge_remote(remote, *offset_ns, "server/");
        }
        if let Some(dest) = &opts.profile {
            let trace = transmark_obs::trace::chrome_trace(&profile);
            match dest {
                Some(path) => {
                    std::fs::write(path, trace)
                        .map_err(|e| run_err(format!("write {path}: {e}")))?;
                    let events: usize = profile.lanes.iter().map(|l| l.events.len()).sum();
                    let _ = writeln!(
                        out,
                        "wrote {path} ({events} events, {} lanes)",
                        profile.lanes.len()
                    );
                }
                None => {
                    out.push_str("== profile ==\n");
                    if transmark_obs::enabled() {
                        out.push_str(&profile.to_text());
                    } else {
                        out.push_str("(profiling disabled: built with feature obs-off)\n");
                    }
                }
            }
        }
        if let Some(dest) = &opts.flame {
            let flame = transmark_obs::trace::folded(&profile);
            match dest {
                Some(path) => {
                    std::fs::write(path, &flame)
                        .map_err(|e| run_err(format!("write {path}: {e}")))?;
                    let _ = writeln!(out, "wrote {path} ({} stacks)", flame.lines().count());
                }
                None => {
                    out.push_str("== flame ==\n");
                    if transmark_obs::enabled() {
                        out.push_str(&flame);
                    } else {
                        out.push_str("(profiling disabled: built with feature obs-off)\n");
                    }
                }
            }
        }
    }
    if let Some(format) = opts.metrics {
        let diff = transmark_obs::registry().snapshot().diff(&baseline);
        match format {
            MetricsFormat::Json => {
                out.push_str(&diff.to_json());
                out.push('\n');
            }
            MetricsFormat::Text => out.push_str(&metrics_report(&diff)),
        }
    }
    Ok(out)
}

/// Exactly-N positional arguments, or a usage error.
fn positional<const N: usize>(args: Vec<String>) -> Result<[String; N], CliError> {
    if args.len() != N {
        return Err(usage_err(format!(
            "expected {N} argument(s), found {}",
            args.len()
        )));
    }
    Ok(args.try_into().expect("length checked"))
}
