//! The `tmk` command-line interface.
//!
//! All command logic lives here and returns the rendered output as a
//! `String`, so the integration tests can drive it without spawning
//! processes; `src/bin/tmk.rs` is a thin wrapper.
//!
//! ```text
//! tmk show <sequence.tms>
//! tmk map <sequence.tms>
//! tmk sample <sequence.tms> [--count N] [--seed S]
//! tmk top <sequence.tms> <query.tmt> [--k N] [--explain]
//! tmk enumerate <sequence.tms> <query.tmt> [--limit N] [--explain]
//! tmk confidence <sequence.tms> <query.tmt> [--explain] <output-symbol>...
//! tmk evidences <sequence.tms> <query.tmt> [--k N] <output-symbol>...
//! tmk batch <query.tmt> <sequence>... [--k N] [--threads N] [--confidence SYMS] [--explain]
//! tmk stream <query.tmt> [steps.tms|steps.tmsb|-]
//! tmk convert <in.tms|in.tmsb> <out.tms|out.tmsb>
//! tmk extract <sequence.tms> <query.tmp> [--k N] [--explain]
//! tmk occurrences <sequence.tms> <query.tmp> [--k N] [--explain]
//! tmk posterior <model.tmh> --out <file.tms> <observation>...
//! tmk export-example <directory>
//! ```
//!
//! Transducer and s-projector commands compile the query into a
//! prepared plan first; `--explain` prints the chosen plan (its Table 2
//! route, machine shape, and precompile cost) before the results.
//! `batch` compiles the query once and binds the one shared plan to
//! every sequence file in turn.
//!
//! Sequences are accepted in either on-disk format, chosen by extension:
//! `.tms` text ([`transmark_markov::textio`]) or `.tmsb` zero-copy binary
//! ([`transmark_markov::binio`]); `tmk convert` maps between them.
//! Forward-only commands (`stream`, `batch --confidence`) fold the file
//! as a [`transmark_markov::StepSource`], one `|Σ|²` layer at a time, so
//! they never materialize the sequence — `tmk stream` also reads step
//! records from stdin (`-`), printing the running acceptance probability
//! after each folded layer. Queries use `transducer v1`
//! ([`transmark_core::textio`]).

use std::fmt::Write as _;
use std::path::Path;

use transmark_core::evaluate::Evaluation;
use transmark_core::evidence::top_k_evidences;
use transmark_core::transducer::Transducer;
use transmark_markov::MarkovSequence;
use transmark_sproj::SprojEvaluation;

/// A CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Suggested process exit code (2 = usage, 1 = runtime).
    pub exit_code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

fn usage_err(message: impl Into<String>) -> CliError {
    CliError {
        message: format!("{}\n\n{}", message.into(), USAGE),
        exit_code: 2,
    }
}

fn run_err(message: impl std::fmt::Display) -> CliError {
    CliError {
        message: message.to_string(),
        exit_code: 1,
    }
}

/// The usage text.
pub const USAGE: &str = "tmk — query Markov sequences with finite-state transducers

USAGE:
  tmk show <sequence.tms>                               model summary + marginals
  tmk map <sequence.tms>                                most likely world
  tmk sample <sequence.tms> [--count N] [--seed S]      draw random worlds
  tmk top <sequence.tms> <query.tmt> [--k N]            ranked answers + confidence
  tmk enumerate <sequence.tms> <query.tmt> [--limit N]  all answers, lexicographic
  tmk confidence <sequence.tms> <query.tmt> <sym>...    confidence of one output
  tmk evidences <sequence.tms> <query.tmt> [--k N] <sym>...
                                                        most likely worlds behind an output
  tmk batch <query.tmt> <seq>... [--k N]                one query, many sequences, one shared plan
  tmk stream <query.tmt> [steps|-]                      fold steps from file or stdin, printing the
                                                        running acceptance probability
  tmk convert <in> <out>                                convert .tms <-> .tmsb (validated round trip)
  tmk extract <sequence.tms> <query.tmp> [--k N]        s-projector: distinct strings by I_max
  tmk occurrences <sequence.tms> <query.tmp> [--k N]    s-projector: (string, position) by confidence
  tmk posterior <model.tmh> --out <f.tms> <obs>...      condition an HMM, write the posterior
  tmk export-example <dir>                              write the paper's running example

OPTIONS:
  --explain            (top, enumerate, confidence, batch, extract, occurrences)
                       print the compiled query plan — its Table 2 route, machine
                       shape, and precompile cost — before the results
  --threads N          (batch) evaluate the fleet on N OS threads; 0 = one per
                       available core (default 1)
  --confidence SYMS    (batch) instead of top-k, stream the confidence of the
                       comma-separated output SYMS over each file without
                       materializing it

FILES:
  .tms  — markov-sequence v1, text   (see transmark_markov::textio)
  .tmsb — markov-sequence v1, binary (zero-copy; see transmark_markov::binio)
  .tmt  — transducer v1              (see transmark_core::textio)
  .tmp  — sprojector v1              (see transmark_sproj::textio)
  .tmh  — hmm v1                     (see transmark_markov::hmm_textio)

Sequence arguments accept either format, dispatched on the extension.";

/// Parses `--flag value` style options out of an argument list, returning
/// the remaining positional arguments.
fn take_opt(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, CliError> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(usage_err(format!("{flag} requires a value")));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

/// Removes a boolean `--flag` from the argument list, reporting whether
/// it was present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn parse_usize(s: &str, what: &str) -> Result<usize, CliError> {
    s.parse()
        .map_err(|e| usage_err(format!("bad {what} {s:?}: {e}")))
}

fn load_sequence(path: &str) -> Result<MarkovSequence, CliError> {
    transmark_markov::fsio::read_sequence_path(Path::new(path)).map_err(|e| match e {
        transmark_markov::SourceError::Io(e) => run_err(format!("cannot read {path}: {e}")),
        e => run_err(format!("{path}: {e}")),
    })
}

fn load_sprojector(path: &str) -> Result<transmark_sproj::SProjector, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| run_err(format!("cannot read {path}: {e}")))?;
    transmark_sproj::textio::from_text(&text).map_err(|e| run_err(format!("{path}: {e}")))
}

fn load_transducer(path: &str) -> Result<Transducer, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| run_err(format!("cannot read {path}: {e}")))?;
    transmark_core::textio::from_text(&text).map_err(|e| run_err(format!("{path}: {e}")))
}

fn parse_output(
    t: &Transducer,
    names: &[String],
) -> Result<Vec<transmark_automata::SymbolId>, CliError> {
    names
        .iter()
        .map(|n| {
            t.output_alphabet()
                .get(n)
                .ok_or_else(|| run_err(format!("unknown output symbol {n:?}")))
        })
        .collect()
}

fn render(t: &Transducer, o: &[transmark_automata::SymbolId]) -> String {
    if o.is_empty() {
        "ε".to_string()
    } else {
        t.render_output(o, " ")
    }
}

/// Runs a CLI invocation (excluding the program name) and returns its
/// stdout text.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut args: Vec<String> = args.to_vec();
    if args.is_empty() {
        return Err(usage_err("missing command"));
    }
    let command = args.remove(0);
    let mut out = String::new();
    match command.as_str() {
        "show" => {
            let [seq_path] = positional::<1>(args)?;
            let m = load_sequence(&seq_path)?;
            let _ = writeln!(
                out,
                "markov sequence: length {}, {} symbols",
                m.len(),
                m.n_symbols()
            );
            let names: Vec<&str> = m.alphabet().iter().map(|(_, n)| n).collect();
            let _ = writeln!(out, "alphabet: {}", names.join(" "));
            let _ = writeln!(out, "marginals:");
            for (i, dist) in m.marginals().iter().enumerate() {
                let cells: Vec<String> = dist.iter().map(|p| format!("{p:.4}")).collect();
                let _ = writeln!(out, "  t={:<3} {}", i + 1, cells.join(" "));
            }
        }
        "map" => {
            let [seq_path] = positional::<1>(args)?;
            let m = load_sequence(&seq_path)?;
            let (s, p) = m.most_likely_string();
            let _ = writeln!(out, "{}  (p = {p:.6})", m.alphabet().render(&s, " "));
        }
        "sample" => {
            use rand::{rngs::StdRng, SeedableRng};
            let count = take_opt(&mut args, "--count")?
                .map(|v| parse_usize(&v, "--count"))
                .transpose()?
                .unwrap_or(1);
            let seed = take_opt(&mut args, "--seed")?
                .map(|v| parse_usize(&v, "--seed"))
                .transpose()?
                .unwrap_or(0) as u64;
            let [seq_path] = positional::<1>(args)?;
            let m = load_sequence(&seq_path)?;
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..count {
                let s = m.sample(&mut rng);
                let _ = writeln!(out, "{}", m.alphabet().render(&s, " "));
            }
        }
        "top" => {
            let k = take_opt(&mut args, "--k")?
                .map(|v| parse_usize(&v, "--k"))
                .transpose()?
                .unwrap_or(10);
            let explain = take_flag(&mut args, "--explain");
            let [seq_path, query_path] = positional::<2>(args)?;
            let m = load_sequence(&seq_path)?;
            let t = load_transducer(&query_path)?;
            let ev = Evaluation::new(&t, &m).map_err(run_err)?;
            if explain {
                let _ = writeln!(out, "{}", ev.explain());
            }
            let answers = ev.top_k_scored(k).map_err(run_err)?;
            if answers.is_empty() {
                let _ = writeln!(out, "(no answers)");
            }
            for a in answers {
                let _ = writeln!(
                    out,
                    "{:<30} E_max = {:.6}  confidence = {:.6}",
                    render(&t, &a.output),
                    a.emax,
                    a.confidence
                );
            }
        }
        "enumerate" => {
            let limit = take_opt(&mut args, "--limit")?
                .map(|v| parse_usize(&v, "--limit"))
                .transpose()?
                .unwrap_or(usize::MAX);
            let explain = take_flag(&mut args, "--explain");
            let [seq_path, query_path] = positional::<2>(args)?;
            let m = load_sequence(&seq_path)?;
            let t = load_transducer(&query_path)?;
            let ev = Evaluation::new(&t, &m).map_err(run_err)?;
            if explain {
                let _ = writeln!(out, "{}", ev.explain());
            }
            for o in ev.unranked().map_err(run_err)?.take(limit) {
                let _ = writeln!(out, "{}", render(&t, &o));
            }
        }
        "confidence" => {
            let explain = take_flag(&mut args, "--explain");
            if args.len() < 2 {
                return Err(usage_err("confidence needs <sequence> <query> <symbols…>"));
            }
            let seq_path = args.remove(0);
            let query_path = args.remove(0);
            let m = load_sequence(&seq_path)?;
            let t = load_transducer(&query_path)?;
            let o = parse_output(&t, &args)?;
            let ev = Evaluation::new(&t, &m).map_err(run_err)?;
            if explain {
                let _ = writeln!(out, "{}", ev.explain());
            }
            let c = ev.confidence(&o).map_err(run_err)?;
            let _ = writeln!(out, "{c}");
        }
        "batch" => {
            let k = take_opt(&mut args, "--k")?
                .map(|v| parse_usize(&v, "--k"))
                .transpose()?
                .unwrap_or(10);
            let threads = take_opt(&mut args, "--threads")?
                .map(|v| parse_usize(&v, "--threads"))
                .transpose()?
                .unwrap_or(1);
            let conf_syms = take_opt(&mut args, "--confidence")?;
            let explain = take_flag(&mut args, "--explain");
            if args.len() < 2 {
                return Err(usage_err("batch needs <query.tmt> <sequence>…"));
            }
            let query_path = args.remove(0);
            let t = load_transducer(&query_path)?;
            // Compile once; every sequence file binds the same plan.
            let plan = transmark_core::prepare(&t);
            if explain {
                let _ = writeln!(out, "{}", plan.explain());
            }
            let paths: Vec<std::path::PathBuf> =
                args.iter().map(std::path::PathBuf::from).collect();
            match conf_syms {
                // Forward-only fleet: stream each file through the shared
                // plan, one layer at a time — nothing is materialized.
                Some(syms) => {
                    let names: Vec<String> = syms
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(String::from)
                        .collect();
                    let o = parse_output(&t, &names)?;
                    let results = transmark_store::par_map_paths(&paths, threads, |path| {
                        let src = transmark_markov::fsio::open_step_source(path).map_err(|e| {
                            transmark_store::StoreError::Io(format!("{}: {e}", path.display()))
                        })?;
                        Ok(plan.bind_source(src)?.confidence(&o)?)
                    })
                    .map_err(run_err)?;
                    for seq_path in &args {
                        let _ = writeln!(out, "{seq_path}  {}", results[seq_path.as_str()]);
                    }
                }
                // Ranked answers need random access (backward sweeps), so
                // each worker materializes its own file.
                None => {
                    let results = transmark_store::par_map_paths(&paths, threads, |path| {
                        let m = transmark_markov::fsio::read_sequence_path(path).map_err(|e| {
                            transmark_store::StoreError::Io(format!("{}: {e}", path.display()))
                        })?;
                        let ev = Evaluation::with_plan(&plan, &m)?;
                        Ok(ev.top_k_scored(k)?)
                    })
                    .map_err(run_err)?;
                    for seq_path in &args {
                        let _ = writeln!(out, "== {seq_path}");
                        let answers = &results[seq_path.as_str()];
                        if answers.is_empty() {
                            let _ = writeln!(out, "(no answers)");
                        }
                        for a in answers {
                            let _ = writeln!(
                                out,
                                "{:<30} E_max = {:.6}  confidence = {:.6}",
                                render(&t, &a.output),
                                a.emax,
                                a.confidence
                            );
                        }
                    }
                }
            }
        }
        "stream" => {
            if args.is_empty() || args.len() > 2 {
                return Err(usage_err(
                    "stream needs <query.tmt> [steps.tms|steps.tmsb|-]",
                ));
            }
            let query_path = args.remove(0);
            let t = load_transducer(&query_path)?;
            // The running Boolean event query: Pr(S[1..t] ∈ L(A)) for the
            // query's underlying input automaton, folded one layer at a
            // time (memory independent of stream length).
            let nfa = t.underlying_nfa();
            let series = match args.first().map(String::as_str) {
                Some(path) if path != "-" => {
                    let mut src = transmark_markov::fsio::open_step_source(Path::new(path))
                        .map_err(|e| run_err(format!("{path}: {e}")))?;
                    transmark_core::prefix_acceptance_probabilities_source(&nfa, &mut src)
                        .map_err(run_err)?
                }
                _ => {
                    let stdin = std::io::stdin();
                    let mut src = transmark_markov::textio::TmsTextSource::new(stdin.lock())
                        .map_err(|e| run_err(format!("stdin: {e}")))?;
                    transmark_core::prefix_acceptance_probabilities_source(&nfa, &mut src)
                        .map_err(run_err)?
                }
            };
            for (i, p) in series.iter().enumerate() {
                let _ = writeln!(out, "t={:<6} {p}", i + 1);
            }
        }
        "convert" => {
            use transmark_markov::fsio::{is_binary_path, open_step_source};
            use transmark_markov::StepSource as _;
            let [in_path, out_path] = positional::<2>(args)?;
            let (src_bin, dst_bin) = (
                is_binary_path(Path::new(&in_path)),
                is_binary_path(Path::new(&out_path)),
            );
            if src_bin == dst_bin {
                return Err(usage_err(
                    "convert maps between formats: one path must end in .tms, the other in .tmsb",
                ));
            }
            if dst_bin {
                // tms → tmsb streams layer-at-a-time; nothing materializes.
                let mut src = open_step_source(Path::new(&in_path))
                    .map_err(|e| run_err(format!("{in_path}: {e}")))?;
                let file = std::fs::File::create(&out_path)
                    .map_err(|e| run_err(format!("create {out_path}: {e}")))?;
                let mut w = std::io::BufWriter::new(file);
                transmark_markov::binio::write_tmsb(&mut w, &mut src)
                    .map_err(|e| run_err(format!("{out_path}: {e}")))?;
                std::io::Write::flush(&mut w).map_err(|e| run_err(format!("{out_path}: {e}")))?;
            } else {
                // tmsb → tms: the text writer needs the whole model.
                let m = load_sequence(&in_path)?;
                std::fs::write(&out_path, transmark_markov::textio::to_text(&m))
                    .map_err(|e| run_err(format!("write {out_path}: {e}")))?;
            }
            // Round-trip validation: both files must stream identical
            // alphabets, initials, and layers (two O(|Σ|²) cursors).
            let mut a = open_step_source(Path::new(&in_path))
                .map_err(|e| run_err(format!("{in_path}: {e}")))?;
            let mut b = open_step_source(Path::new(&out_path))
                .map_err(|e| run_err(format!("{out_path}: {e}")))?;
            let names_match = a.alphabet().len() == b.alphabet().len()
                && a.alphabet()
                    .iter()
                    .zip(b.alphabet().iter())
                    .all(|((_, x), (_, y))| x == y);
            if !names_match || a.len() != b.len() || a.initial() != b.initial() {
                return Err(run_err(format!(
                    "round-trip mismatch between {in_path} and {out_path}"
                )));
            }
            loop {
                let step = a.position();
                let la = a
                    .next_step()
                    .map_err(|e| run_err(format!("{in_path}: {e}")))?;
                let lb = b
                    .next_step()
                    .map_err(|e| run_err(format!("{out_path}: {e}")))?;
                match (la, lb) {
                    (None, None) => break,
                    (Some(x), Some(y)) if x == y => continue,
                    _ => {
                        return Err(run_err(format!(
                            "round-trip mismatch at step {step} between {in_path} and {out_path}"
                        )))
                    }
                }
            }
            let _ = writeln!(
                out,
                "wrote {out_path} ({} positions, {} symbols, round trip verified)",
                b.len(),
                b.alphabet().len()
            );
        }
        "evidences" => {
            let k = take_opt(&mut args, "--k")?
                .map(|v| parse_usize(&v, "--k"))
                .transpose()?
                .unwrap_or(5);
            if args.len() < 2 {
                return Err(usage_err("evidences needs <sequence> <query> <symbols…>"));
            }
            let seq_path = args.remove(0);
            let query_path = args.remove(0);
            let m = load_sequence(&seq_path)?;
            let t = load_transducer(&query_path)?;
            let o = parse_output(&t, &args)?;
            for e in top_k_evidences(&t, &m, &o, k).map_err(run_err)? {
                let _ = writeln!(
                    out,
                    "{}  (p = {:.6})",
                    m.alphabet().render(&e.world, " "),
                    e.prob()
                );
            }
        }
        "extract" => {
            let k = take_opt(&mut args, "--k")?
                .map(|v| parse_usize(&v, "--k"))
                .transpose()?
                .unwrap_or(10);
            let explain = take_flag(&mut args, "--explain");
            let [seq_path, query_path] = positional::<2>(args)?;
            let m = load_sequence(&seq_path)?;
            let p = load_sprojector(&query_path)?;
            let ev = SprojEvaluation::new(&p, &m).map_err(run_err)?;
            if explain {
                let _ = writeln!(out, "{}", ev.explain());
            }
            for r in ev.strings().map_err(run_err)?.take(k) {
                let text = m.alphabet().render(&r.output, "");
                let rendered = if text.is_empty() {
                    "ε".to_string()
                } else {
                    text
                };
                let exact = ev.confidence(&r.output).map_err(run_err)?;
                let _ = writeln!(
                    out,
                    "{rendered:<24} I_max = {:.6}  confidence = {exact:.6}",
                    r.score()
                );
            }
        }
        "occurrences" => {
            let k = take_opt(&mut args, "--k")?
                .map(|v| parse_usize(&v, "--k"))
                .transpose()?
                .unwrap_or(10);
            let explain = take_flag(&mut args, "--explain");
            let [seq_path, query_path] = positional::<2>(args)?;
            let m = load_sequence(&seq_path)?;
            let p = load_sprojector(&query_path)?;
            let ev = SprojEvaluation::new(&p, &m).map_err(run_err)?;
            if explain {
                let _ = writeln!(out, "{}", ev.explain());
            }
            for ia in ev.occurrences().map_err(run_err)?.take(k) {
                let text = m.alphabet().render(&ia.output, "");
                let rendered = if text.is_empty() {
                    "ε".to_string()
                } else {
                    text
                };
                let _ = writeln!(
                    out,
                    "{rendered:<24} at {:<4} confidence = {:.6}",
                    ia.index,
                    ia.confidence()
                );
            }
        }
        "posterior" => {
            let out_path = take_opt(&mut args, "--out")?;
            if args.len() < 2 {
                return Err(usage_err("posterior needs <model.tmh> <observations…>"));
            }
            let model_path = args.remove(0);
            let text = std::fs::read_to_string(&model_path)
                .map_err(|e| run_err(format!("cannot read {model_path}: {e}")))?;
            let hmm = transmark_markov::hmm_textio::from_text(&text)
                .map_err(|e| run_err(format!("{model_path}: {e}")))?;
            let obs: Vec<transmark_automata::SymbolId> = args
                .iter()
                .map(|n| {
                    hmm.observation_alphabet()
                        .get(n)
                        .ok_or_else(|| run_err(format!("unknown observation {n:?}")))
                })
                .collect::<Result<_, _>>()?;
            let posterior = hmm.posterior(&obs).map_err(run_err)?;
            let rendered = transmark_markov::textio::to_text(&posterior);
            match out_path {
                Some(path) => {
                    std::fs::write(&path, rendered)
                        .map_err(|e| run_err(format!("write {path}: {e}")))?;
                    let _ = writeln!(out, "wrote {path}");
                }
                None => out.push_str(&rendered),
            }
        }
        "export-example" => {
            let [dir] = positional::<1>(args)?;
            let dir = Path::new(&dir);
            std::fs::create_dir_all(dir)
                .map_err(|e| run_err(format!("cannot create {}: {e}", dir.display())))?;
            let m = transmark_workloads::hospital::hospital_sequence();
            let t = transmark_workloads::hospital::room_tracker();
            let seq_path = dir.join("hospital.tms");
            let query_path = dir.join("room_tracker.tmt");
            std::fs::write(&seq_path, transmark_markov::textio::to_text(&m))
                .map_err(|e| run_err(format!("write {}: {e}", seq_path.display())))?;
            std::fs::write(&query_path, transmark_core::textio::to_text(&t))
                .map_err(|e| run_err(format!("write {}: {e}", query_path.display())))?;
            let _ = writeln!(out, "wrote {}", seq_path.display());
            let _ = writeln!(out, "wrote {}", query_path.display());
            let _ = writeln!(
                out,
                "try: tmk top {} {}",
                seq_path.display(),
                query_path.display()
            );
        }
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{USAGE}");
        }
        other => return Err(usage_err(format!("unknown command {other:?}"))),
    }
    Ok(out)
}

/// Exactly-N positional arguments, or a usage error.
fn positional<const N: usize>(args: Vec<String>) -> Result<[String; N], CliError> {
    if args.len() != N {
        return Err(usage_err(format!(
            "expected {N} argument(s), found {}",
            args.len()
        )));
    }
    Ok(args.try_into().expect("length checked"))
}
