//! The `tmk top` live service dashboard.
//!
//! Polls a running `tmk serve` instance's `GET /metrics.json` endpoint
//! and renders, from each pair of consecutive snapshots, a per-tenant /
//! per-plan-kind table: request rate, windowed p50/p95/p99 latency
//! (from the labelled `serve.request_ns{tenant,kind}` histogram diffs),
//! plan-cache hit rate, worker-pool queue depth, and stream/slow-query
//! activity. Everything derives from [`Snapshot::diff`] over the same
//! JSON snapshot `tmk client metrics --json` scrapes — the dashboard
//! adds no server-side state.
//!
//! Interactive mode (`tmk top ADDR`) repaints in place forever;
//! `--count N` renders N frames to stdout and exits, which is what the
//! integration tests and scripts drive.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use transmark_obs::labels::{label_value, split_labels};
use transmark_obs::{fmt_ns, HistogramSnapshot, Snapshot};

use crate::cli::{run_err, CliError};

/// Polls `addr` every `interval_ms` and renders dashboard frames:
/// forever to the terminal (repainting in place) when `ticks` is
/// `None`, or `ticks` frames appended to `out` otherwise.
pub fn run_dashboard(
    out: &mut String,
    addr: &str,
    interval_ms: u64,
    ticks: Option<usize>,
) -> Result<(), CliError> {
    let interval_ms = interval_ms.max(10);
    let interval_s = interval_ms as f64 / 1000.0;
    let mut prev = fetch_snapshot(addr)?;
    let mut rendered = 0usize;
    loop {
        std::thread::sleep(Duration::from_millis(interval_ms));
        let cur = fetch_snapshot(addr)?;
        let frame = render_frame(addr, &prev, &cur, interval_s);
        prev = cur;
        rendered += 1;
        match ticks {
            Some(n) => {
                out.push_str(&frame);
                if rendered >= n {
                    return Ok(());
                }
            }
            None => {
                // Live mode: clear, home, repaint.
                print!("\x1b[2J\x1b[H{frame}");
                let _ = std::io::stdout().flush();
            }
        }
    }
}

/// One `GET /metrics.json` round trip, parsed back into a [`Snapshot`].
fn fetch_snapshot(addr: &str) -> Result<Snapshot, CliError> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| run_err(format!("cannot connect to {addr}: {e}")))?;
    stream
        .write_all(b"GET /metrics.json HTTP/1.0\r\n\r\n")
        .map_err(|e| run_err(format!("{addr}: {e}")))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| run_err(format!("{addr}: {e}")))?;
    let text = String::from_utf8_lossy(&response);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| run_err(format!("{addr}: malformed HTTP response")))?;
    if !head.contains("200") {
        let status = head.lines().next().unwrap_or("");
        return Err(run_err(format!("{addr}: {status}")));
    }
    Snapshot::from_json(body).map_err(|e| run_err(format!("{addr}: bad /metrics.json: {e}")))
}

/// Renders one dashboard frame from two consecutive snapshots. Pure —
/// the unit tests drive it with hand-built snapshots.
pub fn render_frame(addr: &str, prev: &Snapshot, cur: &Snapshot, interval_s: f64) -> String {
    let d = cur.diff(prev);
    let mut out = String::new();
    let _ = writeln!(out, "tmk top — {addr}  (interval {interval_s:.1}s)");

    // Latency histograms keyed back to (tenant, kind) via their labels,
    // so rows never depend on the rendered label order.
    let mut lat: BTreeMap<(String, String), &HistogramSnapshot> = BTreeMap::new();
    for (name, h) in &d.histograms {
        let (base, labels) = split_labels(name);
        if base == "serve.request_ns" {
            lat.insert(row_key(&labels), h);
        }
    }
    let mut rows: Vec<((String, String), u64)> = Vec::new();
    for (name, &n) in &d.counters {
        let (base, labels) = split_labels(name);
        if base == "serve.requests" {
            rows.push((row_key(&labels), n));
        }
    }
    rows.sort();
    if rows.is_empty() {
        out.push_str("(no requests in the last interval)\n");
    } else {
        let _ = writeln!(
            out,
            "{:<12} {:<12} {:>6} {:>8}  {:>9} {:>9} {:>9}",
            "tenant", "kind", "req", "q/s", "p50", "p95", "p99"
        );
        for ((tenant, kind), n) in &rows {
            let qps = *n as f64 / interval_s;
            let (p50, p95, p99) = match lat.get(&(tenant.clone(), kind.clone())) {
                Some(h) => (
                    fmt_ns(h.quantile(0.50)),
                    fmt_ns(h.quantile(0.95)),
                    fmt_ns(h.quantile(0.99)),
                ),
                None => ("-".to_string(), "-".to_string(), "-".to_string()),
            };
            let _ = writeln!(
                out,
                "{tenant:<12} {kind:<12} {n:>6} {qps:>8.1}  {p50:>9} {p95:>9} {p99:>9}"
            );
        }
    }

    // Service-wide counters for the footer: cache behaviour over the
    // window, pool pressure, stream and slow-query activity.
    let (hits, misses) = (
        d.counter("store.plan_cache.hits"),
        d.counter("store.plan_cache.misses"),
    );
    let cache = if hits + misses > 0 {
        format!("{:.0}%", 100.0 * hits as f64 / (hits + misses) as f64)
    } else {
        "-".to_string()
    };
    let _ = writeln!(
        out,
        "plan cache hit {cache}  pool queue depth {} (high-water)  streams +{}  slow +{}  connections +{}",
        cur.gauge("store.pool.queue_depth{pool=serve}"),
        d.counter("serve.stream_sessions"),
        d.counter("serve.slow_queries"),
        d.counter("serve.connections"),
    );
    out
}

fn row_key(labels: &[(&str, &str)]) -> (String, String) {
    (
        label_value(labels, "tenant").unwrap_or("-").to_string(),
        label_value(labels, "kind").unwrap_or("-").to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(count: u64, sum: u64, max: u64, buckets: Vec<(u64, u64)>) -> HistogramSnapshot {
        HistogramSnapshot {
            count,
            sum,
            max,
            buckets,
        }
    }

    #[test]
    fn frame_renders_per_tenant_rows_from_diffs() {
        let mut prev = Snapshot::default();
        prev.counters
            .insert("serve.requests{tenant=acme,kind=confidence}".into(), 2);
        let mut cur = Snapshot::default();
        cur.counters
            .insert("serve.requests{tenant=acme,kind=confidence}".into(), 12);
        cur.counters
            .insert("serve.requests{tenant=beta,kind=top_k}".into(), 4);
        cur.histograms.insert(
            "serve.request_ns{tenant=acme,kind=confidence}".into(),
            hist(10, 20_480, 4_000, vec![(1024, 10)]),
        );
        cur.counters.insert("store.plan_cache.hits".into(), 9);
        cur.counters.insert("store.plan_cache.misses".into(), 1);
        cur.gauges
            .insert("store.pool.queue_depth{pool=serve}".into(), 3);

        let frame = render_frame("127.0.0.1:9", &prev, &cur, 2.0);
        // acme: 10 new requests over 2s = 5.0 q/s, latencies from the
        // windowed histogram.
        assert!(frame.contains("acme"), "{frame}");
        assert!(frame.contains("confidence"), "{frame}");
        assert!(frame.contains("5.0"), "{frame}");
        // beta has a counter but no histogram: placeholder latencies.
        assert!(frame.contains("beta"), "{frame}");
        assert!(frame.contains('-'), "{frame}");
        assert!(frame.contains("plan cache hit 90%"), "{frame}");
        assert!(frame.contains("pool queue depth 3"), "{frame}");
    }

    #[test]
    fn quiet_interval_renders_placeholder() {
        let s = Snapshot::default();
        let frame = render_frame("127.0.0.1:9", &s, &s, 1.0);
        assert!(
            frame.contains("no requests in the last interval"),
            "{frame}"
        );
        assert!(frame.contains("plan cache hit -"), "{frame}");
    }
}
