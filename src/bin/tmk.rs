//! `tmk` — the transmark command-line interface.
//!
//! See `transmark::cli::USAGE` (or run `tmk help`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match transmark::cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("tmk: {e}");
            std::process::exit(e.exit_code);
        }
    }
}
