//! The [`Engine`] facade: one front door for prepared queries and
//! observability.
//!
//! The layered crates each expose their own entry points (free functions
//! in `transmark-core`, the plan layer's `prepare`/`bind`, the store's
//! fleets). The facade ties the blessed path together:
//!
//! 1. [`Engine::new`] — construct once per application;
//! 2. [`Engine::prepare`] — compile a [`Transducer`] into a shared
//!    [`PreparedQuery`] through the engine's LRU plan cache, so repeated
//!    preparations of structurally identical machines are free;
//! 3. [`PreparedQuery::bind`] / [`PreparedQuery::bind_source`] — bind the
//!    plan to an in-memory sequence or a streamed source and execute;
//! 4. [`Engine::metrics`] — a [`Snapshot`] of everything the layers
//!    recorded since this engine was created (plan-cache traffic,
//!    per-phase timings, kernel and data-plane counters).
//!
//! Every fallible step returns [`TmkError`](transmark_core::error::TmkError),
//! the engine-wide error type.
//!
//! ```
//! use transmark::prelude::*;
//!
//! let alphabet = Alphabet::of_chars("ab");
//! let m = MarkovSequenceBuilder::new(alphabet.clone(), 3)
//!     .uniform_all()
//!     .build()?;
//! let mut b = Transducer::builder(alphabet.clone(), alphabet);
//! let q = b.add_state(true);
//! b.add_transition(q, SymbolId(0), q, &[SymbolId(0)])?;
//! b.add_transition(q, SymbolId(1), q, &[SymbolId(1)])?;
//! let t = b.build()?;
//!
//! let engine = Engine::new();
//! let plan = engine.prepare(&t);
//! let conf = plan.bind(&m)?.confidence(&[SymbolId(0); 3])?;
//! assert!(conf > 0.0);
//!
//! let metrics = engine.metrics();
//! if transmark::obs::enabled() {
//!     assert_eq!(metrics.counter("store.plan_cache.misses"), 1);
//! }
//! # Ok::<(), TmkError>(())
//! ```

use std::sync::Arc;

use transmark_core::plan::{PreparedEventQuery, PreparedQuery};
use transmark_core::transducer::Transducer;
use transmark_obs::{ExecutionProfile, Recorder, Snapshot};
use transmark_store::{PlanCache, PlanCacheStats, DEFAULT_PLAN_CACHE_CAP};

/// The front door of the `transmark` engine: a plan cache plus a metrics
/// baseline. See the [module docs](self) for the prepare → bind → execute
/// flow.
///
/// `Engine` is internally synchronized: `prepare` and `metrics` take
/// `&self`, so one engine can be shared across threads (e.g. behind an
/// `Arc`) and all workers reuse the same compiled plans.
pub struct Engine {
    plans: PlanCache,
    baseline: Snapshot,
}

impl Engine {
    /// An engine whose plan cache retains [`DEFAULT_PLAN_CACHE_CAP`]
    /// compiled queries. Metrics reported by [`Engine::metrics`] are
    /// relative to this moment.
    pub fn new() -> Engine {
        Engine::with_plan_capacity(DEFAULT_PLAN_CACHE_CAP)
    }

    /// An engine retaining at most `cap` compiled plans (minimum 1).
    pub fn with_plan_capacity(cap: usize) -> Engine {
        Engine {
            plans: PlanCache::new(cap),
            baseline: transmark_obs::registry().snapshot(),
        }
    }

    /// The process-lifetime engine: one shared instance, created on first
    /// use with the default plan capacity, living until process exit.
    ///
    /// This is the service-mode entry point — every connection of a
    /// long-running process (`tmk serve`, embedded daemons) prepares
    /// through the same LRU [`PlanCache`], so a query fleet arriving over
    /// hours keeps hitting plans compiled once. Its metrics baseline is
    /// the moment of first use; prefer a dedicated [`Engine::new`] when
    /// an isolated observation window matters more than plan reuse.
    pub fn process() -> &'static Engine {
        static PROCESS: std::sync::OnceLock<Engine> = std::sync::OnceLock::new();
        PROCESS.get_or_init(Engine::new)
    }

    /// Compiles `t` into a [`PreparedQuery`] (Table 2 plan selection,
    /// machine-side artifacts), served from the engine's LRU cache when a
    /// structurally identical machine was prepared before. Compilation
    /// itself is infallible; errors surface at bind/execute time.
    pub fn prepare(&self, t: &Transducer) -> Arc<PreparedQuery> {
        self.plans.get_or_prepare(t)
    }

    /// Wraps a Boolean event query (an NFA over the node alphabet) for
    /// acceptance/series/monitor evaluation. Event queries carry no
    /// compiled artifacts, so they are not cached.
    pub fn prepare_event(&self, query: &transmark_automata::Nfa) -> Arc<PreparedEventQuery> {
        Arc::new(PreparedEventQuery::new(query.clone()))
    }

    /// Everything the instrumented layers recorded since this engine was
    /// created: counters, gauges, histograms, and span timings, as a
    /// serializable [`Snapshot`] (see [`Snapshot::to_text`] /
    /// [`Snapshot::to_json`]).
    ///
    /// The underlying registry is process-global; the snapshot is
    /// baseline-diffed so activity from before `Engine::new()` is
    /// excluded, but recordings by *other* engines and threads in the
    /// window are visible — observability is about the process doing the
    /// work, not about attribution.
    pub fn metrics(&self) -> Snapshot {
        transmark_obs::registry().snapshot().diff(&self.baseline)
    }

    /// Moves the metrics baseline to now: the next [`Engine::metrics`]
    /// call reports only activity after this point.
    pub fn reset_metrics(&mut self) {
        self.baseline = transmark_obs::registry().snapshot();
    }

    /// Accounting for the engine's plan cache (size, capacity, hits,
    /// misses).
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.plans.stats()
    }

    /// Runs `f` under a fresh query-scoped [`Recorder`] and returns its
    /// result together with the merged [`ExecutionProfile`] — phase
    /// breakdown, per-worker lanes (fleet ops propagate the recorder
    /// into their workers automatically), and layer/byte throughput.
    /// Export the profile with [`transmark_obs::trace::chrome_trace`],
    /// [`transmark_obs::trace::folded`], or
    /// [`ExecutionProfile::to_snapshot`]. Under `obs-off` the profile is
    /// empty and `f` runs unobserved.
    pub fn profiled<R>(&self, f: impl FnOnce() -> R) -> (R, ExecutionProfile) {
        let rec = Arc::new(Recorder::new());
        let out = self.profiled_with(&rec, f);
        (out, rec.finish())
    }

    /// Like [`Engine::profiled`], but records into a caller-supplied
    /// [`Recorder`] — use this to accumulate several executions into one
    /// profile before calling [`Recorder::finish`] yourself.
    pub fn profiled_with<R>(&self, recorder: &Arc<Recorder>, f: impl FnOnce() -> R) -> R {
        recorder.scope(f)
    }
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmark_automata::{Alphabet, SymbolId};
    use transmark_markov::MarkovSequenceBuilder;

    /// The registry is process-global, so tests that assert on global
    /// counters (rather than engine-local [`PlanCacheStats`]) serialize
    /// behind this lock to keep their observation windows clean.
    static GLOBAL_METRICS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn identity() -> Transducer {
        let alphabet = Alphabet::of_chars("ab");
        let mut b = Transducer::builder(alphabet.clone(), alphabet);
        let q = b.add_state(true);
        for s in 0..2u32 {
            b.add_transition(q, SymbolId(s), q, &[SymbolId(s)]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn prepare_is_cached_and_shared() {
        let _serial = GLOBAL_METRICS.lock().unwrap_or_else(|e| e.into_inner());
        let engine = Engine::new();
        let p1 = engine.prepare(&identity());
        let p2 = engine.prepare(&identity());
        assert!(Arc::ptr_eq(&p1, &p2));
        let stats = engine.plan_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn facade_matches_legacy_free_function() {
        let m = MarkovSequenceBuilder::new(Alphabet::of_chars("ab"), 4)
            .uniform_all()
            .build()
            .unwrap();
        let t = identity();
        let o = [SymbolId(0), SymbolId(1), SymbolId(0), SymbolId(1)];
        let engine = Engine::new();
        let via_facade = engine.prepare(&t).bind(&m).unwrap().confidence(&o).unwrap();
        let via_legacy = transmark_core::confidence(&t, &m, &o).unwrap();
        assert_eq!(via_facade.to_bits(), via_legacy.to_bits());
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn profiled_returns_phase_breakdown() {
        // No GLOBAL_METRICS lock needed: the profile is query-scoped,
        // so concurrent tests cannot bleed into it.
        let m = MarkovSequenceBuilder::new(Alphabet::of_chars("ab"), 4)
            .uniform_all()
            .build()
            .unwrap();
        let t = identity();
        let o = [SymbolId(0), SymbolId(1), SymbolId(0), SymbolId(1)];
        let engine = Engine::new();
        let (conf, profile) =
            engine.profiled(|| engine.prepare(&t).bind(&m).unwrap().confidence(&o).unwrap());
        assert!(conf > 0.0);
        assert!(profile.phases.contains_key("prepare"));
        assert!(profile.phases.contains_key("bind"));
        assert!(profile.phases.contains_key("execute"));
        assert_eq!(profile.instants["store.plan_cache.miss"], 1);
        assert!(
            profile.layers >= 1,
            "kernel progress flows into the profile"
        );
        assert!(profile.wall_ns > 0);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn metrics_window_starts_at_engine_creation() {
        let _serial = GLOBAL_METRICS.lock().unwrap_or_else(|e| e.into_inner());
        let m = MarkovSequenceBuilder::new(Alphabet::of_chars("ab"), 3)
            .uniform_all()
            .build()
            .unwrap();
        let t = identity();
        // Warm-up traffic that must not leak into the engine's window.
        transmark_core::plan::prepare(&t).bind(&m).unwrap();
        let engine = Engine::new();
        let before = engine.metrics();
        assert_eq!(before.counter("store.plan_cache.misses"), 0);
        engine.prepare(&t).bind(&m).unwrap();
        let after = engine.metrics();
        assert_eq!(after.counter("store.plan_cache.misses"), 1);
    }
}
