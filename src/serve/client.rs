//! A blocking `tmkp` client for [`tmk serve`](super): the counterpart
//! the CLI's `tmk client` subcommand and the serve test/bench suites
//! drive. One [`Client`] is one connection; queries are issued
//! sequentially on it. Results arrive as little-endian bit patterns, so
//! a decoded confidence is bit-identical to the in-process engine path.

use std::io::BufReader;
use std::net::TcpStream;

use transmark_markov::binio::read_prelude;

use super::protocol::{
    parse_error, read_frame, write_frame, Cursor, Frame, PayloadBuilder, WireError, FLAG_PROFILE,
    FLAG_RESUME, FLAG_TRACE, KIND_CONFIDENCE, KIND_SERIES, KIND_TOP_K, KIND_WINDOW, OP_CHECKPOINT,
    OP_ERROR, OP_HELLO, OP_HELLO_OK, OP_METRICS, OP_QUERY, OP_RESULT, OP_SHUTDOWN, OP_SHUTDOWN_OK,
    OP_STREAM_ACK, OP_STREAM_BEGIN, OP_STREAM_CHECKPOINT, OP_STREAM_DATA, OP_STREAM_END,
    RESULT_CONFIDENCE, RESULT_SERIES, RESULT_TEXT, RESULT_TOP_K, WIRE_MAGIC, WIRE_VERSION,
};

/// A sequence payload for self-contained queries: `.tms` text or
/// `.tmsb` bytes.
#[derive(Debug, Clone, Copy)]
pub enum Sequence<'a> {
    /// `markov-sequence v1` text (`.tms`).
    Text(&'a str),
    /// Binary `.tmsb` bytes.
    Binary(&'a [u8]),
}

/// One answer of a served top-k query. Symbol ids index the query's
/// output alphabet; scores are the engine's exact values, bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAnswer {
    /// The output string as symbol ids of the query's output alphabet.
    pub output: Vec<u32>,
    /// `E_max(output)`.
    pub emax: f64,
    /// Exact confidence.
    pub confidence: f64,
}

/// A suspended streamed session as handed back by the server: the number
/// of complete layers it had consumed plus an opaque state blob. Persist
/// it (e.g. with [`StreamCheckpoint::to_bytes`]) and a later session —
/// even on a fresh connection after a disconnect — can continue from it
/// bit-identically via [`StreamOptions::resume`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamCheckpoint {
    /// Complete `.tmsb` layers the server had consumed.
    pub position: u64,
    /// The server's opaque session state. Empty means the server had
    /// made no progress yet: resuming it is starting over.
    pub blob: Vec<u8>,
}

impl StreamCheckpoint {
    /// No server progress: resuming this streams from scratch.
    pub fn is_empty(&self) -> bool {
        self.blob.is_empty()
    }

    /// Serializes for a checkpoint file: 8-byte LE position, then the
    /// opaque blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.blob.len());
        out.extend_from_slice(&self.position.to_le_bytes());
        out.extend_from_slice(&self.blob);
        out
    }

    /// Inverse of [`StreamCheckpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<StreamCheckpoint, WireError> {
        if bytes.len() < 8 {
            return Err(WireError::Malformed(format!(
                "checkpoint file holds {} bytes; even an empty checkpoint has 8",
                bytes.len()
            )));
        }
        let position = u64::from_le_bytes(bytes[..8].try_into().expect("8-byte slice"));
        Ok(StreamCheckpoint {
            position,
            blob: bytes[8..].to_vec(),
        })
    }
}

/// Checkpoint/resume behavior for a streamed session. The default is the
/// plain fire-and-forget stream.
#[derive(Default)]
pub struct StreamOptions<'a> {
    /// Ask the server for a checkpoint after every `n` DATA chunks
    /// (`None` = never). Each arriving checkpoint is handed to
    /// [`StreamOptions::on_checkpoint`].
    pub checkpoint_every: Option<usize>,
    /// Invoked with every checkpoint the server returns; persist the
    /// latest one to survive disconnects.
    pub on_checkpoint: Option<&'a mut dyn FnMut(&StreamCheckpoint)>,
    /// Continue a suspended session instead of starting fresh. The local
    /// `.tmsb` bytes must be the same ones the original session streamed:
    /// the client slices them at the checkpoint's layer offset. An empty
    /// checkpoint falls back to a fresh stream.
    pub resume: Option<&'a StreamCheckpoint>,
}

/// A decoded query result plus the optional per-query profile text.
#[derive(Debug, Clone)]
pub struct Response<T> {
    /// The decoded result value.
    pub value: T,
    /// The server-side profile ([`Engine::profiled`](crate::Engine::profiled)
    /// rendering: text, or [`ExecutionProfile::to_json`]
    /// (transmark_obs::ExecutionProfile::to_json) when the request
    /// carried a trace id), when the query asked for one.
    pub profile: Option<String>,
    /// Nanoseconds since the *client* profiler's epoch at which the
    /// request frame was written — `Some` only when a profiler was
    /// recording. This is the time offset at which a wire-traced remote
    /// profile merges into the local one
    /// ([`ExecutionProfile::merge_remote`](transmark_obs::ExecutionProfile::merge_remote)).
    pub sent_at_ns: Option<u64>,
}

/// A connected `tmkp` client (HELLO already exchanged).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Negotiated protocol version (the minimum of both peers').
    version: u32,
    /// Trace id attached to subsequent requests (0 = none); only sent
    /// on the wire when the negotiated version supports it.
    trace_id: u64,
}

impl Client {
    /// Connects to `addr` and performs the HELLO handshake under
    /// `tenant` (empty = `"anonymous"`).
    pub fn connect(addr: &str, tenant: &str) -> Result<Client, WireError> {
        let stream = TcpStream::connect(addr)?;
        // The stream session is stop-and-wait: Nagle + delayed ACK would
        // add a round-trip stall per chunk.
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
            version: WIRE_VERSION,
            trace_id: 0,
        };
        let hello = PayloadBuilder::new()
            .raw(&WIRE_MAGIC)
            .u32(WIRE_VERSION)
            .string(tenant)
            .build();
        write_frame(&mut client.writer, OP_HELLO, &hello)?;
        let frame = client.read_reply()?;
        if frame.op != OP_HELLO_OK {
            return Err(WireError::Malformed(format!(
                "expected HELLO_OK, got opcode {:#04x}",
                frame.op
            )));
        }
        let mut c = Cursor::new(&frame.payload);
        client.version = c.u32("negotiated version")?;
        Ok(client)
    }

    /// The protocol version negotiated at HELLO (the minimum of both
    /// peers'). Trace context requires version ≥ 2.
    pub fn negotiated_version(&self) -> u32 {
        self.version
    }

    /// Attaches a trace id to every subsequent request (0 clears it).
    /// Against a version-1 server the id is silently not sent — the
    /// queries still run, just without cross-process stitching.
    pub fn set_trace(&mut self, trace_id: u64) {
        self.trace_id = trace_id;
    }

    /// The trace id that will actually go on the wire.
    fn effective_trace(&self) -> u64 {
        if self.version >= 2 {
            self.trace_id
        } else {
            0
        }
    }

    /// Reads one frame, converting [`OP_ERROR`] into
    /// [`WireError::Remote`] and clean close into an error (a reply was
    /// expected).
    fn read_reply(&mut self) -> Result<Frame, WireError> {
        match read_frame(&mut self.reader)? {
            Some(f) if f.op == OP_ERROR => {
                let (code, message) = parse_error(&f.payload);
                Err(WireError::Remote { code, message })
            }
            Some(f) => Ok(f),
            None => Err(WireError::Malformed(
                "server closed before replying".to_string(),
            )),
        }
    }

    fn query_payload(
        &self,
        kind: u8,
        profile: bool,
        k: u32,
        query: &str,
        output: &str,
        seq: &Sequence<'_>,
    ) -> Vec<u8> {
        let trace_id = self.effective_trace();
        let mut flags = 0u8;
        if profile {
            flags |= FLAG_PROFILE;
        }
        if trace_id != 0 {
            flags |= FLAG_TRACE;
        }
        let mut b = PayloadBuilder::new().u8(kind).u8(flags);
        if trace_id != 0 {
            b = b.u64(trace_id);
        }
        let b = b.u32(k).string(query).string(output);
        match seq {
            Sequence::Text(text) => b.u8(0).bytes(text.as_bytes()),
            Sequence::Binary(bytes) => b.u8(1).bytes(bytes),
        }
        .build()
    }

    /// Issues one self-contained query and returns the raw RESULT
    /// payload (result kind + body + profile) plus the profiler
    /// timestamp at which the request was written (when recording).
    fn query(&mut self, payload: &[u8]) -> Result<(Vec<u8>, Option<u64>), WireError> {
        // On a profiled run the round trip shows up as one span on the
        // client lane; the server's own lanes slot in under it once the
        // remote profile is merged at `sent_at_ns`.
        let _span = transmark_obs::span::enter("client.request");
        let sent_at_ns = transmark_obs::profile::now_ns();
        write_frame(&mut self.writer, OP_QUERY, payload)?;
        let frame = self.read_reply()?;
        if frame.op != OP_RESULT {
            return Err(WireError::Malformed(format!(
                "expected RESULT, got opcode {:#04x}",
                frame.op
            )));
        }
        Ok((frame.payload, sent_at_ns))
    }

    /// `Pr(sequence →[query]→ output)` — exact confidence of one output
    /// string (space-separated symbol names).
    pub fn confidence(
        &mut self,
        query: &str,
        seq: &Sequence<'_>,
        output: &str,
        profile: bool,
    ) -> Result<Response<f64>, WireError> {
        let payload = self.query_payload(KIND_CONFIDENCE, profile, 0, query, output, seq);
        let (result, sent_at_ns) = self.query(&payload)?;
        let mut r = decode_result(&result, RESULT_CONFIDENCE, |c| c.f64("confidence"))?;
        r.sent_at_ns = sent_at_ns;
        Ok(r)
    }

    /// Top-k answers by `E_max` with exact confidences.
    pub fn top_k(
        &mut self,
        query: &str,
        seq: &Sequence<'_>,
        k: u32,
        profile: bool,
    ) -> Result<Response<Vec<WireAnswer>>, WireError> {
        let payload = self.query_payload(KIND_TOP_K, profile, k, query, "", seq);
        let (result, sent_at_ns) = self.query(&payload)?;
        let mut r = decode_result(&result, RESULT_TOP_K, decode_answers)?;
        r.sent_at_ns = sent_at_ns;
        Ok(r)
    }

    /// The prefix acceptance series of the query's underlying NFA.
    pub fn series(
        &mut self,
        query: &str,
        seq: &Sequence<'_>,
        profile: bool,
    ) -> Result<Response<Vec<f64>>, WireError> {
        let payload = self.query_payload(KIND_SERIES, profile, 0, query, "", seq);
        let (result, sent_at_ns) = self.query(&payload)?;
        let mut r = decode_result(&result, RESULT_SERIES, decode_series)?;
        r.sent_at_ns = sent_at_ns;
        Ok(r)
    }

    /// Streams `.tmsb` bytes in `chunk`-sized DATA frames under
    /// stop-and-wait acks and returns the confidence of `output`. The
    /// server runs the same forward-only
    /// [`SourceBoundQuery`](transmark_core::plan::SourceBoundQuery) pass
    /// a local `.tmsb` file would get.
    pub fn stream_confidence(
        &mut self,
        query: &str,
        output: &str,
        tmsb: &[u8],
        chunk: usize,
    ) -> Result<Response<f64>, WireError> {
        self.stream_confidence_with(query, output, tmsb, chunk, StreamOptions::default())
    }

    /// [`Client::stream_confidence`] with checkpoint/resume control.
    pub fn stream_confidence_with(
        &mut self,
        query: &str,
        output: &str,
        tmsb: &[u8],
        chunk: usize,
        opts: StreamOptions<'_>,
    ) -> Result<Response<f64>, WireError> {
        let (result, sent_at_ns) =
            self.stream(KIND_CONFIDENCE, query, output, 0, tmsb, chunk, opts)?;
        let mut r = decode_result(&result, RESULT_CONFIDENCE, |c| c.f64("confidence"))?;
        r.sent_at_ns = sent_at_ns;
        Ok(r)
    }

    /// Streamed counterpart of [`Client::series`].
    pub fn stream_series(
        &mut self,
        query: &str,
        tmsb: &[u8],
        chunk: usize,
    ) -> Result<Response<Vec<f64>>, WireError> {
        self.stream_series_with(query, tmsb, chunk, StreamOptions::default())
    }

    /// [`Client::stream_series`] with checkpoint/resume control.
    pub fn stream_series_with(
        &mut self,
        query: &str,
        tmsb: &[u8],
        chunk: usize,
        opts: StreamOptions<'_>,
    ) -> Result<Response<Vec<f64>>, WireError> {
        let (result, sent_at_ns) = self.stream(KIND_SERIES, query, "", 0, tmsb, chunk, opts)?;
        let mut r = decode_result(&result, RESULT_SERIES, decode_series)?;
        r.sent_at_ns = sent_at_ns;
        Ok(r)
    }

    /// Streams a sliding-window acceptance query: the returned series
    /// holds, per position, the probability the last `window` symbols
    /// land in the query's language (the server evaluates it with O(k²)
    /// eviction, never rewinding).
    pub fn stream_window(
        &mut self,
        query: &str,
        tmsb: &[u8],
        window: u32,
        chunk: usize,
        opts: StreamOptions<'_>,
    ) -> Result<Response<Vec<f64>>, WireError> {
        let (result, sent_at_ns) =
            self.stream(KIND_WINDOW, query, "", window, tmsb, chunk, opts)?;
        let mut r = decode_result(&result, RESULT_SERIES, decode_series)?;
        r.sent_at_ns = sent_at_ns;
        Ok(r)
    }

    /// Runs one streamed session: BEGIN, then one DATA chunk per ACK,
    /// then END, then the RESULT. At most one unacknowledged chunk is
    /// ever in flight. With [`StreamOptions::checkpoint_every`], every
    /// n-th ack is answered with a checkpoint request instead of data;
    /// the server replies with its suspended state (forwarded to
    /// [`StreamOptions::on_checkpoint`]) and re-acks. With
    /// [`StreamOptions::resume`], BEGIN carries the prior state and the
    /// data restarts at the first unconsumed layer.
    #[allow(clippy::too_many_arguments)]
    fn stream(
        &mut self,
        kind: u8,
        query: &str,
        output: &str,
        window: u32,
        tmsb: &[u8],
        chunk: usize,
        mut opts: StreamOptions<'_>,
    ) -> Result<(Vec<u8>, Option<u64>), WireError> {
        let chunk = chunk.max(1);
        let resume = opts.resume.filter(|ck| !ck.is_empty());
        let trace_id = self.effective_trace();
        let mut flags = if resume.is_some() { FLAG_RESUME } else { 0 };
        if trace_id != 0 {
            // A traced stream wants the server timeline back for
            // merging, so the trace flag implies the profile flag.
            flags |= FLAG_TRACE | FLAG_PROFILE;
        }
        let mut b = PayloadBuilder::new().u8(kind).u8(flags);
        if kind == KIND_WINDOW {
            b = b.u32(window);
        }
        if trace_id != 0 {
            b = b.u64(trace_id);
        }
        b = b.string(query).string(output);
        if let Some(ck) = resume {
            b = b.bytes(&ck.blob);
        }
        let _span = transmark_obs::span::enter("client.stream");
        let sent_at_ns = transmark_obs::profile::now_ns();
        write_frame(&mut self.writer, OP_STREAM_BEGIN, &b.build())?;

        // On resume the server rebuilds its layer reader from the
        // checkpoint, so the wire skips the prelude and every layer it
        // already consumed.
        let mut sent = match resume {
            Some(ck) => layer_byte_offset(tmsb, ck.position)?,
            None => 0,
        };
        let mut end_sent = false;
        let mut since_checkpoint = 0usize;
        let mut awaiting_checkpoint = false;
        loop {
            let frame = match read_frame(&mut self.reader)? {
                Some(f) => f,
                None => {
                    return Err(WireError::Malformed(
                        "server closed mid-session".to_string(),
                    ))
                }
            };
            match frame.op {
                OP_STREAM_ACK => {
                    let want_checkpoint = opts
                        .checkpoint_every
                        .is_some_and(|n| since_checkpoint >= n.max(1));
                    if sent < tmsb.len() && want_checkpoint && !awaiting_checkpoint {
                        write_frame(&mut self.writer, OP_STREAM_CHECKPOINT, &[])?;
                        since_checkpoint = 0;
                        awaiting_checkpoint = true;
                    } else if sent < tmsb.len() {
                        let n = chunk.min(tmsb.len() - sent);
                        write_frame(&mut self.writer, OP_STREAM_DATA, &tmsb[sent..sent + n])?;
                        sent += n;
                        since_checkpoint += 1;
                    } else if !end_sent {
                        write_frame(&mut self.writer, OP_STREAM_END, &[])?;
                        end_sent = true;
                    } else {
                        return Err(WireError::Malformed("ack after stream end".to_string()));
                    }
                }
                OP_CHECKPOINT => {
                    if !awaiting_checkpoint {
                        return Err(WireError::Malformed(
                            "unsolicited checkpoint frame".to_string(),
                        ));
                    }
                    awaiting_checkpoint = false;
                    let mut c = Cursor::new(&frame.payload);
                    let position = c.u64("checkpoint position")?;
                    let blob = c.bytes("checkpoint blob")?.to_vec();
                    if let Some(cb) = opts.on_checkpoint.as_mut() {
                        cb(&StreamCheckpoint { position, blob });
                    }
                    // The server re-acks next; the loop continues.
                }
                OP_RESULT => return Ok((frame.payload, sent_at_ns)),
                OP_ERROR => {
                    let (code, message) = parse_error(&frame.payload);
                    // The server drains to STREAM_END before continuing;
                    // close our half of the session if still open.
                    if !end_sent {
                        let _ = write_frame(&mut self.writer, OP_STREAM_END, &[]);
                    }
                    return Err(WireError::Remote { code, message });
                }
                other => {
                    return Err(WireError::Malformed(format!(
                        "unexpected opcode {other:#04x} during stream session"
                    )))
                }
            }
        }
    }

    /// Fetches the server's metrics snapshot (diffed against its start
    /// baseline) as text or JSON.
    pub fn metrics(&mut self, json: bool) -> Result<String, WireError> {
        self.metrics_format(if json { 1 } else { 0 })
    }

    /// [`Client::metrics`] with the raw format byte: `0` text, `1`
    /// JSON, `2` Prometheus exposition.
    pub fn metrics_format(&mut self, format: u8) -> Result<String, WireError> {
        let payload = [format];
        write_frame(&mut self.writer, OP_METRICS, &payload)?;
        let frame = self.read_reply()?;
        if frame.op != OP_RESULT {
            return Err(WireError::Malformed(format!(
                "expected RESULT, got opcode {:#04x}",
                frame.op
            )));
        }
        let mut c = Cursor::new(&frame.payload);
        let kind = c.u8("result kind")?;
        if kind != RESULT_TEXT {
            return Err(WireError::Malformed(format!(
                "expected text result, got kind {kind}"
            )));
        }
        Ok(String::from_utf8_lossy(&frame.payload[1..]).into_owned())
    }

    /// Asks the server to shut down gracefully; returns once it acks.
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        write_frame(&mut self.writer, OP_SHUTDOWN, &[])?;
        let frame = self.read_reply()?;
        if frame.op != OP_SHUTDOWN_OK {
            return Err(WireError::Malformed(format!(
                "expected SHUTDOWN_OK, got opcode {:#04x}",
                frame.op
            )));
        }
        Ok(())
    }
}

/// Translates a checkpoint's layer position into a byte offset of the
/// local `.tmsb` bytes (prelude + `position` complete layers).
fn layer_byte_offset(tmsb: &[u8], position: u64) -> Result<usize, WireError> {
    let mut r = tmsb;
    let prelude = read_prelude(&mut r)
        .map_err(|e| WireError::Malformed(format!("local .tmsb bytes: {e}")))?;
    let off = prelude.layer_offset(position);
    if off > tmsb.len() as u64 {
        return Err(WireError::Malformed(format!(
            "checkpoint position {position} lies beyond the local .tmsb data"
        )));
    }
    Ok(off as usize)
}

/// Decodes a RESULT payload: checks the result kind, decodes the body
/// with `f`, and splits off the trailing profile text.
fn decode_result<T>(
    payload: &[u8],
    expected_kind: u8,
    f: impl FnOnce(&mut Cursor<'_>) -> Result<T, WireError>,
) -> Result<Response<T>, WireError> {
    let mut c = Cursor::new(payload);
    let kind = c.u8("result kind")?;
    if kind != expected_kind {
        return Err(WireError::Malformed(format!(
            "expected result kind {expected_kind}, got {kind}"
        )));
    }
    let value = f(&mut c)?;
    let profile = c.string("profile")?;
    Ok(Response {
        value,
        profile: if profile.is_empty() {
            None
        } else {
            Some(profile)
        },
        sent_at_ns: None,
    })
}

fn decode_answers(c: &mut Cursor<'_>) -> Result<Vec<WireAnswer>, WireError> {
    let count = c.u32("answer count")? as usize;
    let mut answers = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let len = c.u32("output length")? as usize;
        let mut output = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            output.push(c.u32("output symbol")?);
        }
        let emax = c.f64("emax")?;
        let confidence = c.f64("confidence")?;
        answers.push(WireAnswer {
            output,
            emax,
            confidence,
        });
    }
    Ok(answers)
}

fn decode_series(c: &mut Cursor<'_>) -> Result<Vec<f64>, WireError> {
    let count = c.u64("series length")? as usize;
    let mut series = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        series.push(c.f64("series value")?);
    }
    Ok(series)
}
