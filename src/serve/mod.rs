//! `tmk serve`: the engine as a persistent query service.
//!
//! One process, process-lifetime resources, many connections. The
//! ownership ladder (see DESIGN.md "Service layer"):
//!
//! * **process** — the [`Engine`] (and its LRU
//!   [`PlanCache`](transmark_store::PlanCache)), the
//!   [`WorkerPool`](transmark_store::WorkerPool) draining connections,
//!   the obs registry, and the metrics baseline;
//! * **per connection** — one pool worker running the frame loop, the
//!   tenant identity from HELLO, stream buffers;
//! * **per query** — bound plans, layer buffers, the optional
//!   query-scoped profiler [`Recorder`](transmark_obs::Recorder).
//!
//! The wire format is the length-prefixed `tmkp` protocol
//! ([`protocol`]); a connection whose first bytes are `GET ` is served
//! as a plain HTTP/1.1 metrics scrape instead (`/metrics`,
//! `/metrics.json`, `/metrics.prom`). Admission control is the pool's
//! bounded queue
//! (typed [`ERR_SATURATED`](protocol::ERR_SATURATED) at the door);
//! per-tenant fairness is an in-flight quota keyed by the HELLO tenant
//! name. Streamed `.tmsb` sessions drive an incremental core session
//! ([`ConfidenceSession`], [`EventSession`],
//! [`WindowSession`](transmark_core::incremental::WindowSession)) layer
//! by layer with stop-and-wait backpressure — server memory stays
//! O(|Σ|² + one chunk) no matter how long the sequence is — and the
//! client can suspend any session to an opaque checkpoint blob
//! ([`protocol::OP_STREAM_CHECKPOINT`]) and resume it later, even on a
//! different connection ([`protocol::FLAG_RESUME`]).

pub mod client;
pub mod protocol;

use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use transmark_automata::SymbolId;
use transmark_core::error::EngineError;
use transmark_core::evaluate::Evaluation;
use transmark_core::incremental::{
    ConfidenceSession, EventSession, SlidingWindowQuery, WindowSession,
};
use transmark_core::transducer::Transducer;
use transmark_markov::binio::{read_prelude, RawLayerReader};
use transmark_markov::{MarkovSequence, SourceError};
use transmark_obs::log::RecordKind;
use transmark_obs::{ExecutionProfile, Recorder};
use transmark_store::{PoolError, WorkerPool};

use crate::facade::Engine;
use protocol::{
    read_frame, read_frame_after_len, write_error, write_frame, Cursor, Frame, PayloadBuilder,
    WireError, ERR_BAD_CHECKPOINT, ERR_BAD_FRAME, ERR_QUERY, ERR_QUOTA, ERR_SATURATED, ERR_STATE,
    ERR_VERSION, FLAG_PROFILE, FLAG_RESUME, FLAG_TRACE, KIND_CONFIDENCE, KIND_SERIES, KIND_TOP_K,
    KIND_WINDOW, OP_CHECKPOINT, OP_HELLO, OP_HELLO_OK, OP_METRICS, OP_QUERY, OP_RESULT,
    OP_SHUTDOWN, OP_SHUTDOWN_OK, OP_STREAM_ACK, OP_STREAM_BEGIN, OP_STREAM_CHECKPOINT,
    OP_STREAM_DATA, OP_STREAM_END, RESULT_CONFIDENCE, RESULT_SERIES, RESULT_TEXT, RESULT_TOP_K,
    WIRE_MAGIC, WIRE_VERSION, WIRE_VERSION_MIN,
};

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Pool worker threads (`0` = one per core).
    pub threads: usize,
    /// Bounded backlog of accepted-but-unhandled connections; beyond it
    /// new connections are refused with a typed saturation error.
    pub queue_cap: usize,
    /// Max concurrent in-flight queries per tenant (HELLO name).
    pub tenant_quota: usize,
    /// Plan-cache capacity of the server's process-lifetime [`Engine`].
    pub plan_capacity: usize,
    /// Slow-query threshold in milliseconds: any query (unary or
    /// streamed) whose wall time meets it is recorded in the structured
    /// event log with its plan explain and phase timings. `None`
    /// disables the slow-query log (and its always-on profiling).
    pub slow_ms: Option<u64>,
    /// Structured event-log sink: `Some("-")` drains
    /// [`transmark_obs::log`] to stderr as JSON lines, any other value
    /// is a file path. `None` leaves records in the in-process ring for
    /// tests and embedders to drain themselves.
    pub log: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            queue_cap: 64,
            tenant_quota: 4,
            plan_capacity: transmark_store::DEFAULT_PLAN_CACHE_CAP,
            slow_ms: None,
            log: None,
        }
    }
}

struct Shared {
    engine: Arc<Engine>,
    addr: SocketAddr,
    stop: AtomicBool,
    tenant_quota: usize,
    slow_ms: Option<u64>,
    tenants: Mutex<HashMap<String, usize>>,
    /// Read-half clones of live connections, closed on shutdown so
    /// handlers blocked in `read` unblock and drain.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

impl Shared {
    /// Latches the stop flag, unblocks every parked connection read, and
    /// wakes the accept loop. Responses in flight still flush: only the
    /// read half of each connection is shut down.
    fn trigger_stop(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        for (_, s) in self
            .conns
            .lock()
            .expect("conn registry lock is not poisoned")
            .drain()
        {
            let _ = s.shutdown(Shutdown::Read);
        }
        // A throwaway connection unblocks `TcpListener::accept`.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running `tmk serve` instance: accept loop + worker pool + shared
/// process-lifetime [`Engine`].
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    pool: Option<Arc<WorkerPool>>,
    /// Event-log drain thread (`--log`): stopped *after* the pool has
    /// drained so records published by in-flight work are not lost.
    log_stop: Arc<AtomicBool>,
    log_drain: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr`, spawns the accept loop, and returns. The
    /// server runs until [`Server::shutdown`] or a client sends
    /// [`OP_SHUTDOWN`].
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let engine = Arc::new(Engine::with_plan_capacity(config.plan_capacity));
        let shared = Arc::new(Shared {
            engine,
            addr,
            stop: AtomicBool::new(false),
            tenant_quota: config.tenant_quota.max(1),
            slow_ms: config.slow_ms,
            tenants: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        });
        let pool = Arc::new(WorkerPool::named("serve", config.threads, config.queue_cap));
        let log_stop = Arc::new(AtomicBool::new(false));
        let log_drain = match &config.log {
            Some(target) => Some(spawn_log_drain(target, Arc::clone(&log_stop))?),
            None => None,
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name("tmk-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &pool))?
        };
        Ok(Server {
            shared,
            accept: Some(accept),
            pool: Some(pool),
            log_stop,
            log_drain,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The server's process-lifetime engine (plan cache + metrics
    /// baseline), shared with every connection.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// Blocks until some client requests shutdown ([`OP_SHUTDOWN`]), then
    /// drains workers and returns.
    pub fn wait(mut self) {
        self.finish();
    }

    /// Initiates a graceful shutdown (stop accepting, unblock parked
    /// reads, drain in-flight work, join every thread) and blocks until
    /// it completes.
    pub fn shutdown(mut self) {
        self.shared.trigger_stop();
        self.finish();
    }

    fn finish(&mut self) {
        if let Some(h) = self.accept.take() {
            h.join().expect("accept loop does not panic");
        }
        // The accept thread has dropped its pool handle; dropping ours
        // drains the queue and joins the workers.
        if let Some(pool) = self.pool.take() {
            drop(pool);
        }
        // Only now — with every in-flight request finished — is the
        // event log quiescent; the drain thread flushes the tail.
        self.log_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.log_drain.take() {
            h.join().expect("log drain loop does not panic");
        }
    }
}

/// Spawns the `--log` drain thread: polls the process-global event ring
/// and appends each record as one JSON line to stderr (`"-"`) or the
/// given file. A final drain after `stop` flips catches the tail.
fn spawn_log_drain(
    target: &str,
    stop: Arc<AtomicBool>,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    let mut out: Box<dyn Write + Send> = if target == "-" {
        Box::new(std::io::stderr())
    } else {
        Box::new(std::fs::File::create(target)?)
    };
    std::thread::Builder::new()
        .name("tmk-log".to_string())
        .spawn(move || loop {
            let records = transmark_obs::log::drain();
            for r in &records {
                let _ = writeln!(out, "{}", r.to_json_line());
            }
            if !records.is_empty() {
                let _ = out.flush();
            }
            if stop.load(Ordering::SeqCst) {
                for r in transmark_obs::log::drain() {
                    let _ = writeln!(out, "{}", r.to_json_line());
                }
                let _ = out.flush();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        })
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.trigger_stop();
        self.finish();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, pool: &Arc<WorkerPool>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        transmark_obs::counter!("serve.connections").inc();
        // Acks and small result frames must not sit in Nagle's buffer:
        // the stream session is stop-and-wait, so every stall is a full
        // round trip added to each chunk.
        let _ = stream.set_nodelay(true);
        // A clone for the shutdown path (close parked reads) and one for
        // rejecting at the door if the pool is saturated.
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared
                .conns
                .lock()
                .expect("conn registry lock is not poisoned")
                .insert(conn_id, clone);
        }
        let reject_handle = stream.try_clone();
        let job_shared = Arc::clone(shared);
        // Started here, read when a worker picks the job up: the gap is
        // the pool queue wait, surfaced as a leading lane in wire-traced
        // profiles so clients see where the latency went.
        let queued = transmark_obs::Timer::start();
        let submitted = pool.try_execute(move || {
            let queue_wait_ns = queued.elapsed_ns();
            handle_connection(stream, &job_shared, conn_id, queue_wait_ns)
        });
        match submitted {
            Ok(()) => {}
            Err(PoolError::Saturated) => {
                transmark_obs::counter!("serve.rejected.admission").inc();
                transmark_obs::log::publish(
                    RecordKind::RejectSaturated,
                    "",
                    "connection shed at admission: pool queue full",
                    0,
                );
                if let Ok(mut s) = reject_handle {
                    let _ =
                        write_error(&mut s, ERR_SATURATED, "server is at capacity, retry later");
                }
                deregister(shared, conn_id);
            }
            Err(PoolError::ShuttingDown) => {
                deregister(shared, conn_id);
                break;
            }
        }
    }
}

fn deregister(shared: &Shared, conn_id: u64) {
    shared
        .conns
        .lock()
        .expect("conn registry lock is not poisoned")
        .remove(&conn_id);
}

/// Holds one in-flight slot of a tenant's quota; releases it on drop.
struct TenantSlot<'a> {
    shared: &'a Shared,
    tenant: String,
}

fn admit<'a>(shared: &'a Shared, tenant: &str) -> Result<TenantSlot<'a>, ()> {
    let mut tenants = shared
        .tenants
        .lock()
        .expect("tenant table lock is not poisoned");
    let n = tenants.entry(tenant.to_string()).or_insert(0);
    if *n >= shared.tenant_quota {
        transmark_obs::counter!("serve.rejected.quota").inc();
        transmark_obs::log::publish(
            RecordKind::RejectQuota,
            tenant,
            "in-flight quota reached",
            0,
        );
        return Err(());
    }
    *n += 1;
    Ok(TenantSlot {
        shared,
        tenant: tenant.to_string(),
    })
}

impl Drop for TenantSlot<'_> {
    fn drop(&mut self) {
        let mut tenants = self
            .shared
            .tenants
            .lock()
            .expect("tenant table lock is not poisoned");
        if let Some(n) = tenants.get_mut(&self.tenant) {
            *n -= 1;
            if *n == 0 {
                tenants.remove(&self.tenant);
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>, conn_id: u64, queue_wait_ns: u64) {
    run_connection(stream, shared, queue_wait_ns);
    deregister(shared, conn_id);
}

fn run_connection(stream: TcpStream, shared: &Arc<Shared>, queue_wait_ns: u64) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);

    // Sniff the first four bytes: an HTTP scrape ("GET ") or a frame's
    // length prefix.
    let mut first4 = [0u8; 4];
    if read_fully(&mut reader, &mut first4).is_err() {
        return;
    }
    if first4 == *b"GET " {
        serve_http(&mut reader, &mut writer, shared);
        return;
    }

    // Frame mode: HELLO first.
    let (tenant, version) = match hello(&mut reader, &mut writer, first4) {
        Some(t) => t,
        None => return,
    };
    let ctx = QueryCtx {
        tenant: &tenant,
        version,
        queue_wait_ns,
        slow_ms: shared.slow_ms,
    };

    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) => return,
            Err(WireError::Malformed(m)) => {
                let _ = write_error(&mut writer, ERR_BAD_FRAME, &m);
                return;
            }
            Err(_) => return,
        };
        let t = transmark_obs::Timer::start();
        let keep_going = match frame.op {
            OP_QUERY => handle_query(&mut writer, shared, &ctx, &frame.payload),
            OP_STREAM_BEGIN => {
                handle_stream(&mut reader, &mut writer, shared, &ctx, &frame.payload)
            }
            OP_METRICS => {
                transmark_obs::counter!("serve.requests", tenant = tenant, kind = "metrics").inc();
                handle_metrics(&mut writer, shared, &frame.payload)
            }
            OP_SHUTDOWN => {
                let _ = write_frame(&mut writer, OP_SHUTDOWN_OK, &[]);
                shared.trigger_stop();
                false
            }
            other => {
                let _ = write_error(
                    &mut writer,
                    ERR_STATE,
                    &format!("unexpected opcode {other:#04x}"),
                );
                false
            }
        };
        t.observe(transmark_obs::histogram!("serve.request_ns"));
        if !keep_going || shared.stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Validates the HELLO frame; returns the tenant name and the
/// negotiated protocol version (the minimum of both peers'), or `None`
/// after writing the appropriate error. Version-1 peers are accepted
/// and simply never see the version-2 trace-context extension.
fn hello(
    reader: &mut impl Read,
    writer: &mut impl Write,
    len_prefix: [u8; 4],
) -> Option<(String, u32)> {
    let frame = match read_frame_after_len(reader, len_prefix) {
        Ok(Some(f)) => f,
        _ => return None,
    };
    if frame.op != OP_HELLO {
        let _ = write_error(writer, ERR_STATE, "first frame must be HELLO");
        return None;
    }
    if frame.payload.len() < 4 || frame.payload[..4] != WIRE_MAGIC {
        let _ = write_error(writer, ERR_BAD_FRAME, "bad magic (not a tmkp peer)");
        return None;
    }
    let mut c = Cursor::new(&frame.payload[4..]);
    let decoded = c
        .u32("protocol version")
        .and_then(|version| Ok((version, c.string("tenant")?)));
    let (version, tenant) = match decoded {
        Ok(d) => d,
        Err(e) => {
            let _ = write_error(writer, ERR_BAD_FRAME, &e.to_string());
            return None;
        }
    };
    if !(WIRE_VERSION_MIN..=WIRE_VERSION).contains(&version) {
        // Version negotiation: name the versions we do speak.
        let _ = write_error(
            writer,
            ERR_VERSION,
            &format!(
                "unsupported tmkp version {version}; this server speaks versions \
                 {WIRE_VERSION_MIN} through {WIRE_VERSION}"
            ),
        );
        return None;
    }
    let negotiated = version.min(WIRE_VERSION);
    let tenant = if tenant.is_empty() {
        "anonymous".to_string()
    } else {
        tenant
    };
    let ok = PayloadBuilder::new().u32(negotiated).build();
    if write_frame(writer, OP_HELLO_OK, &ok).is_err() {
        return None;
    }
    Some((tenant, negotiated))
}

/// Per-connection request context threaded into the query handlers:
/// who is asking, what protocol extensions they negotiated, and the
/// server-side observability policy in force.
struct QueryCtx<'a> {
    tenant: &'a str,
    /// Negotiated tmkp version; trace context requires ≥ 2.
    version: u32,
    /// How long this connection sat in the pool queue before a worker
    /// picked it up (prepended to wire-traced profiles).
    queue_wait_ns: u64,
    slow_ms: Option<u64>,
}

/// Stable label for a query-kind byte (metric label values, log detail).
fn kind_name(kind: u8) -> &'static str {
    match kind {
        KIND_CONFIDENCE => "confidence",
        KIND_TOP_K => "top_k",
        KIND_SERIES => "series",
        KIND_WINDOW => "window",
        _ => "unknown",
    }
}

fn handle_query(writer: &mut impl Write, shared: &Shared, ctx: &QueryCtx, payload: &[u8]) -> bool {
    let tenant = ctx.tenant;
    let _slot = match admit(shared, tenant) {
        Ok(s) => s,
        Err(()) => {
            return write_error(
                writer,
                ERR_QUOTA,
                &format!("tenant {tenant:?} is at its in-flight quota"),
            )
            .is_ok();
        }
    };
    transmark_obs::counter!("serve.queries").inc();
    let kind = kind_name(payload.first().copied().unwrap_or(0));
    transmark_obs::counter!("serve.requests", tenant = tenant, kind = kind).inc();
    transmark_obs::log::publish(RecordKind::RequestStart, tenant, kind, 0);
    let t = transmark_obs::Timer::start();
    let outcome = execute_query(&shared.engine, payload, ctx);
    let dur_ns = t.elapsed_ns();
    transmark_obs::histogram!("serve.request_ns", tenant = tenant, kind = kind).record(dur_ns);
    transmark_obs::log::publish(RecordKind::RequestFinish, tenant, kind, dur_ns);
    match outcome {
        Ok(result) => write_frame(writer, OP_RESULT, &result).is_ok(),
        Err((code, message)) => write_error(writer, code, &message).is_ok(),
    }
}

/// Decodes and runs one self-contained query, returning the RESULT
/// payload. All arithmetic rides the same prepare → bind → execute path
/// as the in-process facade, so results are bit-identical to it.
fn execute_query(
    engine: &Engine,
    payload: &[u8],
    ctx: &QueryCtx,
) -> Result<Vec<u8>, (u16, String)> {
    let mut c = Cursor::new(payload);
    let kind = c.u8("kind").map_err(bad_frame)?;
    let flags = c.u8("flags").map_err(bad_frame)?;
    let trace_id = parse_trace_id(&mut c, flags, ctx.version)?;
    let k = c.u32("k").map_err(bad_frame)?;
    let query_text = c.string("query").map_err(bad_frame)?;
    let output_text = c.string("output").map_err(bad_frame)?;
    let seq_format = c.u8("sequence format").map_err(bad_frame)?;
    let seq_bytes = c.bytes("sequence").map_err(bad_frame)?;

    let t = transmark_core::textio::from_text(&query_text)
        .map_err(|e| (ERR_QUERY, format!("query parse: {e}")))?;
    let m = decode_sequence(seq_format, seq_bytes)?;

    let with_profile = flags & FLAG_PROFILE != 0;
    // The bound plan's explain, captured for the slow-query log; the
    // closure fills it in once binding has chosen a strategy.
    let explain = std::cell::RefCell::new(String::new());
    let run = || -> Result<(u8, PayloadBuilder), (u16, String)> {
        match kind {
            KIND_CONFIDENCE => {
                let o = parse_output(&t, &output_text)?;
                let plan = engine.prepare(&t);
                let b = plan.bind(&m).map_err(query_err)?;
                *explain.borrow_mut() = b.explain().to_string();
                let v = b.confidence(&o).map_err(query_err)?;
                Ok((RESULT_CONFIDENCE, PayloadBuilder::new().f64(v)))
            }
            KIND_TOP_K => {
                let plan = engine.prepare(&t);
                let ev = Evaluation::with_plan(&plan, &m).map_err(query_err)?;
                *explain.borrow_mut() = ev.explain().to_string();
                let answers = ev.top_k_scored(k as usize).map_err(query_err)?;
                let mut b = PayloadBuilder::new().u32(answers.len() as u32);
                for a in &answers {
                    b = b.u32(a.output.len() as u32);
                    for s in &a.output {
                        b = b.u32(s.0);
                    }
                    b = b.f64(a.emax).f64(a.confidence);
                }
                Ok((RESULT_TOP_K, b))
            }
            KIND_SERIES => {
                let event = engine.prepare_event(&t.underlying_nfa());
                let series = event.series(&m).map_err(query_err)?;
                let mut b = PayloadBuilder::new().u64(series.len() as u64);
                for v in &series {
                    b = b.f64(*v);
                }
                Ok((RESULT_SERIES, b))
            }
            other => Err((ERR_BAD_FRAME, format!("unknown query kind {other}"))),
        }
    };

    finish_result(engine, ctx, kind, with_profile, trace_id, &explain, run)
}

/// Consumes the optional version-2 trace id: present exactly when
/// [`FLAG_TRACE`] is set, which a version-1 peer must not do.
fn parse_trace_id(c: &mut Cursor, flags: u8, version: u32) -> Result<u64, (u16, String)> {
    if flags & FLAG_TRACE == 0 {
        return Ok(0);
    }
    if version < 2 {
        return Err((
            ERR_BAD_FRAME,
            "trace context requires negotiated tmkp version >= 2".to_string(),
        ));
    }
    c.u64("trace id").map_err(bad_frame)
}

/// Runs `run` (under a query-scoped profiler when the request asked for
/// one, carries a trace id, or the slow-query log is armed) and
/// assembles the RESULT payload: result kind, body, length-prefixed
/// profile (text, or [`ExecutionProfile::to_json`] when wire-traced).
fn finish_result(
    engine: &Engine,
    ctx: &QueryCtx,
    kind: u8,
    with_profile: bool,
    trace_id: u64,
    explain: &std::cell::RefCell<String>,
    run: impl FnOnce() -> Result<(u8, PayloadBuilder), (u16, String)>,
) -> Result<Vec<u8>, (u16, String)> {
    let need_profile = with_profile || trace_id != 0 || ctx.slow_ms.is_some();
    if !need_profile {
        let (result_kind, body) = run()?;
        return Ok(PayloadBuilder::new()
            .u8(result_kind)
            .raw(&body.build())
            .string("")
            .build());
    }
    let rec = Arc::new(Recorder::new());
    if trace_id != 0 {
        rec.set_trace(trace_id);
    }
    let t = transmark_obs::Timer::start();
    let outcome = engine.profiled_with(&rec, run);
    let dur_ns = t.elapsed_ns();
    let mut profile = rec.finish();
    if trace_id != 0 && ctx.queue_wait_ns > 0 {
        profile.prepend_wait("pool-queue", "pool.queue_wait", ctx.queue_wait_ns);
    }
    maybe_log_slow(ctx, kind, dur_ns, &explain.borrow(), &profile);
    let (result_kind, body) = outcome?;
    let profile_text = if with_profile {
        if trace_id != 0 {
            profile.to_json()
        } else {
            profile.to_text()
        }
    } else {
        String::new()
    };
    Ok(PayloadBuilder::new()
        .u8(result_kind)
        .raw(&body.build())
        .string(&profile_text)
        .build())
}

/// Publishes a [`RecordKind::SlowQuery`] record when the wall time
/// meets `--slow-ms`: the detail is the (flattened) bound-plan explain
/// plus the profiler's per-phase timings, slowest first.
fn maybe_log_slow(ctx: &QueryCtx, kind: u8, dur_ns: u64, explain: &str, p: &ExecutionProfile) {
    let Some(slow_ms) = ctx.slow_ms else { return };
    if dur_ns < slow_ms.saturating_mul(1_000_000) {
        return;
    }
    transmark_obs::counter!("serve.slow_queries").inc();
    let mut detail = format!("kind={}", kind_name(kind));
    let flat = explain.trim().replace('\n', "; ");
    if !flat.is_empty() {
        detail.push_str(" | ");
        detail.push_str(&flat);
    }
    let mut phases: Vec<_> = p.phases.iter().collect();
    phases.sort_by_key(|(_, stat)| std::cmp::Reverse(stat.total_ns));
    if !phases.is_empty() {
        detail.push_str(" | phases:");
        for (name, stat) in phases {
            detail.push_str(&format!(" {name}={}", transmark_obs::fmt_ns(stat.total_ns)));
        }
    }
    transmark_obs::log::publish(RecordKind::SlowQuery, ctx.tenant, &detail, dur_ns);
}

fn bad_frame(e: WireError) -> (u16, String) {
    (ERR_BAD_FRAME, e.to_string())
}

fn query_err(e: transmark_core::error::EngineError) -> (u16, String) {
    (ERR_QUERY, e.to_string())
}

fn source_err(e: &SourceError) -> (u16, String) {
    match e {
        SourceError::Version { found, supported } => (
            ERR_VERSION,
            format!(
                "unsupported tmsb version {found}; this server speaks versions up to {supported}"
            ),
        ),
        other => (ERR_QUERY, other.to_string()),
    }
}

fn decode_sequence(format: u8, bytes: &[u8]) -> Result<MarkovSequence, (u16, String)> {
    match format {
        0 => {
            let text = std::str::from_utf8(bytes)
                .map_err(|_| (ERR_BAD_FRAME, "sequence text is not UTF-8".to_string()))?;
            transmark_markov::textio::from_text(text)
                .map_err(|e| (ERR_QUERY, format!("sequence parse: {e}")))
        }
        1 => transmark_markov::binio::from_tmsb_bytes(bytes).map_err(|e| source_err(&e)),
        other => Err((ERR_BAD_FRAME, format!("unknown sequence format {other}"))),
    }
}

fn parse_output(t: &Transducer, output_text: &str) -> Result<Vec<SymbolId>, (u16, String)> {
    output_text
        .split_whitespace()
        .map(|name| {
            t.output_alphabet().get(name).ok_or_else(|| {
                (
                    ERR_QUERY,
                    format!("output symbol {name:?} is not in the query's output alphabet"),
                )
            })
        })
        .collect()
}

// ---- Streamed `.tmsb` sessions --------------------------------------------

/// Presents the STREAM_DATA frames of one session as a contiguous byte
/// stream (`impl Read`) for [`TmsbReader`], acknowledging each chunk
/// only after the evaluation has fully consumed it: at most one
/// unacknowledged chunk exists, so the sender is throttled to the
/// query's own pace (stop-and-wait backpressure).
struct FrameByteStream<'a, R: Read, W: Write> {
    reader: &'a mut R,
    writer: &'a mut W,
    buf: Vec<u8>,
    at: usize,
    consumed: u64,
    ended: bool,
    /// Set when the wire itself failed (vs. the evaluation); the session
    /// cannot be drained afterwards.
    broken: bool,
    /// Once the query session exists, a checkpoint request surfaces to
    /// the drive loop (as a marker I/O error + `pending_checkpoint`) so
    /// it can serialize the session. Before that — mid-prelude — the
    /// stream answers with an empty checkpoint itself.
    allow_checkpoint: bool,
    /// Set when the last read error was a checkpoint request, not a real
    /// failure; the drive loop services it and retries the read.
    pending_checkpoint: bool,
}

impl<'a, R: Read, W: Write> FrameByteStream<'a, R, W> {
    fn new(reader: &'a mut R, writer: &'a mut W) -> Self {
        FrameByteStream {
            reader,
            writer,
            buf: Vec::new(),
            at: 0,
            consumed: 0,
            ended: false,
            broken: false,
            allow_checkpoint: false,
            pending_checkpoint: false,
        }
    }

    /// Sends an [`OP_CHECKPOINT`] frame (position + opaque blob).
    fn send_checkpoint(&mut self, position: u64, blob: &[u8]) -> bool {
        let payload = PayloadBuilder::new().u64(position).bytes(blob).build();
        match write_frame(self.writer, OP_CHECKPOINT, &payload) {
            Ok(()) => {
                transmark_obs::counter!("serve.stream_checkpoints").inc();
                true
            }
            Err(_) => {
                self.broken = true;
                false
            }
        }
    }

    /// Acks the consumed prefix and pulls the next DATA frame.
    fn refill(&mut self) -> std::io::Result<()> {
        loop {
            let ack = PayloadBuilder::new().u64(self.consumed).build();
            write_frame(self.writer, OP_STREAM_ACK, &ack).map_err(|e| {
                self.broken = true;
                wire_to_io(e)
            })?;
            return match read_frame(self.reader) {
                Ok(Some(Frame {
                    op: OP_STREAM_DATA,
                    payload,
                })) => {
                    self.buf = payload;
                    self.at = 0;
                    Ok(())
                }
                Ok(Some(Frame {
                    op: OP_STREAM_END, ..
                })) => {
                    self.ended = true;
                    Ok(())
                }
                Ok(Some(Frame {
                    op: OP_STREAM_CHECKPOINT,
                    ..
                })) => {
                    if self.allow_checkpoint {
                        // Surface to the drive loop, which owns the
                        // session state; the partial layer fill persists
                        // in the RawLayerReader, so the retried read
                        // continues bit-identically.
                        self.pending_checkpoint = true;
                        return Err(std::io::Error::other("checkpoint requested"));
                    }
                    // Still inside the prelude — no session exists. An
                    // empty blob at position 0 means "no progress yet":
                    // resuming it is starting over.
                    if !self.send_checkpoint(0, &[]) {
                        return Err(std::io::Error::other(
                            "connection failed while sending checkpoint",
                        ));
                    }
                    continue;
                }
                Ok(Some(f)) => {
                    self.broken = true;
                    Err(std::io::Error::other(format!(
                        "unexpected opcode {:#04x} inside a stream session",
                        f.op
                    )))
                }
                Ok(None) => {
                    self.broken = true;
                    Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "peer closed mid-stream",
                    ))
                }
                Err(e) => {
                    self.broken = true;
                    Err(wire_to_io(e))
                }
            };
        }
    }

    /// After the evaluation, runs the ack loop to the session's
    /// STREAM_END so the connection is frame-aligned again. Surplus
    /// chunks are acknowledged and discarded.
    fn drain(mut self) -> bool {
        if self.broken {
            return false;
        }
        // The session is over; a straggling checkpoint request gets the
        // inline "no state" reply instead of breaking frame alignment.
        self.allow_checkpoint = false;
        while !self.ended {
            self.at = self.buf.len();
            if self.refill().is_err() {
                return false;
            }
        }
        true
    }
}

fn wire_to_io(e: WireError) -> std::io::Error {
    match e {
        WireError::Io(e) => e,
        other => std::io::Error::other(other.to_string()),
    }
}

impl<R: Read, W: Write> Read for FrameByteStream<'_, R, W> {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        while self.at == self.buf.len() {
            if self.ended {
                return Ok(0);
            }
            self.refill()?;
        }
        let n = out.len().min(self.buf.len() - self.at);
        out[..n].copy_from_slice(&self.buf[self.at..self.at + n]);
        self.at += n;
        self.consumed += n as u64;
        Ok(n)
    }
}

fn handle_stream<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    shared: &Shared,
    ctx: &QueryCtx,
    payload: &[u8],
) -> bool {
    let tenant = ctx.tenant;
    let _slot = match admit(shared, tenant) {
        Ok(s) => s,
        Err(()) => {
            // The client has not sent any DATA yet (it waits for the
            // first ack), so the error frame arrives in its place and
            // the session never starts.
            let ok = write_error(
                writer,
                ERR_QUOTA,
                &format!("tenant {tenant:?} is at its in-flight quota"),
            )
            .is_ok();
            return ok && drain_until_end(reader);
        }
    };
    transmark_obs::counter!("serve.stream_sessions").inc();

    let mut c = Cursor::new(payload);
    type StreamHeader = (u8, bool, u64, u32, Transducer, String, Option<Vec<u8>>);
    let parsed = (|| -> Result<StreamHeader, (u16, String)> {
        let kind = c.u8("kind").map_err(bad_frame)?;
        let flags = c.u8("flags").map_err(bad_frame)?;
        let window = if kind == KIND_WINDOW {
            c.u32("window").map_err(bad_frame)?
        } else {
            0
        };
        let trace_id = parse_trace_id(&mut c, flags, ctx.version)?;
        let query_text = c.string("query").map_err(bad_frame)?;
        let output_text = c.string("output").map_err(bad_frame)?;
        let resume = if flags & FLAG_RESUME != 0 {
            Some(c.bytes("resume checkpoint").map_err(bad_frame)?.to_vec())
        } else {
            None
        };
        let t = transmark_core::textio::from_text(&query_text)
            .map_err(|e| (ERR_QUERY, format!("query parse: {e}")))?;
        Ok((
            kind,
            flags & FLAG_PROFILE != 0,
            trace_id,
            window,
            t,
            output_text,
            resume,
        ))
    })();
    let (kind, with_profile, trace_id, window, t, output_text, resume) = match parsed {
        Ok(p) => p,
        Err((code, message)) => {
            let ok = write_error(writer, code, &message).is_ok();
            return ok && drain_until_end(reader);
        }
    };

    let kind_str = kind_name(kind);
    transmark_obs::counter!("serve.requests", tenant = tenant, kind = kind_str).inc();
    transmark_obs::log::publish(RecordKind::RequestStart, tenant, kind_str, 0);
    let timer = transmark_obs::Timer::start();
    let engine = &shared.engine;
    let mut src = FrameByteStream::new(reader, writer);
    let outcome = run_stream_query(
        engine,
        ctx,
        kind,
        with_profile,
        trace_id,
        window,
        &t,
        &output_text,
        resume.as_deref(),
        &mut src,
    );
    let aligned = src.drain();
    let dur_ns = timer.elapsed_ns();
    transmark_obs::histogram!("serve.request_ns", tenant = tenant, kind = kind_str).record(dur_ns);
    transmark_obs::log::publish(RecordKind::RequestFinish, tenant, kind_str, dur_ns);
    match outcome {
        Ok(result) => aligned && write_frame(writer, OP_RESULT, &result).is_ok(),
        Err((code, message)) => write_error(writer, code, &message).is_ok() && aligned,
    }
}

/// Maps session-resume failures onto the wire: malformed/mismatched
/// checkpoints get their own code so clients can distinguish "start
/// over" from "query is wrong".
fn checkpoint_err(e: transmark_core::error::EngineError) -> (u16, String) {
    match e {
        EngineError::BadCheckpoint(_) => (ERR_BAD_CHECKPOINT, e.to_string()),
        other => (ERR_QUERY, other.to_string()),
    }
}

/// The server-side checkpoint envelope carried (opaquely, from the
/// client's point of view) inside [`OP_CHECKPOINT`] / `FLAG_RESUME`
/// blobs: enough to rebuild the layer reader (`k`, `n`), the progress
/// already streamed back on resume-less kinds (`series`), and the core
/// session's own versioned checkpoint (`core`).
struct ServeCheckpoint {
    k: usize,
    n: usize,
    position: u64,
    series: Vec<f64>,
    core: Vec<u8>,
}

fn encode_serve_checkpoint(
    kind: u8,
    k: usize,
    n: usize,
    position: u64,
    series: &[f64],
    core: &[u8],
) -> Vec<u8> {
    let mut b = PayloadBuilder::new()
        .u8(kind)
        .u32(k as u32)
        .u64(n as u64)
        .u64(position)
        .u64(series.len() as u64);
    for v in series {
        b = b.f64(*v);
    }
    b.bytes(core).build()
}

fn parse_serve_checkpoint(kind: u8, blob: &[u8]) -> Result<ServeCheckpoint, (u16, String)> {
    let bad = |m: String| (ERR_BAD_CHECKPOINT, format!("resume checkpoint: {m}"));
    let mut c = Cursor::new(blob);
    let ck = c.u8("kind").map_err(|e| bad(e.to_string()))?;
    if ck != kind {
        return Err(bad(format!(
            "blob was taken from a kind-{ck} session, not kind {kind}"
        )));
    }
    let k = c.u32("alphabet size").map_err(|e| bad(e.to_string()))? as usize;
    let n = c.u64("sequence length").map_err(|e| bad(e.to_string()))?;
    let n = usize::try_from(n).map_err(|_| bad(format!("implausible sequence length {n}")))?;
    let position = c.u64("position").map_err(|e| bad(e.to_string()))?;
    let series_len = c.u64("series length").map_err(|e| bad(e.to_string()))?;
    // Plausibility before allocating: every recorded probability cost 8
    // bytes of blob, and the series never outruns the stream position
    // (it holds at most one entry per consumed layer plus position 0).
    if series_len > blob.len() as u64 / 8 || series_len > position.saturating_add(1) {
        return Err(bad(format!("implausible series length {series_len}")));
    }
    let mut series = Vec::with_capacity(series_len as usize);
    for _ in 0..series_len {
        series.push(c.f64("series entry").map_err(|e| bad(e.to_string()))?);
    }
    let core = c
        .bytes("session state")
        .map_err(|e| bad(e.to_string()))?
        .to_vec();
    if !c.is_exhausted() {
        return Err(bad("trailing bytes after session state".to_string()));
    }
    Ok(ServeCheckpoint {
        k,
        n,
        position,
        series,
        core,
    })
}

/// One incremental session per streamed kind, so the layer-drive loop
/// below is written once. `advance` returns the value (if any) to append
/// to the result series.
enum Sess<'q> {
    Conf(ConfidenceSession),
    Series(EventSession),
    Window(WindowSession<'q>),
}

impl Sess<'_> {
    fn advance(&mut self, matrix: &[f64]) -> Result<Option<f64>, EngineError> {
        match self {
            Sess::Conf(s) => s.step(matrix).map(|()| None),
            Sess::Series(s) => s.advance(matrix).map(Some),
            Sess::Window(s) => s.advance(matrix).map(Some),
        }
    }

    fn checkpoint(&self) -> Vec<u8> {
        match self {
            Sess::Conf(s) => s.checkpoint(),
            Sess::Series(s) => s.checkpoint(),
            Sess::Window(s) => s.checkpoint(),
        }
    }

    /// Series kinds report the position-0 probability before any layer
    /// is consumed (matching `series`/`series_source` shape).
    fn initial_probability(&self) -> Option<f64> {
        match self {
            Sess::Conf(_) => None,
            Sess::Series(s) => Some(s.probability()),
            Sess::Window(s) => Some(s.probability()),
        }
    }
}

/// Runs one streamed query over the session's byte stream as an
/// incremental state machine: `.tmsb` prelude negotiation comes from
/// [`read_prelude`]/[`RawLayerReader`], so version and stride/truncation
/// typing still belong to the binio layer, while every decoded layer is
/// fed to a core session (`ConfidenceSession` / `EventSession` /
/// `WindowSession`). Between any two layers — including mid-layer, since
/// the raw reader's partial fill survives the interrupting marker error —
/// the client may swap a DATA frame for [`OP_STREAM_CHECKPOINT`] and get
/// the suspended session back as an opaque blob; presenting that blob
/// with `FLAG_RESUME` (and the remaining layers) continues bit-identically.
#[allow(clippy::too_many_arguments)]
fn run_stream_query<R: Read, W: Write>(
    engine: &Engine,
    ctx: &QueryCtx,
    kind: u8,
    with_profile: bool,
    trace_id: u64,
    window: u32,
    t: &Transducer,
    output_text: &str,
    resume: Option<&[u8]>,
    src: &mut FrameByteStream<'_, R, W>,
) -> Result<Vec<u8>, (u16, String)> {
    let run = |src: &mut FrameByteStream<'_, R, W>| -> Result<(u8, PayloadBuilder), (u16, String)> {
        if !matches!(kind, KIND_CONFIDENCE | KIND_SERIES | KIND_WINDOW) {
            return Err((
                ERR_BAD_FRAME,
                format!("query kind {kind} cannot run over a stream session"),
            ));
        }
        // Machine-side compilation happens before the wire is touched.
        let plan = (kind == KIND_CONFIDENCE).then(|| engine.prepare(t));
        let o = match kind {
            KIND_CONFIDENCE => parse_output(t, output_text)?,
            _ => Vec::new(),
        };
        let wq_storage;
        let wq = if kind == KIND_WINDOW {
            wq_storage =
                SlidingWindowQuery::new(t.underlying_nfa(), window as usize).map_err(query_err)?;
            Some(&wq_storage)
        } else {
            None
        };

        let (mut sess, mut raw, mut series, dims) = match resume {
            None => {
                // Fresh session: the prelude arrives over the wire first.
                // Checkpoint requests during this phase are answered by
                // the stream itself (position 0 = "start over"), so the
                // prelude's `read_exact`s never see an interruption.
                let prelude = read_prelude(src).map_err(|e| source_err(&e))?;
                let raw = RawLayerReader::new(&prelude).map_err(|e| source_err(&e))?;
                let dims = (prelude.alphabet().len(), prelude.len());
                let sess = match kind {
                    KIND_CONFIDENCE => Sess::Conf(
                        plan.as_ref()
                            .expect("plan prepared for confidence kind")
                            .begin_confidence(prelude.initial(), &o)
                            .map_err(query_err)?,
                    ),
                    KIND_SERIES => Sess::Series(
                        EventSession::start(t.underlying_nfa(), prelude.initial())
                            .map_err(query_err)?,
                    ),
                    _ => Sess::Window(
                        wq.expect("window query built for window kind")
                            .start(prelude.initial())
                            .map_err(query_err)?,
                    ),
                };
                let mut series = Vec::new();
                series.extend(sess.initial_probability());
                (sess, raw, series, dims)
            }
            Some(blob) => {
                // Resumed session: the client slices its data past the
                // prelude, so the layer reader is rebuilt from the dims
                // recorded in the envelope rather than re-read.
                let env = parse_serve_checkpoint(kind, blob)?;
                let sess = match kind {
                    KIND_CONFIDENCE => Sess::Conf(
                        plan.as_ref()
                            .expect("plan prepared for confidence kind")
                            .resume_confidence(&o, &env.core)
                            .map_err(checkpoint_err)?,
                    ),
                    KIND_SERIES => Sess::Series(
                        EventSession::resume(t.underlying_nfa(), &env.core)
                            .map_err(checkpoint_err)?,
                    ),
                    _ => Sess::Window(
                        wq.expect("window query built for window kind")
                            .resume(&env.core)
                            .map_err(checkpoint_err)?,
                    ),
                };
                let raw = RawLayerReader::from_dims(env.k, env.n, env.position)
                    .map_err(|e| (ERR_BAD_CHECKPOINT, format!("resume checkpoint: {e}")))?;
                transmark_obs::counter!("serve.stream_resumes").inc();
                transmark_obs::log::publish(
                    RecordKind::CheckpointResume,
                    ctx.tenant,
                    &format!(
                        "kind={} resumed at position {} of {} layers",
                        kind_name(kind),
                        env.position,
                        env.n
                    ),
                    0,
                );
                (sess, raw, env.series, (env.k, env.n))
            }
        };
        src.allow_checkpoint = true;

        loop {
            match raw.next_layer(src) {
                Ok(Some(matrix)) => {
                    if let Some(p) = sess.advance(matrix).map_err(query_err)? {
                        series.push(p);
                    }
                }
                Ok(None) => break,
                Err(SourceError::Io(_)) if src.pending_checkpoint => {
                    // The client swapped a DATA frame for a checkpoint
                    // request. The raw reader holds any partial layer
                    // fill, so after replying we simply retry the read.
                    src.pending_checkpoint = false;
                    let position = raw.position() as u64;
                    let blob = encode_serve_checkpoint(
                        kind,
                        dims.0,
                        dims.1,
                        position,
                        &series,
                        &sess.checkpoint(),
                    );
                    if !src.send_checkpoint(position, &blob) {
                        return Err((
                            ERR_QUERY,
                            "connection failed while sending checkpoint".to_string(),
                        ));
                    }
                }
                Err(e) => return Err(source_err(&e)),
            }
        }

        match sess {
            Sess::Conf(s) => Ok((RESULT_CONFIDENCE, PayloadBuilder::new().f64(s.finish()))),
            Sess::Series(_) | Sess::Window(_) => {
                let mut b = PayloadBuilder::new().u64(series.len() as u64);
                for v in &series {
                    b = b.f64(*v);
                }
                Ok((RESULT_SERIES, b))
            }
        }
    };

    let need_profile = with_profile || trace_id != 0 || ctx.slow_ms.is_some();
    if !need_profile {
        let (result_kind, body) = run(src)?;
        return Ok(PayloadBuilder::new()
            .u8(result_kind)
            .raw(&body.build())
            .string("")
            .build());
    }
    let rec = Arc::new(Recorder::new());
    if trace_id != 0 {
        rec.set_trace(trace_id);
    }
    let timer = transmark_obs::Timer::start();
    let outcome = engine.profiled_with(&rec, || run(src));
    let dur_ns = timer.elapsed_ns();
    let mut profile = rec.finish();
    if trace_id != 0 && ctx.queue_wait_ns > 0 {
        profile.prepend_wait("pool-queue", "pool.queue_wait", ctx.queue_wait_ns);
    }
    // Streamed sessions have no bound plan to explain; the phase
    // timings still tell the slow-log reader where the time went.
    maybe_log_slow(ctx, kind, dur_ns, "", &profile);
    let (result_kind, body) = outcome?;
    let profile_text = if with_profile {
        if trace_id != 0 {
            profile.to_json()
        } else {
            profile.to_text()
        }
    } else {
        String::new()
    };
    Ok(PayloadBuilder::new()
        .u8(result_kind)
        .raw(&body.build())
        .string(&profile_text)
        .build())
}

/// Consumes session frames up to STREAM_END after an error was sent in
/// place of an ack; under stop-and-wait the client sends at most its
/// closing STREAM_END, so this terminates immediately.
fn drain_until_end(reader: &mut impl Read) -> bool {
    loop {
        match read_frame(reader) {
            Ok(Some(Frame {
                op: OP_STREAM_END, ..
            })) => return true,
            Ok(Some(Frame {
                op: OP_STREAM_DATA, ..
            })) => continue,
            _ => return false,
        }
    }
}

fn handle_metrics(writer: &mut impl Write, shared: &Shared, payload: &[u8]) -> bool {
    let snap = shared.engine.metrics();
    let text = match payload.first().copied().unwrap_or(0) {
        1 => snap.to_json(),
        2 => snap.to_prometheus(),
        _ => snap.to_text(),
    };
    let result = PayloadBuilder::new()
        .u8(RESULT_TEXT)
        .raw(text.as_bytes())
        .build();
    write_frame(writer, OP_RESULT, &result).is_ok()
}

// ---- HTTP metrics scrape ---------------------------------------------------

/// Serves one `GET /metrics[.json|.prom]` scrape as a proper HTTP/1.1
/// response (status line, `Content-Type`, `Content-Length`, one
/// response per connection). The `"GET "` prefix has already been
/// consumed by the sniffer.
fn serve_http(reader: &mut impl Read, writer: &mut impl Write, shared: &Shared) {
    // Read the request head (bounded), extract the path.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") && head.len() < 8192 {
        match reader.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => head.push(byte[0]),
            Err(_) => return,
        }
    }
    let line = String::from_utf8_lossy(&head);
    let path = line.split_whitespace().next().unwrap_or("/").to_string();
    let (status, content_type, body) = match path.as_str() {
        "/metrics" => (
            "200 OK",
            "text/plain; charset=utf-8",
            shared.engine.metrics().to_text(),
        ),
        "/metrics.json" => (
            "200 OK",
            "application/json",
            shared.engine.metrics().to_json(),
        ),
        "/metrics.prom" => (
            "200 OK",
            // The Prometheus text exposition format, version 0.0.4.
            "text/plain; version=0.0.4; charset=utf-8",
            shared.engine.metrics().to_prometheus(),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics, /metrics.json, or /metrics.prom\n".to_string(),
        ),
    };
    let _ = write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = writer.flush();
}

/// Fills `buf` or reports failure (clean close included — the sniffer
/// needs all four bytes to do anything useful).
fn read_fully(reader: &mut impl Read, buf: &mut [u8]) -> Result<(), ()> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(()),
        }
    }
    Ok(())
}
