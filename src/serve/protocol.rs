//! The `tmkp` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is `[u32 LE payload length][u8 opcode][payload]`. The
//! first client frame must be [`OP_HELLO`] carrying the `"TMKP"` magic,
//! the protocol version, and a tenant name; the server answers
//! [`OP_HELLO_OK`] (or a typed [`OP_ERROR`] with [`ERR_VERSION`] naming
//! the newest version it speaks — version negotiation, not garbage).
//!
//! Results are binary, not decimal text: confidences, series, and
//! `E_max` scores travel as little-endian IEEE-754 bit patterns, so a
//! served answer is **bit-identical** to the in-process engine path —
//! the property the serve test suite pins per [`PlanKind`]
//! (transmark_core::plan::PlanKind).
//!
//! Streamed sessions ([`OP_STREAM_BEGIN`] → [`OP_STREAM_DATA`]* →
//! [`OP_STREAM_END`]) carry a raw `.tmsb` byte stream, chunked however
//! the client likes; the server acknowledges each chunk
//! ([`OP_STREAM_ACK`]) only after the evaluation has fully consumed it
//! (stop-and-wait backpressure: at most one unacknowledged chunk is in
//! flight, so a slow query propagates to a slow sender instead of an
//! unbounded server buffer). See `PROTOCOL.md` for the normative spec.

use std::io::{Read, Write};

/// Leading bytes of the [`OP_HELLO`] payload.
pub const WIRE_MAGIC: [u8; 4] = *b"TMKP";
/// The newest protocol version this build speaks. Version 2 adds
/// wire-propagated trace context ([`FLAG_TRACE`]) and structured
/// profile returns; servers still accept [`WIRE_VERSION_MIN`] peers,
/// and HELLO_OK carries the negotiated (minimum of the two) version.
pub const WIRE_VERSION: u32 = 2;
/// The oldest protocol version this build still serves.
pub const WIRE_VERSION_MIN: u32 = 1;
/// Hard ceiling on a single frame's payload (64 MiB); larger
/// length-prefixes are treated as garbage, not allocation requests.
pub const MAX_FRAME: usize = 64 << 20;

// ---- Opcodes: client → server ---------------------------------------------

/// First frame on every connection: magic + version + tenant name.
pub const OP_HELLO: u8 = 0x01;
/// One self-contained query: kind, query text, output, sequence payload.
pub const OP_QUERY: u8 = 0x02;
/// Opens a streamed `.tmsb` session: kind, query text, output.
pub const OP_STREAM_BEGIN: u8 = 0x03;
/// One chunk of the streamed `.tmsb` byte stream (any chunking).
pub const OP_STREAM_DATA: u8 = 0x04;
/// Ends the streamed byte stream; the result frame follows.
pub const OP_STREAM_END: u8 = 0x05;
/// Requests a metrics snapshot (payload: 0 = text, 1 = JSON).
pub const OP_METRICS: u8 = 0x06;
/// Asks the server to shut down gracefully (acked, then drained).
pub const OP_SHUTDOWN: u8 = 0x07;
/// Inside a stream session, sent in place of a DATA frame (after an
/// ACK): asks the server to suspend the session to a checkpoint blob.
/// The server answers [`OP_CHECKPOINT`], then re-acks; the session
/// continues. Empty payload.
pub const OP_STREAM_CHECKPOINT: u8 = 0x08;

// ---- Opcodes: server → client ---------------------------------------------

/// Accepts the HELLO; payload: the negotiated protocol version — the
/// minimum of the client's and the server's ([`WIRE_VERSION`]). Both
/// sides must speak only that version's features for the rest of the
/// connection.
pub const OP_HELLO_OK: u8 = 0x81;
/// A query result (see the `RESULT_*` kinds).
pub const OP_RESULT: u8 = 0x82;
/// Acknowledges one fully-consumed stream chunk; payload: u64 LE total
/// bytes consumed so far.
pub const OP_STREAM_ACK: u8 = 0x83;
/// Acknowledges a shutdown request.
pub const OP_SHUTDOWN_OK: u8 = 0x84;
/// Answers [`OP_STREAM_CHECKPOINT`]: u64 LE layers consumed, then a
/// u32-length-prefixed opaque checkpoint blob. Present the blob to a
/// fresh session via [`FLAG_RESUME`] to continue where it left off.
pub const OP_CHECKPOINT: u8 = 0x85;
/// A typed failure: u16 LE error code + UTF-8 message.
pub const OP_ERROR: u8 = 0xFF;

// ---- Flags (second byte of QUERY / STREAM_BEGIN payloads) ------------------

/// Run the query under a query-scoped profiler; the RESULT carries the
/// rendered profile text.
pub const FLAG_PROFILE: u8 = 0x1;
/// STREAM_BEGIN only: the payload carries a checkpoint blob
/// ([`OP_CHECKPOINT`]) after the output string; the session resumes from
/// it, and DATA frames must start at the blob's recorded layer offset
/// (past the `.tmsb` prelude).
pub const FLAG_RESUME: u8 = 0x2;
/// Version ≥ 2 only: a u64 LE client-generated trace id follows the
/// flags byte (QUERY) or the window length (STREAM_BEGIN). The server
/// installs the id into the query's profiler so the capture it ships
/// back is stitchable to the client's; combined with [`FLAG_PROFILE`],
/// the RESULT's profile string is the structured JSON form
/// (`ExecutionProfile::to_json`) instead of rendered text. A client
/// MUST NOT set this flag when the negotiated version is 1.
pub const FLAG_TRACE: u8 = 0x4;

// ---- Query kinds -----------------------------------------------------------

/// `Pr(stream →[query]→ o)` — exact confidence of one output string.
pub const KIND_CONFIDENCE: u8 = 1;
/// Top-k answers by `E_max` with exact confidences.
pub const KIND_TOP_K: u8 = 2;
/// Prefix acceptance series of the query's underlying NFA.
pub const KIND_SERIES: u8 = 3;
/// Sliding-window series of the query's underlying NFA: the
/// STREAM_BEGIN payload gains a u32 window length after the flags byte,
/// and the RESULT is a series frame of per-position window
/// probabilities.
pub const KIND_WINDOW: u8 = 4;

// ---- Result kinds ----------------------------------------------------------

/// Payload: f64 LE bit pattern.
pub const RESULT_CONFIDENCE: u8 = 1;
/// Payload: u32 count, then per answer u32 len + len×u32 symbol ids +
/// f64 `E_max` + f64 confidence (all LE bit patterns).
pub const RESULT_TOP_K: u8 = 2;
/// Payload: u64 count + count×f64 LE bit patterns.
pub const RESULT_SERIES: u8 = 3;
/// Payload: UTF-8 text (metrics snapshots).
pub const RESULT_TEXT: u8 = 4;

// ---- Error codes -----------------------------------------------------------

/// Malformed frame or payload.
pub const ERR_BAD_FRAME: u16 = 1;
/// The peer speaks a protocol (or `.tmsb`) version this server does not;
/// the message names the newest supported version.
pub const ERR_VERSION: u16 = 2;
/// Admission control: the worker pool's bounded queue is full.
pub const ERR_SATURATED: u16 = 3;
/// The tenant named in HELLO is at its in-flight quota.
pub const ERR_QUOTA: u16 = 4;
/// The query itself failed (parse, alphabet mismatch, evaluation).
pub const ERR_QUERY: u16 = 5;
/// A frame arrived that this connection state does not allow.
pub const ERR_STATE: u16 = 6;
/// The server is shutting down.
pub const ERR_SHUTDOWN: u16 = 7;
/// A [`FLAG_RESUME`] checkpoint blob could not be decoded or belongs to
/// a different query.
pub const ERR_BAD_CHECKPOINT: u16 = 8;

/// One decoded frame: opcode plus owned payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame's opcode (`OP_*`).
    pub op: u8,
    /// The frame's payload bytes.
    pub payload: Vec<u8>,
}

/// Errors of the wire layer itself (not query failures — those travel
/// as [`OP_ERROR`] frames).
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed or closed mid-frame.
    Io(std::io::Error),
    /// The peer sent bytes that are not a well-formed frame.
    Malformed(String),
    /// The peer reported a typed failure ([`OP_ERROR`]).
    Remote {
        /// The `ERR_*` code.
        code: u16,
        /// The human-readable message.
        message: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
            WireError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one frame and flushes it.
pub fn write_frame(w: &mut impl Write, op: u8, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len())
        .map_err(|_| WireError::Malformed("payload exceeds u32 length".into()))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[op])?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. `Ok(None)` means the peer closed cleanly *between*
/// frames; closing mid-frame is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
    let mut len_buf = [0u8; 4];
    match read_exact_or_eof(r, &mut len_buf)? {
        Eof::Clean => return Ok(None),
        Eof::Data => {}
    }
    read_frame_after_len(r, len_buf)
}

/// Finishes reading a frame whose 4-byte length prefix was already
/// consumed (the server peeks those bytes to sniff HTTP scrapes).
pub fn read_frame_after_len(
    r: &mut impl Read,
    len_buf: [u8; 4],
) -> Result<Option<Frame>, WireError> {
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Malformed(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte ceiling"
        )));
    }
    let mut op = [0u8; 1];
    r.read_exact(&mut op).map_err(|e| truncated("opcode", e))?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| truncated("payload", e))?;
    Ok(Some(Frame { op: op[0], payload }))
}

enum Eof {
    Clean,
    Data,
}

/// Fills `buf` completely, distinguishing "no bytes at all" (a clean
/// close between frames) from a mid-prefix cut.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<Eof, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(Eof::Clean),
            Ok(0) => {
                return Err(WireError::Malformed(format!(
                    "peer closed {filled} bytes into a frame's length prefix"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(Eof::Data)
}

fn truncated(what: &str, e: std::io::Error) -> WireError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        WireError::Malformed(format!("peer closed mid-frame (reading {what})"))
    } else {
        WireError::Io(e)
    }
}

/// Sends a typed [`OP_ERROR`] frame.
pub fn write_error(w: &mut impl Write, code: u16, message: &str) -> Result<(), WireError> {
    let mut payload = Vec::with_capacity(2 + message.len());
    payload.extend_from_slice(&code.to_le_bytes());
    payload.extend_from_slice(message.as_bytes());
    write_frame(w, OP_ERROR, &payload)
}

/// Parses an [`OP_ERROR`] payload into its code and message.
pub fn parse_error(payload: &[u8]) -> (u16, String) {
    if payload.len() < 2 {
        return (ERR_BAD_FRAME, "truncated error frame".to_string());
    }
    let code = u16::from_le_bytes([payload[0], payload[1]]);
    let message = String::from_utf8_lossy(&payload[2..]).into_owned();
    (code, message)
}

// ---- Payload cursor --------------------------------------------------------

/// A little-endian decode cursor over one frame's payload. Every getter
/// fails loudly on truncation instead of wrapping or zero-filling.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    /// Starts decoding at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.at + n > self.bytes.len() {
            return Err(WireError::Malformed(format!(
                "payload truncated reading {what}"
            )));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// One byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// A little-endian u16.
    pub fn u16(&mut self, what: &str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    /// A little-endian u32.
    pub fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    /// A little-endian u64.
    pub fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// A little-endian f64 bit pattern (bit-exact, no decimal detour).
    pub fn f64(&mut self, what: &str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// A u32-length-prefixed byte run.
    pub fn bytes(&mut self, what: &str) -> Result<&'a [u8], WireError> {
        let len = self.u32(what)? as usize;
        self.take(len, what)
    }

    /// A u32-length-prefixed UTF-8 string.
    pub fn string(&mut self, what: &str) -> Result<String, WireError> {
        let b = self.bytes(what)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| WireError::Malformed(format!("{what} is not valid UTF-8")))
    }

    /// True when every payload byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.at == self.bytes.len()
    }
}

/// A payload builder mirroring [`Cursor`]'s encodings.
#[derive(Default)]
pub struct PayloadBuilder {
    bytes: Vec<u8>,
}

impl PayloadBuilder {
    /// An empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn u8(mut self, v: u8) -> Self {
        self.bytes.push(v);
        self
    }

    /// Appends a little-endian u16.
    pub fn u16(mut self, v: u16) -> Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian u32.
    pub fn u32(mut self, v: u32) -> Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian u64.
    pub fn u64(mut self, v: u64) -> Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an f64 as its little-endian bit pattern.
    pub fn f64(mut self, v: f64) -> Self {
        self.bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        self
    }

    /// Appends a u32-length-prefixed byte run.
    pub fn bytes(mut self, v: &[u8]) -> Self {
        self = self.u32(v.len() as u32);
        self.bytes.extend_from_slice(v);
        self
    }

    /// Appends a u32-length-prefixed UTF-8 string.
    pub fn string(self, v: &str) -> Self {
        self.bytes(v.as_bytes())
    }

    /// Appends raw bytes with no length prefix.
    pub fn raw(mut self, v: &[u8]) -> Self {
        self.bytes.extend_from_slice(v);
        self
    }

    /// The finished payload.
    pub fn build(self) -> Vec<u8> {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, OP_QUERY, b"hello").unwrap();
        write_frame(&mut wire, OP_STREAM_END, b"").unwrap();
        let mut r = std::io::Cursor::new(&wire);
        let f1 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(
            (f1.op, f1.payload.as_slice()),
            (OP_QUERY, b"hello".as_slice())
        );
        let f2 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!((f2.op, f2.payload.len()), (OP_STREAM_END, 0));
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn mid_frame_close_is_malformed_not_clean() {
        let mut wire = Vec::new();
        write_frame(&mut wire, OP_QUERY, b"payload").unwrap();
        // Cut inside the payload.
        let cut = &wire[..wire.len() - 3];
        let mut r = std::io::Cursor::new(cut);
        assert!(matches!(read_frame(&mut r), Err(WireError::Malformed(_))));
        // Cut inside the length prefix.
        let mut r = std::io::Cursor::new(&wire[..2]);
        assert!(matches!(read_frame(&mut r), Err(WireError::Malformed(_))));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.push(OP_QUERY);
        let mut r = std::io::Cursor::new(&wire);
        assert!(matches!(read_frame(&mut r), Err(WireError::Malformed(_))));
    }

    #[test]
    fn cursor_and_builder_are_inverses() {
        let payload = PayloadBuilder::new()
            .u8(7)
            .u16(300)
            .u32(70_000)
            .u64(1 << 40)
            .f64(0.1 + 0.2)
            .string("tenant")
            .bytes(&[1, 2, 3])
            .build();
        let mut c = Cursor::new(&payload);
        assert_eq!(c.u8("a").unwrap(), 7);
        assert_eq!(c.u16("b").unwrap(), 300);
        assert_eq!(c.u32("c").unwrap(), 70_000);
        assert_eq!(c.u64("d").unwrap(), 1 << 40);
        assert_eq!(c.f64("e").unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(c.string("f").unwrap(), "tenant");
        assert_eq!(c.bytes("g").unwrap(), &[1, 2, 3]);
        assert!(c.is_exhausted());
        assert!(c.u8("past the end").is_err());
    }
}
