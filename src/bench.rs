//! `tmk bench`: the built-in perf micro-suite.
//!
//! Four fixed-seed workload cases (confidence, enumeration, streaming,
//! fleet) over the generated hospital and RFID workloads, timed
//! min-of-N. The minimum over repetitions is the run least disturbed by
//! scheduling, so it estimates each case's true cost floor; the median
//! is reported alongside as a noise indicator. Results serialize to a
//! schema-stable JSON (`{"suite":"tmk-bench","schema":1,...}`) so the
//! repo can commit `BENCH_<pr>.json` snapshots — the perf trajectory —
//! and `scripts/check.sh --bench-diff old.json new.json` (which calls
//! [`diff_report`] via `tmk bench --diff`) flags >15% regressions
//! between any two snapshots.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use rand::{rngs::StdRng, SeedableRng};
use transmark_obs::json::{self, Value};
use transmark_workloads::{hospital, rfid};

use crate::cli::{run_err, usage_err, CliError};

/// JSON schema version of the bench output; bump on shape changes.
pub const SCHEMA: u64 = 1;

/// Default measurement repetitions per case.
pub const DEFAULT_RUNS: usize = 5;
/// Default executions per measurement.
pub const DEFAULT_ITERS: usize = 10;

/// Regression threshold for [`diff_report`]: fraction of the baseline's
/// min above which a case counts as regressed.
pub const REGRESSION_THRESHOLD: f64 = 0.15;

/// One timed case of the suite.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case name, `family/workload` (e.g. `"confidence/hospital"`).
    pub name: String,
    /// The RNG seed the workload was generated with (0 = deterministic).
    pub seed: u64,
    /// Measurement repetitions.
    pub runs: u64,
    /// Executions per measurement.
    pub iters: u64,
    /// Minimum per-execution nanoseconds across runs (the cost floor).
    pub min_ns: u64,
    /// Median per-execution nanoseconds across runs.
    pub median_ns: u64,
    /// The execution strategy the case ran under (`sparse`, `dense`,
    /// `scan`); `None` in snapshots written before strategies existed.
    pub strategy: Option<String>,
    /// 99th-percentile per-request nanoseconds; only the sustained-load
    /// `serve/*` cases record one.
    pub p99_ns: Option<u64>,
    /// Sustained requests per second over the whole load window; only
    /// the `serve/*` cases record one.
    pub qps: Option<f64>,
}

/// Times `f` as `runs` measurements of `iters` calls each (after one
/// warm-up call) and returns per-call `(min_ns, median_ns)`.
fn time_case(runs: usize, iters: usize, mut f: impl FnMut()) -> (u64, u64) {
    f();
    let mut samples: Vec<u64> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters.max(1) {
                f();
            }
            (start.elapsed().as_nanos() / iters.max(1) as u128) as u64
        })
        .collect();
    samples.sort_unstable();
    (samples[0], samples[samples.len() / 2])
}

/// Runs the whole suite. Each case fixes its workload seed, so two
/// invocations measure the same computation.
pub fn run_suite(runs: usize, iters: usize) -> Result<Vec<CaseResult>, CliError> {
    let mut results = Vec::new();
    let mut push = |name: &str, seed: u64, strategy: &str, (min_ns, median_ns): (u64, u64)| {
        results.push(CaseResult {
            name: name.to_string(),
            seed,
            runs: runs as u64,
            iters: iters as u64,
            min_ns,
            median_ns,
            strategy: (!strategy.is_empty()).then(|| strategy.to_string()),
            p99_ns: None,
            qps: None,
        });
    };

    // confidence/hospital: the paper's running example — exact
    // confidence of the Table 1 top answer under the room tracker.
    let m = hospital::hospital_sequence();
    let t = hospital::room_tracker();
    let plan = transmark_core::prepare(&t);
    let bound = plan.bind(&m).map_err(run_err)?;
    let top = bound
        .top_k_scored(1)
        .map_err(run_err)?
        .into_iter()
        .next()
        .ok_or_else(|| run_err("hospital workload has no answers"))?;
    let o = top.output.clone();
    push(
        "confidence/hospital",
        0,
        bound.strategy().label(),
        time_case(runs, iters, || {
            std::hint::black_box(bound.confidence(std::hint::black_box(&o)).expect("valid"));
        }),
    );

    // enumerate/hospital: ranked top-k (Lawler–Murty enumeration).
    push(
        "enumerate/hospital",
        0,
        bound.strategy().label(),
        time_case(runs, iters, || {
            std::hint::black_box(bound.top_k_scored(4).expect("valid"));
        }),
    );

    // streaming/hospital: the same confidence, but folded from `.tmsb`
    // bytes through a zero-copy slice source — measures the data plane.
    let tmsb = transmark_markov::binio::to_tmsb_bytes(&m);
    push(
        "streaming/hospital",
        0,
        "sparse",
        time_case(runs, iters, || {
            let src = transmark_markov::binio::TmsbSlice::new(&tmsb).expect("valid tmsb");
            let mut bound = plan.bind_source(src).expect("alphabets match");
            std::hint::black_box(bound.confidence(std::hint::black_box(&o)).expect("valid"));
        }),
    );

    // confidence/rfid: a posterior (conditioned HMM) sequence — dense,
    // nonuniform layers, the General plan class.
    const RFID_SEED: u64 = 42;
    let dep = rfid::deployment(&rfid::RfidSpec::default());
    let mut rng = StdRng::seed_from_u64(RFID_SEED);
    let (posterior, _) = dep.sample_posterior(64, &mut rng);
    let tracker = dep.room_tracker(None);
    let rfid_plan = transmark_core::prepare(&tracker);
    let rfid_bound = rfid_plan.bind(&posterior).map_err(run_err)?;
    let rfid_top = rfid_bound
        .top_k_scored(1)
        .map_err(run_err)?
        .into_iter()
        .next()
        .ok_or_else(|| run_err("rfid workload has no answers"))?;
    let rfid_o = rfid_top.output.clone();
    push(
        "confidence/rfid",
        RFID_SEED,
        rfid_bound.strategy().label(),
        time_case(runs, iters, || {
            std::hint::black_box(
                rfid_bound
                    .confidence(std::hint::black_box(&rfid_o))
                    .expect("valid"),
            );
        }),
    );

    // fleet/rfid: 8 posterior streams, confidence across the store on 2
    // workers — measures the parallel driver (spawn, chunking, merge).
    let mut store = transmark_store::SequenceStore::new(Arc::clone(&dep.locations));
    for i in 0..8 {
        let (seq, _) = dep.sample_posterior(32, &mut rng);
        store.insert(format!("cart-{i:02}"), seq).map_err(run_err)?;
    }
    push(
        "fleet/rfid",
        RFID_SEED,
        transmark_core::choose_strategy(&posterior).label(),
        time_case(runs, iters.div_ceil(4), || {
            std::hint::black_box(
                store
                    .confidence_all_parallel(&tracker, &rfid_o, 2)
                    .expect("valid"),
            );
        }),
    );

    // sweep/*: dense vs sparse one-shot evaluations (bind + confidence,
    // what one `tmk confidence` invocation does) on fully dense layers
    // across lengths 2^10..2^17 — an identity (Mealy) tracker over a
    // 16-symbol zero-free chain. Both strategies run the same
    // deterministic-uniform route; the bind is inside the timed region
    // because that is where the strategies differ structurally: sparse
    // flattens an O(n·|Σ|²) CSR, dense wraps the layer buffer in O(|Σ|).
    const SWEEP_SEED: u64 = 7;
    const SWEEP_SYMS: usize = 16;
    for exp in [10u32, 11, 12, 13, 14, 15, 16, 17] {
        let len = 1usize << exp;
        let mut rng = StdRng::seed_from_u64(SWEEP_SEED);
        let m = transmark_markov::generate::random_markov_sequence(
            &transmark_markov::generate::RandomChainSpec {
                len,
                n_symbols: SWEEP_SYMS,
                zero_prob: 0.0,
            },
            &mut rng,
        );
        let mut b = transmark_core::Transducer::builder(m.alphabet().clone(), m.alphabet().clone());
        let q = b.add_state(true);
        for s in 0..SWEEP_SYMS as u32 {
            let sym = transmark_core::SymbolId(s);
            b.add_transition(q, sym, q, &[sym]).map_err(run_err)?;
        }
        let ident = b.build().map_err(run_err)?;
        let sweep_plan = transmark_core::prepare(&ident);
        let (o, _) = m.most_likely_string();
        // Longer sequences get fewer executions per measurement so the
        // sweep stays a micro-suite, not a soak test.
        let sweep_iters = iters.div_ceil((len >> 13).max(1));
        for strategy in [
            transmark_core::Strategy::Sparse,
            transmark_core::Strategy::Dense,
        ] {
            push(
                &format!("sweep_{}/2e{exp}", strategy.label()),
                SWEEP_SEED,
                strategy.label(),
                time_case(runs, sweep_iters, || {
                    let bound = sweep_plan
                        .bind_with_strategy(&m, Some(strategy))
                        .expect("valid bind");
                    std::hint::black_box(
                        bound.confidence(std::hint::black_box(&o)).expect("valid"),
                    );
                }),
            );
        }
    }

    // series/*: the prefix-acceptance series at length 2^17 — the
    // sequential subset fold vs the parallel-prefix scan on 4 workers,
    // over a 3-state pattern query ("contains s1 s2") with real subset
    // growth.
    const SERIES_SEED: u64 = 11;
    let mut rng = StdRng::seed_from_u64(SERIES_SEED);
    let long = transmark_markov::generate::random_markov_sequence(
        &transmark_markov::generate::RandomChainSpec {
            len: 1 << 17,
            n_symbols: 2,
            zero_prob: 0.0,
        },
        &mut rng,
    );
    let mut nfa = transmark_core::Nfa::new(2);
    let q0 = nfa.add_state(false);
    let q1 = nfa.add_state(false);
    let q2 = nfa.add_state(true);
    let (s0, s1) = (transmark_core::SymbolId(0), transmark_core::SymbolId(1));
    nfa.add_transition(q0, s0, q0);
    nfa.add_transition(q0, s1, q0);
    nfa.add_transition(q0, s1, q1);
    nfa.add_transition(q1, s0, q2);
    nfa.add_transition(q2, s0, q2);
    nfa.add_transition(q2, s1, q2);
    let pattern = nfa.clone();
    let event = transmark_core::PreparedEventQuery::new(nfa);
    let series_iters = iters.div_ceil(8);
    push(
        "series_fold/2e17",
        SERIES_SEED,
        "sparse",
        time_case(runs, series_iters, || {
            std::hint::black_box(
                event
                    .series_with(&long, 1, Some(transmark_core::Strategy::Sparse))
                    .expect("valid"),
            );
        }),
    );
    push(
        "series_scan4/2e17",
        SERIES_SEED,
        "scan",
        time_case(runs, series_iters, || {
            std::hint::black_box(
                event
                    .series_with(&long, 4, Some(transmark_core::Strategy::Scan))
                    .expect("valid"),
            );
        }),
    );

    // window_slide vs window_recompute at 2^15 ticks, window 256: the
    // incremental sliding window pays amortized one operator composition
    // per tick; the recompute case prices the old scheme (re-fold the
    // whole 256-step window from its start marginal) on a 1-in-128 tick
    // sample so the micro-suite stays micro. Per-tick speedup =
    // (recompute_min/256) / (slide_min/32768) — held ≥ 5× by the
    // monitor smoke in scripts/check.sh.
    const WINDOW_SEED: u64 = 17;
    const WINDOW_LEN: usize = 1 << 15;
    const WINDOW_W: usize = 256;
    const WINDOW_STRIDE: usize = 128;
    let mut rng = StdRng::seed_from_u64(WINDOW_SEED);
    let wchain = transmark_markov::generate::random_markov_sequence(
        &transmark_markov::generate::RandomChainSpec {
            len: WINDOW_LEN,
            n_symbols: 2,
            zero_prob: 0.0,
        },
        &mut rng,
    );
    let wq = transmark_core::incremental::SlidingWindowQuery::new(pattern.clone(), WINDOW_W)
        .map_err(run_err)?;
    let window_iters = iters.div_ceil(8);
    push(
        "window_slide/2e15",
        WINDOW_SEED,
        "window",
        time_case(runs, window_iters, || {
            std::hint::black_box(wq.series(&wchain).expect("valid"));
        }),
    );
    let wmarginals = wchain.marginals();
    push(
        "window_recompute/2e15",
        WINDOW_SEED,
        "window",
        time_case(runs, window_iters, || {
            for p in (0..WINDOW_LEN).step_by(WINDOW_STRIDE) {
                let start = (p + 1).saturating_sub(WINDOW_W);
                let in_window: Vec<&[f64]> =
                    (start..p).map(|i| wchain.transition_matrix(i)).collect();
                std::hint::black_box(wq.recompute(&wmarginals[start], &in_window));
            }
        }),
    );

    // monitor/16x4096: 16 streams of 4096 positions multiplexed over one
    // query on 4 workers — prices the monitor's scheduling layer
    // (round-robin lanes, tick batching, report backfill).
    const MONITOR_SEED: u64 = 19;
    let mut rng = StdRng::seed_from_u64(MONITOR_SEED);
    let monitor_seqs: Vec<(String, transmark_markov::MarkovSequence)> = (0..16)
        .map(|i| {
            let m = transmark_markov::generate::random_markov_sequence(
                &transmark_markov::generate::RandomChainSpec {
                    len: 4096,
                    n_symbols: 2,
                    zero_prob: 0.0,
                },
                &mut rng,
            );
            (format!("lane-{i:02}"), m)
        })
        .collect();
    let monitor_refs: Vec<(String, &transmark_markov::MarkovSequence)> =
        monitor_seqs.iter().map(|(n, m)| (n.clone(), m)).collect();
    let monitor = transmark_store::Monitor::new(
        pattern.clone(),
        transmark_store::MonitorConfig {
            window: None,
            threads: 4,
            batch: 0,
        },
    );
    push(
        "monitor/16x4096",
        MONITOR_SEED,
        "sparse",
        time_case(runs, window_iters, || {
            std::hint::black_box(monitor.run_sequences(&monitor_refs).expect("valid"));
        }),
    );

    // serve/*: sustained load against a live `tmk serve` on loopback — a
    // fleet of client connections, fanned out through the same shared
    // store::pool the server itself schedules with, each issuing a run
    // of self-contained top-1 queries. `sustained_hot` repeats one query
    // text, so after the first request the process-lifetime plan cache
    // serves every compile; `sustained_cold` cycles more distinct
    // machines than a deliberately tiny plan cache holds, so every
    // request compiles (miss + eviction). The pair prices the cache:
    // hot p99 is protocol + execute, cold p99 adds a compile.
    const SERVE_SEED: u64 = 23;
    let queries_per_conn = (iters * 5).clamp(20, 200);
    let hot = serve_sustained(
        &[transmark_core::textio::to_text(&t)],
        &transmark_markov::textio::to_text(&m),
        transmark_store::DEFAULT_PLAN_CACHE_CAP,
        4,
        queries_per_conn,
    )?;
    results.push(CaseResult {
        name: "serve/sustained_hot".to_string(),
        seed: 0,
        runs: 4,
        iters: queries_per_conn as u64,
        min_ns: hot.min_ns,
        median_ns: hot.median_ns,
        strategy: None,
        p99_ns: Some(hot.p99_ns),
        qps: Some(hot.qps),
    });

    let mut rng = StdRng::seed_from_u64(SERVE_SEED);
    let cold_seq = transmark_markov::generate::random_markov_sequence(
        &transmark_markov::generate::RandomChainSpec {
            len: 16,
            n_symbols: 2,
            zero_prob: 0.2,
        },
        &mut rng,
    );
    let cold_queries: Vec<String> = (0..8)
        .map(|_| {
            let t = transmark_core::generate::random_transducer(
                &transmark_core::generate::RandomTransducerSpec {
                    n_states: 3,
                    n_input_symbols: 2,
                    n_output_symbols: 2,
                    class: transmark_core::generate::TransducerClass::Deterministic,
                    branching: 1.5,
                },
                &mut rng,
            );
            transmark_core::textio::to_text(&t)
        })
        .collect();
    let cold = serve_sustained(
        &cold_queries,
        &transmark_markov::textio::to_text(&cold_seq),
        2, // plan cache far smaller than the query rotation: all misses
        4,
        queries_per_conn,
    )?;
    results.push(CaseResult {
        name: "serve/sustained_cold".to_string(),
        seed: SERVE_SEED,
        runs: 4,
        iters: queries_per_conn as u64,
        min_ns: cold.min_ns,
        median_ns: cold.median_ns,
        strategy: None,
        p99_ns: Some(cold.p99_ns),
        qps: Some(cold.qps),
    });

    Ok(results)
}

/// Latency/throughput summary of one sustained-load window.
struct SustainedStats {
    min_ns: u64,
    median_ns: u64,
    p99_ns: u64,
    qps: f64,
}

/// Starts a private `tmk serve`, drives `conns` concurrent client
/// connections (fanned out with [`transmark_store::scoped_map`] — the
/// same shared pool fan-out the store and the server use) for
/// `queries_per_conn` top-1 queries each, cycling through `queries`,
/// and reduces the per-request latencies.
fn serve_sustained(
    queries: &[String],
    seq_text: &str,
    plan_capacity: usize,
    conns: usize,
    queries_per_conn: usize,
) -> Result<SustainedStats, CliError> {
    let server = crate::serve::Server::start(crate::serve::ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: conns,
        queue_cap: conns * 2,
        tenant_quota: conns,
        plan_capacity,
        slow_ms: None,
        log: None,
    })
    .map_err(|e| run_err(format!("bench server: {e}")))?;
    let addr = server.local_addr().to_string();

    let conn_ids: Vec<usize> = (0..conns).collect();
    let started = Instant::now();
    let latencies: Vec<Vec<u64>> = transmark_store::scoped_map(&conn_ids, conns, |&c| {
        let mut client = crate::serve::client::Client::connect(&addr, "bench")
            .map_err(|e| run_err(format!("bench client connect: {e}")))?;
        let mut lat = Vec::with_capacity(queries_per_conn);
        for q in 0..queries_per_conn {
            let query = &queries[(c * queries_per_conn + q) % queries.len()];
            let t0 = Instant::now();
            client
                .top_k(
                    query,
                    &crate::serve::client::Sequence::Text(seq_text),
                    1,
                    false,
                )
                .map_err(|e| run_err(format!("bench query: {e}")))?;
            lat.push(t0.elapsed().as_nanos() as u64);
        }
        Ok::<Vec<u64>, CliError>(lat)
    })?;
    let wall = started.elapsed();
    server.shutdown();

    let mut all: Vec<u64> = latencies.into_iter().flatten().collect();
    if all.is_empty() {
        return Err(run_err("sustained-load window measured no requests"));
    }
    all.sort_unstable();
    let n = all.len();
    Ok(SustainedStats {
        min_ns: all[0],
        median_ns: all[n / 2],
        p99_ns: all[((n - 1) * 99) / 100],
        qps: n as f64 / wall.as_secs_f64().max(1e-9),
    })
}

/// Serializes suite results to the schema-stable JSON document.
pub fn to_json(results: &[CaseResult]) -> String {
    let mut cases = std::collections::BTreeMap::new();
    for r in results {
        let mut case = std::collections::BTreeMap::new();
        case.insert("seed".to_string(), Value::Int(r.seed));
        case.insert("runs".to_string(), Value::Int(r.runs));
        case.insert("iters".to_string(), Value::Int(r.iters));
        case.insert("min_ns".to_string(), Value::Int(r.min_ns));
        case.insert("median_ns".to_string(), Value::Int(r.median_ns));
        if let Some(s) = &r.strategy {
            case.insert("strategy".to_string(), Value::Str(s.clone()));
        }
        if let Some(p99) = r.p99_ns {
            case.insert("p99_ns".to_string(), Value::Int(p99));
        }
        if let Some(qps) = r.qps {
            case.insert("qps".to_string(), Value::Float(qps));
        }
        cases.insert(r.name.clone(), Value::Object(case));
    }
    let mut doc = std::collections::BTreeMap::new();
    doc.insert("suite".to_string(), Value::Str("tmk-bench".to_string()));
    doc.insert("schema".to_string(), Value::Int(SCHEMA));
    doc.insert("cases".to_string(), Value::Object(cases));
    Value::Object(doc).to_json()
}

/// Parses a bench JSON document back into case results.
pub fn from_json(text: &str) -> Result<Vec<CaseResult>, String> {
    let v = json::parse(text).map_err(|e| e.to_string())?;
    let doc = v.as_object().ok_or("bench document is not an object")?;
    match doc.get("suite") {
        Some(Value::Str(s)) if s == "tmk-bench" => {}
        _ => return Err("not a tmk-bench document (missing suite name)".to_string()),
    }
    let schema = doc.get("schema").and_then(Value::as_int).unwrap_or(0);
    if schema != SCHEMA {
        return Err(format!(
            "unsupported bench schema {schema} (expected {SCHEMA})"
        ));
    }
    let cases = doc
        .get("cases")
        .and_then(Value::as_object)
        .ok_or("missing cases object")?;
    let mut out = Vec::new();
    for (name, case) in cases {
        let case = case
            .as_object()
            .ok_or_else(|| format!("case {name} is not an object"))?;
        let field = |key: &str| {
            case.get(key)
                .and_then(Value::as_int)
                .ok_or_else(|| format!("case {name} is missing integer {key}"))
        };
        let strategy = match case.get("strategy") {
            Some(Value::Str(s)) => Some(s.clone()),
            // Pre-strategy snapshots simply lack the key.
            _ => None,
        };
        out.push(CaseResult {
            name: name.clone(),
            seed: field("seed")?,
            runs: field("runs")?,
            iters: field("iters")?,
            min_ns: field("min_ns")?,
            median_ns: field("median_ns")?,
            strategy,
            // Sustained-load keys only exist on serve/* cases (and not
            // in snapshots written before the service layer).
            p99_ns: case.get("p99_ns").and_then(Value::as_int),
            qps: case.get("qps").and_then(Value::as_f64),
        });
    }
    Ok(out)
}

/// Renders the human-readable results table.
pub fn to_text(results: &[CaseResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>12}  {:<8} (seed, {} runs x iters)",
        "case",
        "min",
        "median",
        "strategy",
        results.first().map_or(0, |r| r.runs)
    );
    for r in results {
        let mut line = format!(
            "{:<24} {:>12} {:>12}  {:<8} (seed {}, x{})",
            r.name,
            transmark_obs::fmt_ns(r.min_ns),
            transmark_obs::fmt_ns(r.median_ns),
            r.strategy.as_deref().unwrap_or("-"),
            r.seed,
            r.iters,
        );
        if let (Some(p99), Some(qps)) = (r.p99_ns, r.qps) {
            let _ = write!(line, "  p99 {}  {:.0} q/s", transmark_obs::fmt_ns(p99), qps);
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Compares two bench documents case-by-case on `min_ns`. Returns the
/// report and whether any case regressed by more than
/// [`REGRESSION_THRESHOLD`]. Cases present on only one side are noted
/// but are not regressions.
pub fn diff_report(base: &[CaseResult], new: &[CaseResult]) -> (String, bool) {
    let mut out = String::new();
    let mut regressed = false;
    let base_by_name: std::collections::BTreeMap<&str, &CaseResult> =
        base.iter().map(|r| (r.name.as_str(), r)).collect();
    for r in new {
        match base_by_name.get(r.name.as_str()) {
            None => {
                let _ = writeln!(out, "{:<24} new case (no baseline)", r.name);
            }
            Some(b) if b.min_ns == 0 => {
                let _ = writeln!(out, "{:<24} baseline min is 0; skipped", r.name);
            }
            Some(b) => {
                let delta = r.min_ns as f64 / b.min_ns as f64 - 1.0;
                // Sustained-load cases go over real sockets: their floor
                // is scheduling- and load-dependent, so deltas are
                // reported but never fail the diff.
                let sustained = r.qps.is_some() || b.qps.is_some();
                let verdict = if delta > REGRESSION_THRESHOLD {
                    if !sustained {
                        regressed = true;
                        "REGRESSED"
                    } else {
                        "slower (informational)"
                    }
                } else if delta < -REGRESSION_THRESHOLD {
                    "improved"
                } else {
                    "ok"
                };
                // Flag strategy flips between snapshots: a time delta is
                // only comparable when both sides ran the same kernel.
                let strat = match (&b.strategy, &r.strategy) {
                    (Some(old), Some(new)) if old != new => format!("  [{old} -> {new}]"),
                    (_, Some(new)) => format!("  [{new}]"),
                    _ => String::new(),
                };
                let _ = writeln!(
                    out,
                    "{:<24} {:>12} -> {:>12}  {:+7.1}%  {verdict}{strat}",
                    r.name,
                    transmark_obs::fmt_ns(b.min_ns),
                    transmark_obs::fmt_ns(r.min_ns),
                    100.0 * delta,
                );
            }
        }
    }
    for b in base {
        if !new.iter().any(|r| r.name == b.name) {
            let _ = writeln!(out, "{:<24} case dropped from new run", b.name);
        }
    }
    (out, regressed)
}

/// The `tmk bench` entry point; see the CLI usage text for flags.
pub fn run_command(mut args: Vec<String>) -> Result<String, CliError> {
    // --diff BASE NEW: pure comparison, no timing.
    if let Some(pos) = args.iter().position(|a| a == "--diff") {
        if pos + 2 >= args.len() {
            return Err(usage_err("--diff needs two bench JSON paths"));
        }
        let new_path = args.remove(pos + 2);
        let base_path = args.remove(pos + 1);
        args.remove(pos);
        if !args.is_empty() {
            return Err(usage_err(format!(
                "unexpected bench argument {:?}",
                args[0]
            )));
        }
        let load = |path: &str| -> Result<Vec<CaseResult>, CliError> {
            let text = std::fs::read_to_string(path)
                .map_err(|e| run_err(format!("cannot read {path}: {e}")))?;
            from_json(&text).map_err(|e| run_err(format!("{path}: {e}")))
        };
        let base = load(&base_path)?;
        let new = load(&new_path)?;
        let (report, regressed) = diff_report(&base, &new);
        if regressed {
            return Err(run_err(format!(
                "{report}bench regression: some case exceeded {:.0}% over {base_path}",
                100.0 * REGRESSION_THRESHOLD
            )));
        }
        return Ok(report);
    }

    let mut take_n = |flag: &str, default: usize| -> Result<usize, CliError> {
        match args.iter().position(|a| a == flag) {
            Some(pos) if pos + 1 < args.len() => {
                let v = args.remove(pos + 1);
                args.remove(pos);
                v.parse()
                    .map_err(|e| usage_err(format!("bad {flag} {v:?}: {e}")))
            }
            Some(_) => Err(usage_err(format!("{flag} requires a value"))),
            None => Ok(default),
        }
    };
    let runs = take_n("--runs", DEFAULT_RUNS)?;
    let iters = take_n("--iters", DEFAULT_ITERS)?;
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(pos) if pos + 1 < args.len() => {
            let v = args.remove(pos + 1);
            args.remove(pos);
            Some(v)
        }
        Some(_) => return Err(usage_err("--json requires a file path")),
        None => None,
    };
    if !args.is_empty() {
        return Err(usage_err(format!(
            "unexpected bench argument {:?}",
            args[0]
        )));
    }

    let results = run_suite(runs, iters)?;
    let mut out = to_text(&results);
    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&results))
            .map_err(|e| run_err(format!("write {path}: {e}")))?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(name: &str, min_ns: u64) -> CaseResult {
        CaseResult {
            name: name.to_string(),
            seed: 42,
            runs: 5,
            iters: 10,
            min_ns,
            median_ns: min_ns + 1,
            strategy: Some("sparse".to_string()),
            p99_ns: None,
            qps: None,
        }
    }

    #[test]
    fn json_round_trips() {
        let results = vec![case("confidence/hospital", 1200), case("fleet/rfid", 90000)];
        let text = to_json(&results);
        let back = from_json(&text).unwrap();
        assert_eq!(back.len(), 2);
        let hospital = back
            .iter()
            .find(|r| r.name == "confidence/hospital")
            .unwrap();
        assert_eq!(hospital.min_ns, 1200);
        assert_eq!(hospital.median_ns, 1201);
        assert_eq!(hospital.seed, 42);
        assert_eq!(hospital.strategy.as_deref(), Some("sparse"));
    }

    #[test]
    fn from_json_tolerates_missing_strategy() {
        // Snapshots written before the strategy layer have no key.
        let text = r#"{"suite":"tmk-bench","schema":1,"cases":{"a":{"seed":1,"runs":5,"iters":10,"min_ns":100,"median_ns":110}}}"#;
        let back = from_json(text).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].strategy, None);
    }

    #[test]
    fn from_json_rejects_foreign_documents() {
        assert!(from_json("{}").is_err());
        assert!(from_json(r#"{"suite":"other","schema":1,"cases":{}}"#).is_err());
        assert!(from_json(r#"{"suite":"tmk-bench","schema":99,"cases":{}}"#).is_err());
        assert!(from_json("not json").is_err());
    }

    #[test]
    fn sustained_fields_round_trip() {
        let mut r = case("serve/sustained_hot", 500);
        r.p99_ns = Some(900);
        r.qps = Some(1234.5);
        let back = from_json(&to_json(&[r])).unwrap();
        assert_eq!(back[0].p99_ns, Some(900));
        assert!((back[0].qps.unwrap() - 1234.5).abs() < 1e-6);
    }

    #[test]
    fn sustained_cases_never_fail_the_diff() {
        let mut base = case("serve/sustained_hot", 1000);
        base.qps = Some(100.0);
        let mut new = case("serve/sustained_hot", 5000);
        new.qps = Some(20.0);
        let (report, regressed) = diff_report(&[base], &[new]);
        assert!(!regressed, "socket latency is informational: {report}");
        assert!(report.contains("informational"), "{report}");
    }

    #[test]
    fn diff_flags_large_regressions_only() {
        let base = vec![case("a", 1000), case("b", 1000), case("gone", 5)];
        let new = vec![case("a", 1100), case("b", 1200), case("fresh", 7)];
        let (report, regressed) = diff_report(&base, &new);
        assert!(regressed, "b regressed by 20% > 15%");
        assert!(report.contains("REGRESSED"));
        assert!(report.contains("new case"));
        assert!(report.contains("dropped"));
        let (_, ok) = diff_report(&base[..2], &[case("a", 1100), case("b", 1100)]);
        assert!(!ok, "10% is within the threshold");
    }
}
