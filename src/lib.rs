#![warn(missing_docs)]
//! # transmark — Transducing Markov Sequences
//!
//! A query engine for *Markov sequences* (time-inhomogeneous Markov
//! chains over a finite alphabet — the canonical output of HMM/CRF
//! inference) where queries are *finite-state transducers with
//! deterministic emission*, reproducing **"Transducing Markov Sequences"**
//! (Kimelfeld & Ré, PODS 2010).
//!
//! Every answer `o` of a query `A^ω` over a sequence `μ` is an output
//! string with positive probability of being produced by a random
//! possible world; its *confidence* is that probability. The engine
//! provides:
//!
//! * confidence computation — polynomial for deterministic transducers
//!   (Thm 4.6), uniform-emission NFAs (Thm 4.8, `4^{|Q|}`), s-projectors
//!   (Thm 5.5, `4^{|Q_E|}`) and indexed s-projectors (Thm 5.8); exact
//!   (exponential worst case, necessarily) for everything else;
//! * answer enumeration — unranked with polynomial delay and space
//!   (Thm 4.1), ranked by best evidence `E_max` (Thm 4.3), ranked by best
//!   occurrence `I_max` for s-projectors (Thm 5.2/Lemma 5.10), and in
//!   exact decreasing confidence for indexed s-projectors (Thm 5.7);
//! * model front-ends — HMM posteriors, linear-chain CRFs, k-order
//!   chains;
//! * workload generators reproducing the paper's running example
//!   bit-for-bit and its hardness-gadget families.
//!
//! ## Quickstart
//!
//! ```
//! use transmark::prelude::*;
//!
//! // A 3-step Markov sequence over {sunny, rainy}.
//! let alphabet = Alphabet::from_names(["sunny", "rainy"]);
//! let (s, r) = (alphabet.sym("sunny"), alphabet.sym("rainy"));
//! let weather = MarkovSequenceBuilder::new(alphabet.clone(), 3)
//!     .initial(s, 0.8)
//!     .initial(r, 0.2)
//!     .transition(0, s, s, 0.7).transition(0, s, r, 0.3)
//!     .transition(0, r, s, 0.4).transition(0, r, r, 0.6)
//!     .transition(1, s, s, 0.7).transition(1, s, r, 0.3)
//!     .transition(1, r, s, 0.4).transition(1, r, r, 0.6)
//!     .build()
//!     .unwrap();
//!
//! // A Mealy machine marking weather changes.
//! let marks = Alphabet::from_names(["same", "flip"]);
//! let mut b = Transducer::builder(alphabet, marks.clone());
//! let qs = b.add_state(true); // last was sunny
//! let qr = b.add_state(true); // last was rainy
//! let q0 = b.add_state(true);
//! b.set_initial(q0);
//! let same = [marks.sym("same")];
//! let flip = [marks.sym("flip")];
//! b.add_transition(q0, s, qs, &same).unwrap();
//! b.add_transition(q0, r, qr, &same).unwrap();
//! b.add_transition(qs, s, qs, &same).unwrap();
//! b.add_transition(qs, r, qr, &flip).unwrap();
//! b.add_transition(qr, r, qr, &same).unwrap();
//! b.add_transition(qr, s, qs, &flip).unwrap();
//! let t = b.build().unwrap();
//!
//! // Top-2 answers by best evidence, with exact confidences.
//! let top = top_k_by_emax(&t, &weather, 2).unwrap();
//! assert_eq!(top.len(), 2);
//! for answer in &top {
//!     let conf = confidence(&t, &weather, &answer.output).unwrap();
//!     assert!(conf >= answer.score() - 1e-12); // E_max lower-bounds confidence
//! }
//! ```
//!
//! The crates behind this facade: `transmark-automata` (NFA/DFA/regex),
//! `transmark-markov` (the data model and its statistical front-ends),
//! `transmark-kbest` (Lawler–Murty, k-best DAG paths), `transmark-core`
//! (the §3–§4 engine), `transmark-sproj` (the §5 engine) and
//! `transmark-workloads` (paper examples, synthetic scenarios, gadgets).

pub mod bench;
pub mod cli;
pub mod facade;
pub mod serve;
pub mod top;

pub use facade::Engine;

pub use transmark_automata as automata;
pub use transmark_core as engine;
pub use transmark_kbest as kbest;
pub use transmark_markov as markov;
pub use transmark_obs as obs;
pub use transmark_sproj as sproj;
pub use transmark_store as store;
pub use transmark_workloads as workloads;

/// The most common imports in one place.
///
/// The blessed query path is the prepared-plan flow surfaced by the
/// [`Engine`](crate::Engine) facade: `Engine::new()` →
/// [`prepare`](crate::Engine::prepare) → `bind`/`bind_source` → execute,
/// with [`metrics`](crate::Engine::metrics) for the observability
/// snapshot. The free functions (`confidence`, `top_k_by_emax`, …) remain
/// as one-shot conveniences; they route through the same plans
/// internally.
pub mod prelude {
    pub use crate::facade::Engine;
    pub use transmark_automata::{Alphabet, Dfa, Nfa, SymbolId};
    pub use transmark_core::certified::{
        certified_top_by_confidence, certified_top_k_by_confidence, CertifiedTop, CertifiedTopK,
    };
    pub use transmark_core::compose::compose;
    pub use transmark_core::confidence::{
        acceptance_probability, confidence, confidence_deterministic, confidence_general,
        confidence_uniform_nfa, is_answer, prefix_acceptance_probabilities,
    };
    pub use transmark_core::emax::{emax_of_output, top_by_emax};
    pub use transmark_core::enumerate::{
        enumerate_by_emax, enumerate_unranked, top_k_by_emax, RankedAnswer,
    };
    pub use transmark_core::error::{EngineError, TmkError};
    pub use transmark_core::evaluate::{ConfidenceCost, Evaluation, ScoredAnswer};
    pub use transmark_core::evidence::{enumerate_evidences, top_k_evidences};
    pub use transmark_core::plan::{
        prepare, BoundQuery, PlanExplain, PlanKind, PreparedEventQuery, PreparedQuery,
        SourceBoundQuery,
    };
    pub use transmark_core::streaming::EventMonitor;
    pub use transmark_core::transducer::{Transducer, TransducerBuilder};
    pub use transmark_markov::info::{entropy, kl_divergence, perplexity};
    pub use transmark_markov::seqops::{condition, evidence_probability, window, Evidence};
    pub use transmark_markov::{
        FileStepSource, Hmm, MarkovSequence, MarkovSequenceBuilder, RewindableStepSource,
        SequenceSource, StepSource,
    };
    pub use transmark_obs::{ExecutionProfile, Recorder, Snapshot};
    pub use transmark_sproj::{
        enumerate_by_imax, enumerate_by_imax_lawler, enumerate_indexed, sproj_confidence,
        top_k_by_imax, IndexedAnswer, IndexedEvaluator, SProjector, SprojEvaluation,
    };
    pub use transmark_store::{PlanCache, SequenceStore};
}
